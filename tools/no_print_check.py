"""Lint: no bare ``print()`` calls inside the ``repro`` package.

Library code must publish through the telemetry bus or ``logging`` —
user-facing output belongs to CLIs (which route through their own echo
helpers) and example scripts, never to importable modules. This walks
every module under ``src/repro/`` with the AST (docstrings and comments
are naturally invisible to it) and reports each offending call.

Usage::

    python tools/no_print_check.py [root]

Exits 0 when clean, 1 with one ``path:line: message`` per violation.
Wired into tier-1 via ``tests/test_tooling/test_no_print.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Modules allowed to call print(): none. CLI entry points use explicit
#: stdout writers instead, keeping the rule trivially enforceable.
ALLOWED: frozenset[str] = frozenset()


def find_prints(source: str, path: str) -> list[tuple[str, int]]:
    """Return (path, lineno) for every bare ``print(...)`` call in ``source``."""
    tree = ast.parse(source, filename=path)
    hits = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            hits.append((path, node.lineno))
    return hits


def check_tree(root: Path) -> list[str]:
    """Lint every ``*.py`` under ``root``; return violation messages."""
    violations = []
    for py in sorted(root.rglob("*.py")):
        rel = py.relative_to(root).as_posix()
        if rel in ALLOWED:
            continue
        for path, lineno in find_prints(py.read_text(encoding="utf-8"), str(py)):
            violations.append(
                f"{path}:{lineno}: bare print() in library code "
                "(use the telemetry bus or logging)"
            )
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit code."""
    root = Path(argv[0]) if argv else Path(__file__).parent.parent / "src" / "repro"
    if not root.is_dir():
        sys.stderr.write(f"not a directory: {root}\n")
        return 2
    violations = check_tree(root)
    for v in violations:
        sys.stderr.write(v + "\n")
    if violations:
        sys.stderr.write(f"{len(violations)} bare print() call(s) found\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
