"""Lint: the library tree must stay safe to run under spawned workers.

The process execution backend (``repro.backend.process``) ships model
replicas to spawned OS processes. Three classes of bugs survive every
unit test on an inline engine and only detonate under multiprocess
execution, so they are enforced statically:

1. **Explicit spawn only.** ``fork`` duplicates BLAS state, live thread
   pools, and open shared-memory handles into the child; ``os.fork`` and
   any ``multiprocessing`` process/pool construction that does not go
   through ``get_context("spawn")`` is flagged (the platform default is
   fork on Linux, so relying on the default is the same bug).
2. **No wall-clock sleeps.** Worker loops synchronize on pipes and
   events; a ``time.sleep`` in library code is either a poll loop
   (burning the latency the backend exists to hide) or a race papered
   over with timing.
3. **No mutated module-level state on the hot path.** A module-level
   dict/list/set that functions mutate after import silently diverges
   between the parent and its spawn replicas (each process re-imports
   and then mutates its own copy). Flagged in the hot-path packages
   (``core``, ``comm``, ``models``, ``backend``); intentional
   per-process registries are whitelisted with a justification.

Usage::

    python tools/fork_safety_check.py [root]

Exits 0 when clean, 1 with one ``path:line: message`` per violation.
Wired into tier-1 via ``tests/test_tooling/test_fork_safety.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Packages (relative to the lint root) whose module-level mutable state
#: is checked; everything else may keep caches at module scope.
HOT_PATH_DIRS = ("core", "comm", "models", "backend")

#: (relative path, name) pairs allowed to keep mutated module state.
MUTABLE_WHITELIST: frozenset[tuple[str, str]] = frozenset(
    {
        # Deduplication set for deprecation warnings; divergence between
        # processes only means a warning may print once per process.
        ("core/engine.py", "_WARNED"),
        # The shm segment registry is *meant* to be per-process: each
        # process sweeps exactly the segments it created or attached.
        ("backend/shm.py", "_LIVE_SEGMENTS"),
    }
)

#: multiprocessing attributes that create processes without an explicit
#: start-method choice.
PROCESS_FACTORIES = frozenset({"Process", "Pool"})

#: Methods that mutate a container in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "appendleft",
    }
)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"dict", "list", "set", "defaultdict", "deque"}
    return False


def _module_mutables(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable containers -> def lineno."""
    out: dict[str, int] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _is_mutable_literal(value):
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                out[t.id] = node.lineno
    return out


def _function_locals(fn: ast.AST) -> set[str]:
    """Names the function binds locally (plain assignment, args, for)."""
    local: set[str] = set()
    args = fn.args
    for a in (
        args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        local.add(a.arg)
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            local.difference_update(node.names)
    return local


def _check_spawn(tree: ast.Module, rel: str) -> list[str]:
    """Rule 1: process creation must be get_context('spawn')."""
    hits: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if (
                isinstance(owner, ast.Name)
                and owner.id in ("multiprocessing", "mp")
                and func.attr in PROCESS_FACTORIES
            ):
                hits.append(
                    f"{rel}:{node.lineno}: multiprocessing.{func.attr} without "
                    "an explicit start method (use get_context('spawn'))"
                )
            elif (
                isinstance(owner, ast.Name)
                and owner.id == "os"
                and func.attr == "fork"
            ):
                hits.append(f"{rel}:{node.lineno}: os.fork() in library code")
            elif func.attr in ("get_context", "set_start_method"):
                first = node.args[0] if node.args else None
                method = (
                    first.value
                    if isinstance(first, ast.Constant)
                    else None
                )
                if method != "spawn":
                    hits.append(
                        f"{rel}:{node.lineno}: {func.attr}({method!r}) — only "
                        "the explicit 'spawn' start method is fork-safe here"
                    )
    return hits


def _check_sleeps(tree: ast.Module, rel: str) -> list[str]:
    """Rule 2: no time.sleep in library code."""
    hits: list[str] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "sleep"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            hits.append(
                f"{rel}:{node.lineno}: time.sleep() in library code "
                "(block on a pipe/event instead)"
            )
    return hits


def _check_module_state(tree: ast.Module, rel: str) -> list[str]:
    """Rule 3: module-level mutables mutated from function bodies."""
    mutables = _module_mutables(tree)
    if not mutables:
        return []
    hits: list[str] = []
    functions = [
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for fn in functions:
        local = _function_locals(fn)
        suspects = {name for name in mutables if name not in local}
        if not suspects:
            continue
        for node in ast.walk(fn):
            name: str | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if (
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id in suspects
                    ):
                        name = t.value.id
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in suspects
            ):
                name = node.func.value.id
            if name is not None and (rel, name) not in MUTABLE_WHITELIST:
                hits.append(
                    f"{rel}:{node.lineno}: module-level '{name}' (defined at "
                    f"line {mutables[name]}) mutated post-import — spawn "
                    "replicas will silently diverge"
                )
    return hits


def check_tree(root: Path) -> list[str]:
    """Lint every ``*.py`` under ``root``; return violation messages."""
    violations: list[str] = []
    for py in sorted(root.rglob("*.py")):
        rel = py.relative_to(root).as_posix()
        tree = ast.parse(py.read_text(encoding="utf-8"), filename=rel)
        violations += _check_spawn(tree, rel)
        violations += _check_sleeps(tree, rel)
        if rel.split("/", 1)[0] in HOT_PATH_DIRS:
            violations += _check_module_state(tree, rel)
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit code."""
    root = Path(argv[0]) if argv else Path(__file__).parent.parent / "src" / "repro"
    if not root.is_dir():
        sys.stderr.write(f"not a directory: {root}\n")
        return 2
    violations = check_tree(root)
    for v in violations:
        sys.stderr.write(v + "\n")
    if violations:
        sys.stderr.write(f"{len(violations)} fork-safety violation(s) found\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
