"""Lint: every ``serve.*`` telemetry name must be documented in DESIGN.md.

The serving subsystem narrates itself through the telemetry bus; a
counter that CI gates on but DESIGN.md never mentions is an undocumented
contract. This walks every module under ``src/repro/serve`` with the
AST, collects the first-argument string literal of every
``counter(...)`` / ``gauge(...)`` / ``record_span(...)`` call that
starts with ``serve.``, and requires each collected name to appear
verbatim in DESIGN.md.

Usage::

    python tools/serve_metrics_check.py [serve_root] [design_md]

Exits 0 when every emitted name is documented, 1 with one
``path:line: message`` per undocumented name, 2 on usage errors.
Wired into tier-1 via ``tests/test_tooling/test_serve_metrics.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Telemetry-bus methods whose first argument is a metric/span name.
EMIT_METHODS = frozenset({"counter", "gauge", "record_span"})
PREFIX = "serve."


def emitted_names(source: str, path: str) -> list[tuple[str, str, int]]:
    """Return ``(name, path, lineno)`` for every ``serve.*`` emission.

    Only string-literal first arguments are collectable; a dynamically
    built name cannot be linted and is ignored.
    """
    tree = ast.parse(source, filename=path)
    hits = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and node.args):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in EMIT_METHODS):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value.startswith(PREFIX):
                hits.append((first.value, path, first.lineno))
    return hits


def undocumented(serve_root: Path, design_md: Path) -> list[str]:
    """Violation messages for emitted names DESIGN.md never mentions."""
    design = design_md.read_text(encoding="utf-8")
    violations = []
    for py in sorted(serve_root.rglob("*.py")):
        for name, path, lineno in emitted_names(
            py.read_text(encoding="utf-8"), str(py)
        ):
            if name not in design:
                violations.append(
                    f"{path}:{lineno}: telemetry name {name!r} is emitted "
                    f"but not documented in {design_md.name}"
                )
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit code."""
    here = Path(__file__).parent.parent
    serve_root = Path(argv[0]) if argv else here / "src" / "repro" / "serve"
    design_md = Path(argv[1]) if len(argv) > 1 else here / "DESIGN.md"
    if not serve_root.is_dir():
        sys.stderr.write(f"not a directory: {serve_root}\n")
        return 2
    if not design_md.is_file():
        sys.stderr.write(f"not a file: {design_md}\n")
        return 2
    violations = undocumented(serve_root, design_md)
    for v in violations:
        sys.stderr.write(v + "\n")
    if violations:
        sys.stderr.write(f"{len(violations)} undocumented telemetry name(s)\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
