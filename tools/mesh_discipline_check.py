"""Lint: collective-group discipline and facade completeness.

Two static checks that keep the mesh-first API honest:

1. **Group discipline.** Every collective runs over a
   :class:`repro.comm.world.Group`, and the mesh refactor made
   :class:`repro.mesh.device_mesh.DeviceMesh` (plus the ``World``
   helpers in ``comm/world.py``) the only places allowed to construct
   one. A ``Group(...)`` call anywhere else bypasses the named-axis
   bookkeeping — its traffic would be invisible to the per-axis
   telemetry and the elastic layout checks. The whole ``src/repro``
   tree is parsed; any ``Group(...)`` / ``*.Group(...)`` call outside
   ``mesh/`` and ``comm/world.py`` is a violation.

2. **Facade audit.** Every name in ``repro.__all__`` must resolve on
   the imported package, and every public (non-dunder) name must be
   mentioned in the README — the blessed surface and its documentation
   move together or not at all.

Usage::

    python tools/mesh_discipline_check.py [src/repro] [--no-facade]

Exits 0 when clean, 1 with one ``path:line: message`` per violation,
2 on usage errors. Wired into tier-1 via
``tests/test_tooling/test_mesh_discipline.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Path prefixes (relative to src/repro) where Group construction is
#: legitimate: the mesh package owns axis groups, and comm/world.py owns
#: the World-level helpers (world_group, new_group, pair_group).
ALLOWED_GROUP_SITES = ("mesh/", "comm/world.py")


def _is_group_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Group"
    if isinstance(func, ast.Attribute):
        return func.attr == "Group"
    return False


def check_group_discipline(root: Path) -> list[str]:
    """Flag ``Group(...)`` construction outside the allowed sites."""
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in ALLOWED_GROUP_SITES or any(
            rel.startswith(p) for p in ALLOWED_GROUP_SITES if p.endswith("/")
        ):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_group_call(node):
                violations.append(
                    f"{rel}:{node.lineno}: Group(...) constructed outside "
                    "repro.mesh / repro.comm.world — build groups through "
                    "DeviceMesh.groups()/World.new_group() so their traffic "
                    "stays on the named-axis books"
                )
    return violations


def check_facade(root: Path) -> list[str]:
    """Every ``repro.__all__`` name resolves and is documented."""
    src_dir = root.parent
    repo = src_dir.parent
    violations: list[str] = []
    sys.path.insert(0, str(src_dir))
    try:
        import repro
    except Exception as err:  # pragma: no cover - import should never fail
        return [f"__init__.py:1: import repro failed: {err!r}"]
    finally:
        sys.path.remove(str(src_dir))
    readme = repo / "README.md"
    readme_text = readme.read_text(encoding="utf-8") if readme.exists() else ""
    for name in repro.__all__:
        if not hasattr(repro, name):
            violations.append(
                f"__init__.py:1: __all__ lists {name!r} but the package has "
                "no such attribute"
            )
            continue
        if name.startswith("__") and name.endswith("__"):
            continue
        if name not in readme_text:
            violations.append(
                f"__init__.py:1: public name {name!r} is not mentioned in "
                "README.md — document it in the API tour or drop it from "
                "__all__"
            )
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit code."""
    args = [a for a in argv if not a.startswith("--")]
    flags = {a for a in argv if a.startswith("--")}
    unknown = flags - {"--no-facade"}
    if unknown:
        sys.stderr.write(f"unknown flags: {sorted(unknown)}\n")
        return 2
    root = Path(args[0]) if args else Path(__file__).parent.parent / "src" / "repro"
    if not root.is_dir():
        sys.stderr.write(f"not a directory: {root}\n")
        return 2
    violations = check_group_discipline(root)
    if "--no-facade" not in flags:
        violations += check_facade(root)
    for v in violations:
        sys.stderr.write(v + "\n")
    if violations:
        sys.stderr.write(f"{len(violations)} mesh-discipline violation(s) found\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
