"""Lint: hot-path array allocations must pin their dtype explicitly.

NumPy's allocation constructors default to ``float64``. On the training
hot path that default is a silent decision — an allocation that *meant*
to match its neighbours keeps working until someone flips the compute
dtype, at which point an implicit-float64 buffer upcasts every kernel it
touches (and doubles its memory) without a single diff line saying so.
The rule: every ``np.empty`` / ``np.zeros`` / ``np.ones`` / ``np.full``
in the hot-path packages spells out ``dtype=``. The ``*_like``
constructors are exempt (they inherit their prototype's dtype, which is
the point of using them).

Usage::

    python tools/dtype_discipline_check.py [root ...]

With no arguments, checks the hot-path packages
(``src/repro/{models,optim,core,precision}``). Exits 0 when clean, 1
with one ``path:line: message`` per violation, 2 on a bad root.
Wired into tier-1 via ``tests/test_tooling/test_dtype_discipline.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Allocation constructors that silently default to float64.
CHECKED_CALLS: frozenset[str] = frozenset({"empty", "zeros", "ones", "full"})

#: Names the ``numpy`` module is bound to in this codebase.
NUMPY_ALIASES: frozenset[str] = frozenset({"np", "numpy"})

#: Hot-path subpackages checked by default (relative to src/repro).
HOT_PACKAGES = ("models", "optim", "core", "precision")


def find_unpinned_allocs(source: str, path: str) -> list[tuple[str, int, str]]:
    """Return (path, lineno, call) for each dtype-less allocation call."""
    tree = ast.parse(source, filename=path)
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in CHECKED_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id in NUMPY_ALIASES
        ):
            continue
        if any(kw.arg == "dtype" for kw in node.keywords):
            continue
        # np.full(shape, fill, dtype) / np.zeros(shape, dtype) may pass
        # dtype positionally; the second (or third, for full) positional
        # argument is the dtype slot.
        dtype_pos = 2 if func.attr == "full" else 1
        if len(node.args) > dtype_pos:
            continue
        hits.append((path, node.lineno, f"np.{func.attr}"))
    return hits


def check_tree(root: Path) -> list[str]:
    """Lint every ``*.py`` under ``root``; return violation messages."""
    violations = []
    for py in sorted(root.rglob("*.py")):
        for path, lineno, call in find_unpinned_allocs(
            py.read_text(encoding="utf-8"), str(py)
        ):
            violations.append(
                f"{path}:{lineno}: {call}(...) without dtype= on the hot "
                "path (the float64 default must be an explicit choice)"
            )
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit code."""
    if argv:
        roots = [Path(a) for a in argv]
    else:
        repro = Path(__file__).parent.parent / "src" / "repro"
        roots = [repro / pkg for pkg in HOT_PACKAGES]
    violations = []
    for root in roots:
        if not root.is_dir():
            sys.stderr.write(f"not a directory: {root}\n")
            return 2
        violations.extend(check_tree(root))
    for v in violations:
        sys.stderr.write(v + "\n")
    if violations:
        sys.stderr.write(f"{len(violations)} unpinned allocation(s) found\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
