"""Lint: every engine/trainer state-dict field must reshard.

Checkpoint resharding (:mod:`repro.elastic.reshard`) remaps engine and
trainer snapshots across world sizes by *enumerating* their fields — the
``ENGINE_STATE_KEYS`` / ``TRAINER_STATE_KEYS`` frozensets. A field added
to a ``state_dict`` but not to the mapping would load fine in a
same-shape world, pass every non-elastic test, and silently vanish (or
crash) on the first resize. That gap is closed statically:

1. The two frozensets are read out of ``repro/elastic/reshard.py`` as
   literals.
2. Every ``state_dict`` method in the engine/trainer modules is parsed;
   the string keys of the **top-level** dict it returns (nested dicts
   belong to sub-components with their own contracts) must all appear in
   the corresponding frozenset.

Usage::

    python tools/elastic_state_check.py [src/repro]

Exits 0 when clean, 1 with one ``path:line: message`` per violation.
Wired into tier-1 via ``tests/test_tooling/test_elastic_state.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files whose ``state_dict`` methods feed engine snapshots, and the
#: frozenset in reshard.py that must enumerate their keys.
ENGINE_FILES = ("core/ddp.py", "core/fsdp.py", "mesh/engine.py")
TRAINER_FILES = ("core/trainer.py", "core/simclr_trainer.py")
RESHARD_FILE = "elastic/reshard.py"


def _frozenset_literal(tree: ast.Module, name: str, rel: str) -> frozenset[str]:
    """Extract ``name = frozenset({...})`` string members from a module."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and value.args
            and isinstance(value.args[0], (ast.Set, ast.List, ast.Tuple))
        ):
            members = set()
            for elt in value.args[0].elts:
                if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                    raise SystemExit(
                        f"{rel}:{elt.lineno}: {name} member is not a string literal"
                    )
                members.add(elt.value)
            return frozenset(members)
        raise SystemExit(
            f"{rel}:{node.lineno}: {name} must be a frozenset literal of strings"
        )
    raise SystemExit(f"{rel}: no {name} frozenset found")


def _state_dict_keys(fn: ast.FunctionDef) -> list[tuple[str, int]]:
    """String keys of the top-level dicts a ``state_dict`` returns.

    Handles ``return {...}`` directly plus the ``sd = {...}; ...;
    sd["k"] = v; return sd`` shape: subscript-stores onto any local name
    that is eventually returned count as top-level keys too.
    """
    returned_names: set[str] = set()
    keys: list[tuple[str, int]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Dict):
                for k in node.value.keys:
                    if isinstance(k, ast.Constant) and isinstance(k.value, str):
                        keys.append((k.value, k.lineno))
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
    if returned_names:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if (
                        isinstance(t, ast.Name)
                        and t.id in returned_names
                        and isinstance(node.value, ast.Dict)
                    ):
                        for k in node.value.keys:
                            if isinstance(k, ast.Constant) and isinstance(
                                k.value, str
                            ):
                                keys.append((k.value, k.lineno))
                    elif (
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id in returned_names
                        and isinstance(t.slice, ast.Constant)
                        and isinstance(t.slice.value, str)
                    ):
                        keys.append((t.slice.value, node.lineno))
    return keys


def _check_file(
    path: Path, rel: str, allowed: frozenset[str], setname: str
) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
    hits: list[str] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "state_dict"):
            continue
        for key, lineno in _state_dict_keys(node):
            if key not in allowed:
                hits.append(
                    f"{rel}:{lineno}: state_dict key {key!r} is not in "
                    f"repro.elastic.reshard.{setname} — add a reshard "
                    "mapping for it or it will be lost on the first "
                    "elastic resize"
                )
    return hits


def check_tree(root: Path) -> list[str]:
    """Lint the engine/trainer state dicts under ``root`` (src/repro)."""
    reshard = root / RESHARD_FILE
    rtree = ast.parse(reshard.read_text(encoding="utf-8"), filename=RESHARD_FILE)
    engine_keys = _frozenset_literal(rtree, "ENGINE_STATE_KEYS", RESHARD_FILE)
    trainer_keys = _frozenset_literal(rtree, "TRAINER_STATE_KEYS", RESHARD_FILE)
    violations: list[str] = []
    for rel in ENGINE_FILES:
        violations += _check_file(root / rel, rel, engine_keys, "ENGINE_STATE_KEYS")
    for rel in TRAINER_FILES:
        violations += _check_file(root / rel, rel, trainer_keys, "TRAINER_STATE_KEYS")
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit code."""
    root = Path(argv[0]) if argv else Path(__file__).parent.parent / "src" / "repro"
    if not root.is_dir():
        sys.stderr.write(f"not a directory: {root}\n")
        return 2
    violations = check_tree(root)
    for v in violations:
        sys.stderr.write(v + "\n")
    if violations:
        sys.stderr.write(f"{len(violations)} elastic-state violation(s) found\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
