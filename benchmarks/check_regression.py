"""Compare fresh bench artifacts against the committed baselines.

Covers ``BENCH_hotpath.json`` (substrate training throughput),
``BENCH_serving.json`` (online serving throughput/saturation),
``BENCH_multicore.json`` (process-backend speedup and bit-identity),
``ELASTIC_campaign.json`` (resize chaos campaign bit-identity), and
``MESHPERF.json`` (mesh perf-model predicted-vs-measured reconciliation).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py      # fresh run
    PYTHONPATH=src python benchmarks/bench_serving.py      # fresh run
    PYTHONPATH=src python benchmarks/bench_multicore.py    # fresh run
    PYTHONPATH=src python benchmarks/bench_elastic.py      # fresh run
    PYTHONPATH=src python benchmarks/bench_meshperf.py     # fresh run
    python benchmarks/check_regression.py                  # diff vs baselines
    python benchmarks/check_regression.py --update         # bless current runs

Exits nonzero when any proxy model's measured images/second fell more
than ``--threshold`` (default 15%) below the baseline, so CI can gate
merges on substrate throughput. Improvements are reported but never
fail; bless them into the baseline with ``--update`` to tighten the bar.

Absolute throughput is machine-dependent: the committed baseline is only
meaningful when fresh run and baseline come from the same machine class.
Several gates are machine-*relative* and checked against the artifact's
own threshold rather than the baseline: the attention fused-vs-naive
speedup (1.3x), the serving saturation ratio (serving >= 0.9x offline
inference on the same replica set), and the multicore critical-path
speedup (process backend >= 2.5x inline at 4 workers) plus its fp32
bit-identity flag. The hotpath artifact is required; serving and
multicore artifacts are optional — missing ones are reported with the
command that produces them, never a traceback. ``--update`` blesses
every baseline whose fresh artifact exists in one atomic batch
(stage-then-rename, so an interrupted update never leaves a half-new
baseline set).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FRESH = HERE / "BENCH_hotpath.json"
BASELINE = HERE / "BENCH_hotpath.baseline.json"
SERVING_FRESH = HERE / "BENCH_serving.json"
SERVING_BASELINE = HERE / "BENCH_serving.baseline.json"
MULTICORE_FRESH = HERE / "BENCH_multicore.json"
MULTICORE_BASELINE = HERE / "BENCH_multicore.baseline.json"
ELASTIC_FRESH = HERE / "ELASTIC_campaign.json"
ELASTIC_BASELINE = HERE / "ELASTIC_campaign.baseline.json"
MESHPERF_FRESH = HERE / "MESHPERF.json"
MESHPERF_BASELINE = HERE / "MESHPERF.baseline.json"
DEFAULT_THRESHOLD = 0.15

#: Optional artifact -> (baseline path, producing command). The hotpath
#: artifact is handled separately because it is required.
OPTIONAL_ARTIFACTS = {
    "serving": (SERVING_FRESH, SERVING_BASELINE, "bench_serving.py"),
    "multicore": (MULTICORE_FRESH, MULTICORE_BASELINE, "bench_multicore.py"),
    "elastic": (ELASTIC_FRESH, ELASTIC_BASELINE, "bench_elastic.py"),
    "meshperf": (MESHPERF_FRESH, MESHPERF_BASELINE, "bench_meshperf.py"),
}


def compare(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Return a list of regression messages (empty = pass)."""
    problems: list[str] = []
    base_steps = baseline.get("steps", {})
    fresh_steps = fresh.get("steps", {})
    for name, base in base_steps.items():
        if name not in fresh_steps:
            problems.append(f"{name}: missing from fresh run")
            continue
        got = fresh_steps[name]["images_per_sec"]
        want = base["images_per_sec"]
        change = (got - want) / want
        if change < -threshold:
            problems.append(
                f"{name}: {got:.1f} images/s vs baseline {want:.1f} "
                f"({change:+.1%}, allowed -{threshold:.0%})"
            )
    gate = fresh.get("gate", {})
    if gate.get("attention_speedup_median", 0.0) < gate.get("threshold", 0.0):
        problems.append(
            f"attention speedup {gate['attention_speedup_median']:.2f}x "
            f"below its own {gate['threshold']}x gate"
        )
    return problems


def compare_serving(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regressions in the serving artifact (empty = pass)."""
    problems: list[str] = []
    got = fresh.get("throughput", {}).get("serving_images_per_s", 0.0)
    want = baseline.get("throughput", {}).get("serving_images_per_s", 0.0)
    if want > 0:
        change = (got - want) / want
        if change < -threshold:
            problems.append(
                f"serving: {got:.1f} images/s vs baseline {want:.1f} "
                f"({change:+.1%}, allowed -{threshold:.0%})"
            )
    gate = fresh.get("gate", {})
    if gate.get("saturation_ratio", 0.0) < gate.get("threshold", 0.0):
        problems.append(
            f"serving saturation {gate['saturation_ratio']:.3f}x below its "
            f"own {gate['threshold']}x gate"
        )
    # Open-loop gates are virtual-time quantities judged against the
    # artifact's own recorded targets — machine-independent by design.
    planned = fresh.get("open_loop", {}).get("planned", {})
    if planned:
        att = planned.get("admitted_attainment", 0.0)
        target = planned.get("attainment_target", 0.0)
        if att < target:
            problems.append(
                f"serving open-loop: SLO attainment {att:.3f} below its own "
                f"target {target}"
            )
        if not planned.get("reconciled", False):
            problems.append(
                "serving open-loop: capacity plan no longer reconciles with "
                "the measured run"
            )
        pred = planned.get("predicted_cost_per_hour", 0.0)
        meas = planned.get("measured_cost_per_hour", 0.0)
        tol = planned.get("cost_tolerance", 0.0)
        if pred > 0 and abs(meas - pred) / pred > tol:
            problems.append(
                f"serving open-loop: measured cost {meas:.3f} $/h drifted "
                f"more than {tol:.0%} from predicted {pred:.3f} $/h"
            )
    auto = fresh.get("open_loop", {}).get("autoscale", {})
    if auto and auto.get("scale_events", 0) == 0:
        problems.append(
            "serving open-loop: autoscale scenario made no scale decisions"
        )
    return problems


def compare_multicore(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regressions in the multicore artifact (empty = pass).

    Both gates are machine-relative (CPU-clock ratios), so they are read
    from the fresh artifact's own gate block; the baseline additionally
    catches a speedup that silently eroded more than ``threshold`` below
    the last blessed run.
    """
    problems: list[str] = []
    gate = fresh.get("gate", {})
    if not gate.get("bit_identical", False):
        problems.append("multicore: process backend no longer fp32 bit-identical")
    got = gate.get("speedup", 0.0)
    if got < gate.get("threshold", 0.0):
        problems.append(
            f"multicore speedup {got:.2f}x at {gate.get('workers')} workers "
            f"below its own {gate.get('threshold')}x gate"
        )
    want = baseline.get("gate", {}).get("speedup", 0.0)
    if want > 0:
        change = (got - want) / want
        if change < -threshold:
            problems.append(
                f"multicore: {got:.2f}x speedup vs baseline {want:.2f}x "
                f"({change:+.1%}, allowed -{threshold:.0%})"
            )
    return problems


def compare_elastic(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regressions in the resize-campaign artifact (empty = pass).

    Correctness gates, not throughput: the campaign must stay bit-exact
    with the uninterrupted oracle, and must not have quietly shrunk
    below the baseline's transition coverage.
    """
    problems: list[str] = []
    if not fresh.get("bit_identical", False):
        problems.append(
            "elastic: resize campaign no longer bit-identical to the "
            f"uninterrupted run (max |dp| = {fresh.get('max_abs_param_diff')})"
        )
    want = baseline.get("requeues", 0)
    if fresh.get("requeues", 0) < want:
        problems.append(
            f"elastic: campaign covers {fresh.get('requeues', 0)} requeues, "
            f"baseline covered {want}"
        )
    return problems


def compare_meshperf(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regressions in the mesh perf-model artifact (empty = pass).

    Correctness gate, not throughput: the analytic model's per-axis
    byte/call predictions must reconcile with the measured telemetry
    (tp/dp exactly, pp within its own tolerance), and the fresh run must
    not have quietly dropped mesh coverage below the baseline.
    """
    problems: list[str] = []
    if not fresh.get("reconciled", False):
        bad = [r for r in fresh.get("axes", []) if not r.get("ok", False)]
        detail = ", ".join(f"{r['mesh']}/{r['axis']}" for r in bad) or "unknown"
        problems.append(
            f"meshperf: predicted traffic no longer reconciles with measured "
            f"telemetry ({detail})"
        )
    want = len(baseline.get("axes", []))
    if len(fresh.get("axes", [])) < want:
        problems.append(
            f"meshperf: fresh run covers {len(fresh.get('axes', []))} axis "
            f"rows, baseline covered {want}"
        )
    return problems


def render_meshperf(fresh: dict, baseline: dict) -> str:
    """One-line mesh reconciliation verdict plus any drifting axes."""
    verdict = "reconciled" if fresh.get("reconciled") else "DRIFTED"
    rows = fresh.get("axes", [])
    meshes = {r["mesh"] for r in rows}
    lines = [
        f"{'meshperf':<12} {len(rows):>9} axis rows over {len(meshes)} meshes"
        f"   ({verdict}, pp tol {fresh.get('pp_tolerance', 0.0):.0%})"
    ]
    for r in rows:
        if not r.get("ok", False):
            lines.append(
                f"{'':<12}   {r['mesh']}/{r['axis']}: predicted "
                f"{r['predicted_bytes']:.0f}B/{r['predicted_calls']} vs "
                f"measured {r['measured_bytes']}B/{r['measured_calls']}"
            )
    return "\n".join(lines)


def render_elastic(fresh: dict, baseline: dict) -> str:
    """Resize campaign summary: verdict plus the transition chain."""
    verdict = "bit-identical" if fresh.get("bit_identical") else "DIVERGED"
    lines = [
        f"{'elastic':<12} {fresh.get('requeues', 0):>9} requeues over "
        f"{fresh.get('total_steps', 0)} steps   ({verdict}, backends "
        f"{'/'.join(fresh.get('backends_exercised', []))})"
    ]
    for t in fresh.get("transitions", []):
        lines.append(f"{'':<12}   step {t['step']:>3}: {t['from']} -> {t['to']}")
    return "\n".join(lines)


def render_serving(fresh: dict, baseline: dict) -> str:
    """One-line serving throughput comparison."""
    got = fresh.get("throughput", {})
    want = baseline.get("throughput", {})
    g, w = got.get("serving_images_per_s", 0.0), want.get("serving_images_per_s", 0.0)
    change = g / w - 1.0 if w > 0 else 0.0
    lines = [
        f"{'serving':<12} {w:>10.1f} {g:>10.1f} {change:>+7.1%}   "
        f"(saturation {fresh.get('gate', {}).get('saturation_ratio', 0.0):.3f}x)"
    ]
    planned = fresh.get("open_loop", {}).get("planned", {})
    if planned:
        verdict = "reconciled" if planned.get("reconciled") else "DRIFTED"
        lines.append(
            f"{'open loop':<12} {planned.get('fleet', '?'):>10} fleet, "
            f"attainment {planned.get('admitted_attainment', 0.0):.3f} "
            f"(target {planned.get('attainment_target', 0.0)}), "
            f"{planned.get('measured_cost_per_hour', 0.0):.2f} $/h   ({verdict})"
        )
    return "\n".join(lines)


def render_multicore(fresh: dict, baseline: dict) -> str:
    """One-line multicore speedup comparison."""
    g = fresh.get("gate", {}).get("speedup", 0.0)
    w = baseline.get("gate", {}).get("speedup", 0.0)
    change = g / w - 1.0 if w > 0 else 0.0
    identical = fresh.get("gate", {}).get("bit_identical", False)
    return (
        f"{'multicore':<12} {w:>9.2f}x {g:>9.2f}x {change:>+7.1%}   "
        f"(bit-identical {identical})"
    )


def render(fresh: dict, baseline: dict) -> str:
    """Side-by-side throughput table."""
    lines = [f"{'model':<12} {'baseline':>10} {'fresh':>10} {'change':>8}"]
    for name, base in baseline.get("steps", {}).items():
        got = fresh.get("steps", {}).get(name)
        if got is None:
            lines.append(f"{name:<12} {base['images_per_sec']:>10.1f} {'—':>10}")
            continue
        change = got["images_per_sec"] / base["images_per_sec"] - 1.0
        lines.append(
            f"{name:<12} {base['images_per_sec']:>10.1f} "
            f"{got['images_per_sec']:>10.1f} {change:>+7.1%}"
        )
    return "\n".join(lines)


def update_baselines() -> list[str]:
    """Bless every present fresh artifact atomically; returns messages.

    All staging copies are written first; the renames happen only after
    every copy succeeded, so a failure mid-update leaves the committed
    baselines exactly as they were (rename within a directory is atomic
    on POSIX).
    """
    pending: list[tuple[Path, Path]] = [(FRESH, BASELINE)]
    for _, (fresh_path, baseline_path, _cmd) in OPTIONAL_ARTIFACTS.items():
        if fresh_path.exists():
            pending.append((fresh_path, baseline_path))
    staged: list[tuple[Path, Path]] = []
    try:
        for fresh_path, baseline_path in pending:
            tmp = baseline_path.with_suffix(".json.tmp")
            tmp.write_text(fresh_path.read_text())
            staged.append((tmp, baseline_path))
        for tmp, baseline_path in staged:
            os.replace(tmp, baseline_path)
    except BaseException:
        for tmp, _ in staged:
            tmp.unlink(missing_ok=True)
        raise
    return [f"baseline updated from {fresh_path}" for fresh_path, _ in pending]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=FRESH, help="fresh bench artifact"
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="committed baseline"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional throughput drop (default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="bless all present fresh artifacts as the baselines and exit 0",
    )
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"no fresh artifact at {args.fresh}; run bench_hotpath.py first")
        return 2
    fresh = json.loads(args.fresh.read_text())

    if args.update:
        for line in update_baselines():
            print(line)
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create it")
        return 2
    baseline = json.loads(args.baseline.read_text())

    print(render(fresh, baseline))
    problems = compare(fresh, baseline, threshold=args.threshold)

    renderers = {
        "serving": render_serving,
        "multicore": render_multicore,
        "elastic": render_elastic,
        "meshperf": render_meshperf,
    }
    comparers = {
        "serving": compare_serving,
        "multicore": compare_multicore,
        "elastic": compare_elastic,
        "meshperf": compare_meshperf,
    }
    for name, (fresh_path, baseline_path, cmd) in OPTIONAL_ARTIFACTS.items():
        if fresh_path.exists() and baseline_path.exists():
            opt_fresh = json.loads(fresh_path.read_text())
            opt_baseline = json.loads(baseline_path.read_text())
            print(renderers[name](opt_fresh, opt_baseline))
            problems += comparers[name](
                opt_fresh, opt_baseline, threshold=args.threshold
            )
        elif fresh_path.exists() or baseline_path.exists():
            print(
                f"{name}: fresh artifact and baseline incomplete; skipping "
                f"(run {cmd} first, then --update)"
            )

    if problems:
        print("\nREGRESSION:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nno throughput regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
