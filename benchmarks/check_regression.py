"""Compare a fresh BENCH_hotpath.json against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py      # fresh run
    python benchmarks/check_regression.py                  # diff vs baseline
    python benchmarks/check_regression.py --update         # bless current run

Exits nonzero when any proxy model's measured images/second fell more
than ``--threshold`` (default 15%) below the baseline, so CI can gate
merges on substrate throughput. Improvements are reported but never
fail; bless them into the baseline with ``--update`` to tighten the bar.

Absolute throughput is machine-dependent: the committed baseline is only
meaningful when fresh run and baseline come from the same machine class.
The attention fused-vs-naive speedup is machine-*relative* and is checked
against the bench's own gate (1.3x), not the baseline.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FRESH = HERE / "BENCH_hotpath.json"
BASELINE = HERE / "BENCH_hotpath.baseline.json"
DEFAULT_THRESHOLD = 0.15


def compare(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Return a list of regression messages (empty = pass)."""
    problems: list[str] = []
    base_steps = baseline.get("steps", {})
    fresh_steps = fresh.get("steps", {})
    for name, base in base_steps.items():
        if name not in fresh_steps:
            problems.append(f"{name}: missing from fresh run")
            continue
        got = fresh_steps[name]["images_per_sec"]
        want = base["images_per_sec"]
        change = (got - want) / want
        if change < -threshold:
            problems.append(
                f"{name}: {got:.1f} images/s vs baseline {want:.1f} "
                f"({change:+.1%}, allowed -{threshold:.0%})"
            )
    gate = fresh.get("gate", {})
    if gate.get("attention_speedup_median", 0.0) < gate.get("threshold", 0.0):
        problems.append(
            f"attention speedup {gate['attention_speedup_median']:.2f}x "
            f"below its own {gate['threshold']}x gate"
        )
    return problems


def render(fresh: dict, baseline: dict) -> str:
    """Side-by-side throughput table."""
    lines = [f"{'model':<12} {'baseline':>10} {'fresh':>10} {'change':>8}"]
    for name, base in baseline.get("steps", {}).items():
        got = fresh.get("steps", {}).get(name)
        if got is None:
            lines.append(f"{name:<12} {base['images_per_sec']:>10.1f} {'—':>10}")
            continue
        change = got["images_per_sec"] / base["images_per_sec"] - 1.0
        lines.append(
            f"{name:<12} {base['images_per_sec']:>10.1f} "
            f"{got['images_per_sec']:>10.1f} {change:>+7.1%}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=FRESH, help="fresh bench artifact"
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="committed baseline"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional throughput drop (default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh artifact over the baseline and exit 0",
    )
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"no fresh artifact at {args.fresh}; run bench_hotpath.py first")
        return 2
    fresh = json.loads(args.fresh.read_text())

    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated from {args.fresh}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create it")
        return 2
    baseline = json.loads(args.baseline.read_text())

    print(render(fresh, baseline))
    problems = compare(fresh, baseline, threshold=args.threshold)
    if problems:
        print("\nREGRESSION:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nno throughput regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
