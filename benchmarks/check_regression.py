"""Compare fresh bench artifacts against the committed baselines.

Covers ``BENCH_hotpath.json`` (substrate training throughput) and
``BENCH_serving.json`` (online serving throughput/saturation).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py      # fresh run
    PYTHONPATH=src python benchmarks/bench_serving.py      # fresh run
    python benchmarks/check_regression.py                  # diff vs baselines
    python benchmarks/check_regression.py --update         # bless current runs

Exits nonzero when any proxy model's measured images/second fell more
than ``--threshold`` (default 15%) below the baseline, so CI can gate
merges on substrate throughput. Improvements are reported but never
fail; bless them into the baseline with ``--update`` to tighten the bar.

Absolute throughput is machine-dependent: the committed baseline is only
meaningful when fresh run and baseline come from the same machine class.
Two gates are machine-*relative* and checked against the artifact's own
threshold rather than the baseline: the attention fused-vs-naive speedup
(1.3x) and the serving saturation ratio (serving >= 0.9x offline
inference on the same replica set). A missing serving artifact is only a
warning, so the hotpath-only workflow keeps working.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FRESH = HERE / "BENCH_hotpath.json"
BASELINE = HERE / "BENCH_hotpath.baseline.json"
SERVING_FRESH = HERE / "BENCH_serving.json"
SERVING_BASELINE = HERE / "BENCH_serving.baseline.json"
DEFAULT_THRESHOLD = 0.15


def compare(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Return a list of regression messages (empty = pass)."""
    problems: list[str] = []
    base_steps = baseline.get("steps", {})
    fresh_steps = fresh.get("steps", {})
    for name, base in base_steps.items():
        if name not in fresh_steps:
            problems.append(f"{name}: missing from fresh run")
            continue
        got = fresh_steps[name]["images_per_sec"]
        want = base["images_per_sec"]
        change = (got - want) / want
        if change < -threshold:
            problems.append(
                f"{name}: {got:.1f} images/s vs baseline {want:.1f} "
                f"({change:+.1%}, allowed -{threshold:.0%})"
            )
    gate = fresh.get("gate", {})
    if gate.get("attention_speedup_median", 0.0) < gate.get("threshold", 0.0):
        problems.append(
            f"attention speedup {gate['attention_speedup_median']:.2f}x "
            f"below its own {gate['threshold']}x gate"
        )
    return problems


def compare_serving(
    fresh: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regressions in the serving artifact (empty = pass)."""
    problems: list[str] = []
    got = fresh.get("throughput", {}).get("serving_images_per_s", 0.0)
    want = baseline.get("throughput", {}).get("serving_images_per_s", 0.0)
    if want > 0:
        change = (got - want) / want
        if change < -threshold:
            problems.append(
                f"serving: {got:.1f} images/s vs baseline {want:.1f} "
                f"({change:+.1%}, allowed -{threshold:.0%})"
            )
    gate = fresh.get("gate", {})
    if gate.get("saturation_ratio", 0.0) < gate.get("threshold", 0.0):
        problems.append(
            f"serving saturation {gate['saturation_ratio']:.3f}x below its "
            f"own {gate['threshold']}x gate"
        )
    return problems


def render_serving(fresh: dict, baseline: dict) -> str:
    """One-line serving throughput comparison."""
    got = fresh.get("throughput", {})
    want = baseline.get("throughput", {})
    g, w = got.get("serving_images_per_s", 0.0), want.get("serving_images_per_s", 0.0)
    change = g / w - 1.0 if w > 0 else 0.0
    return (
        f"{'serving':<12} {w:>10.1f} {g:>10.1f} {change:>+7.1%}   "
        f"(saturation {fresh.get('gate', {}).get('saturation_ratio', 0.0):.3f}x)"
    )


def render(fresh: dict, baseline: dict) -> str:
    """Side-by-side throughput table."""
    lines = [f"{'model':<12} {'baseline':>10} {'fresh':>10} {'change':>8}"]
    for name, base in baseline.get("steps", {}).items():
        got = fresh.get("steps", {}).get(name)
        if got is None:
            lines.append(f"{name:<12} {base['images_per_sec']:>10.1f} {'—':>10}")
            continue
        change = got["images_per_sec"] / base["images_per_sec"] - 1.0
        lines.append(
            f"{name:<12} {base['images_per_sec']:>10.1f} "
            f"{got['images_per_sec']:>10.1f} {change:>+7.1%}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=FRESH, help="fresh bench artifact"
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="committed baseline"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional throughput drop (default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh artifact over the baseline and exit 0",
    )
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"no fresh artifact at {args.fresh}; run bench_hotpath.py first")
        return 2
    fresh = json.loads(args.fresh.read_text())

    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated from {args.fresh}")
        if SERVING_FRESH.exists():
            shutil.copyfile(SERVING_FRESH, SERVING_BASELINE)
            print(f"baseline updated from {SERVING_FRESH}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create it")
        return 2
    baseline = json.loads(args.baseline.read_text())

    print(render(fresh, baseline))
    problems = compare(fresh, baseline, threshold=args.threshold)

    if SERVING_FRESH.exists() and SERVING_BASELINE.exists():
        serving_fresh = json.loads(SERVING_FRESH.read_text())
        serving_baseline = json.loads(SERVING_BASELINE.read_text())
        print(render_serving(serving_fresh, serving_baseline))
        problems += compare_serving(
            serving_fresh, serving_baseline, threshold=args.threshold
        )
    elif SERVING_FRESH.exists() or SERVING_BASELINE.exists():
        print("serving: fresh artifact and baseline incomplete; skipping "
              "(run bench_serving.py, then --update)")

    if problems:
        print("\nREGRESSION:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nno throughput regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
