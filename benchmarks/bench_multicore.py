"""Benchmark: multiprocess backend + threaded GEMM speedup and identity.

Measures what ``EngineConfig(backend="process")`` and
``EngineConfig(intra_op_threads=N)`` buy on a multi-core host, and writes
``BENCH_multicore.json`` for ``benchmarks/check_regression.py``. Three
phases:

- **worker scaling / speedup gate** — one DDP step of the proxy-1b MAE
  at world sizes {1, 2, 4}, inline vs process backend. The gated metric
  is the *critical-path* step time, built from scheduler-independent CPU
  clocks: the inline backend pays every rank's forward+backward serially
  (one ``time.process_time`` reading), while the process backend pays
  only the slowest rank (``ProcessBackend.pop_worker_cpu_s``) plus the
  parent's reduction/optimizer CPU. On a host with >= world-size cores
  the critical path IS the wall time; on the CI container (often 1-2
  cores) wall-clock cannot show the overlap, so both are recorded and
  the gate reads the critical path (DESIGN §12 spells out the model).
- **bit-identity gate** — 3 full fp32 optimizer steps, inline vs
  process, same seeds: losses and every ``state_dict`` entry must be
  bit-equal. This is the acceptance check that the staged-gradient
  reduction preserves the inline contribution order exactly.
- **thread scaling** — the same step with ``intra_op_threads`` {2, 4};
  reports the GEMM tile critical path (``GemmPool`` ``serial_s`` /
  ``effective_s``, per-tile ``time.thread_time``) — the intra-op analog
  of the worker curve.

Run directly (``python benchmarks/bench_multicore.py``) or through
pytest. Keep the ``__main__`` guard if you copy this file: spawn workers
re-import the main module.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import numpy as np

from repro.core.config import get_mae_config
from repro.core.engine import EngineConfig, make_engine
from repro.core.trainer import _mae_step_fn
from repro.comm.world import World
from repro.models import MaskedAutoencoder
from repro.models.workspace import Workspace

OUT_PATH = Path(__file__).resolve().parent / "BENCH_multicore.json"

BENCH_MODEL = "proxy-1b"
MICRO_BATCH = 16
WORKER_COUNTS = (1, 2, 4)
THREAD_COUNTS = (2, 4)
MEASURE_STEPS = 3
IDENTITY_STEPS = 3
GATE_WORKERS = 4
GATE_THRESHOLD = 2.5


def _build_engine(world: int, backend: str, threads: int = 1):
    model = MaskedAutoencoder(
        get_mae_config(BENCH_MODEL), rng=np.random.default_rng(0)
    )
    model.use_workspace(Workspace())
    cfg = EngineConfig(backend=backend, intra_op_threads=threads)
    return make_engine(model, "ddp", world=World(world), config=cfg)


def _micros(world: int, seed: int = 1) -> list:
    enc = get_mae_config(BENCH_MODEL).encoder
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(world):
        imgs = rng.standard_normal(
            (MICRO_BATCH, enc.in_chans, enc.img_size, enc.img_size)
        )
        noise = rng.random((MICRO_BATCH, enc.n_patches))
        out.append((imgs, noise))
    return out


# -- phase 1: worker scaling ---------------------------------------------------


def _measure_inline(world: int) -> dict:
    eng = _build_engine(world, "inline")
    data = _micros(world)
    try:
        eng.train_step(data, _mae_step_fn)  # warmup
        cpu, wall = [], []
        for _ in range(MEASURE_STEPS):
            c0, w0 = time.process_time(), time.perf_counter()
            eng.train_step(data, _mae_step_fn)
            cpu.append(time.process_time() - c0)
            wall.append(time.perf_counter() - w0)
    finally:
        eng.close()
    return {
        "step_cpu_s": float(np.median(cpu)),
        "step_wall_s": float(np.median(wall)),
    }


def _measure_process(world: int) -> dict:
    eng = _build_engine(world, "process")
    data = _micros(world)
    try:
        eng.train_step(data, _mae_step_fn)  # warmup
        eng._backend.pop_worker_cpu_s()
        parent_cpu, worker_max, worker_sum, wall = [], [], [], []
        for _ in range(MEASURE_STEPS):
            c0, w0 = time.process_time(), time.perf_counter()
            eng.train_step(data, _mae_step_fn)
            parent_cpu.append(time.process_time() - c0)
            wall.append(time.perf_counter() - w0)
            per_rank = eng._backend.pop_worker_cpu_s()
            worker_max.append(max(per_rank))
            worker_sum.append(sum(per_rank))
    finally:
        eng.close()
    i = int(np.argsort(wall)[len(wall) // 2])  # median-wall step
    return {
        "parent_cpu_s": parent_cpu[i],
        "worker_cpu_max_s": worker_max[i],
        "worker_cpu_sum_s": worker_sum[i],
        "effective_step_s": worker_max[i] + parent_cpu[i],
        "step_wall_s": wall[i],
    }


def _worker_scaling() -> dict:
    out = {}
    for world in WORKER_COUNTS:
        inline = _measure_inline(world)
        proc = _measure_process(world)
        out[str(world)] = {
            "inline": inline,
            "process": proc,
            # Critical-path speedup: what a host with >= `world` cores
            # gains over running every rank serially in one process.
            "speedup_effective": inline["step_cpu_s"] / proc["effective_step_s"],
            "speedup_wall": inline["step_wall_s"] / proc["step_wall_s"],
        }
    return out


# -- phase 2: bit-identity gate ------------------------------------------------


def _trajectory(backend: str) -> tuple[list[float], dict]:
    eng = _build_engine(GATE_WORKERS, backend)
    data = _micros(GATE_WORKERS)
    try:
        losses = [
            eng.train_step(data, _mae_step_fn) for _ in range(IDENTITY_STEPS)
        ]
        state = {k: np.array(v) for k, v in eng.model.state_dict().items()}
    finally:
        eng.close()
    return losses, state


def _bit_identity() -> bool:
    inline_losses, inline_state = _trajectory("inline")
    process_losses, process_state = _trajectory("process")
    return inline_losses == process_losses and all(
        np.array_equal(inline_state[k], process_state[k]) for k in inline_state
    )


# -- phase 3: thread scaling ---------------------------------------------------


def _thread_scaling() -> dict:
    out = {}
    for threads in THREAD_COUNTS:
        eng = _build_engine(1, "inline", threads=threads)
        data = _micros(1)
        try:
            eng.train_step(data, _mae_step_fn)  # warmup
            pool = eng.gemm_pool
            pool.serial_s = pool.effective_s = 0.0
            wall = []
            for _ in range(MEASURE_STEPS):
                w0 = time.perf_counter()
                eng.train_step(data, _mae_step_fn)
                wall.append(time.perf_counter() - w0)
            stats = eng.gemm_pool.stats()
        finally:
            eng.close()
        out[str(threads)] = {
            "step_wall_s": float(np.median(wall)),
            "gemm_serial_s": stats["serial_s"],
            "gemm_effective_s": stats["effective_s"],
            # Tile critical-path scaling over the blocked dispatches.
            "gemm_scaling": stats["serial_s"] / max(stats["effective_s"], 1e-12),
            "dispatches": stats["dispatches"],
            "fused_calls": stats["fused_calls"],
        }
    return out


# -- driver --------------------------------------------------------------------


def run_multicore() -> dict:
    """Run all phases; returns the JSON-ready result dict."""
    workers = _worker_scaling()
    identical = _bit_identity()
    threads = _thread_scaling()
    gate_row = workers[str(GATE_WORKERS)]
    return {
        "schema": 1,
        "host": {"cpu_count": multiprocessing.cpu_count()},
        "config": {
            "model": BENCH_MODEL,
            "micro_batch": MICRO_BATCH,
            "measure_steps": MEASURE_STEPS,
        },
        "workers": workers,
        "threads": threads,
        "gate": {
            "workers": GATE_WORKERS,
            "threshold": GATE_THRESHOLD,
            "speedup": gate_row["speedup_effective"],
            "bit_identical": identical,
        },
    }


def render_multicore(result: dict) -> str:
    """Human-readable report of one run."""
    lines = [
        f"host cores: {result['host']['cpu_count']}  model: "
        f"{result['config']['model']}  micro batch: "
        f"{result['config']['micro_batch']}",
        "",
        f"{'workers':<8} {'inline cpu':>11} {'proc crit.':>11} "
        f"{'speedup':>8} {'wall x':>7}",
    ]
    for world in WORKER_COUNTS:
        row = result["workers"][str(world)]
        lines.append(
            f"{world:<8} {row['inline']['step_cpu_s']:>10.3f}s "
            f"{row['process']['effective_step_s']:>10.3f}s "
            f"{row['speedup_effective']:>7.2f}x "
            f"{row['speedup_wall']:>6.2f}x"
        )
    lines.append("")
    for threads in THREAD_COUNTS:
        row = result["threads"][str(threads)]
        lines.append(
            f"threads={threads}: gemm critical-path scaling "
            f"{row['gemm_scaling']:.2f}x over {row['dispatches']} dispatches"
        )
    g = result["gate"]
    lines.append("")
    lines.append(
        f"gate: {g['speedup']:.2f}x at {g['workers']} workers "
        f"(>= {g['threshold']}x), fp32 bit-identical: {g['bit_identical']}"
    )
    return "\n".join(lines)


def _write(result: dict) -> None:
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")


def _assert_gates(result: dict) -> None:
    g = result["gate"]
    assert g["bit_identical"], "process backend diverged from inline (fp32)"
    assert g["speedup"] >= g["threshold"], (
        f"critical-path speedup {g['speedup']:.2f}x at {g['workers']} workers "
        f"below the {g['threshold']}x gate"
    )


def test_multicore(benchmark):
    result = benchmark.pedantic(run_multicore, rounds=1, iterations=1)
    from benchmarks.conftest import emit

    emit("Multicore", render_multicore(result))
    _write(result)
    _assert_gates(result)


if __name__ == "__main__":
    res = run_multicore()
    print(render_multicore(res))
    _write(res)
    _assert_gates(res)
    print(f"\nwrote {OUT_PATH}")
