"""Benchmark (extension): few-shot probing across model scales.

Implements the paper's stated future-work direction on the proxy suite.
"""

from repro.experiments.fewshot import render_fewshot, run_fewshot

from benchmarks.conftest import emit

ORDER = ["proxy-base", "proxy-huge", "proxy-1b", "proxy-3b"]


def test_extension_fewshot(benchmark, pretrained_suite, probe_datasets):
    exp = benchmark.pedantic(
        lambda: run_fewshot(
            suite=pretrained_suite, data=probe_datasets["aid"], dataset="aid"
        ),
        rounds=1,
        iterations=1,
    )
    emit("Extension: few-shot probing", render_fewshot(exp))
    for model, result in exp.results.items():
        # More shots never hurt much: the 10-shot probe beats 1-shot.
        assert result.top1[-1] > result.top1[0], model
    # The scale benefit survives at 10 shots: the largest model beats
    # the smallest.
    assert exp.top1("proxy-3b")[-1] > exp.top1("proxy-base")[-1]
