"""Benchmark: Fig. 3 — weak scaling, models that fit on one GPU."""

from repro.experiments.fig1 import DEFAULT_NODE_GRID
from repro.experiments.fig3 import render_fig3, run_fig3

from benchmarks.conftest import emit


def test_fig3(benchmark):
    result = benchmark.pedantic(
        run_fig3, args=(DEFAULT_NODE_GRID,), rounds=1, iterations=1
    )
    emit("Fig 3", render_fig3(result))
    models = ["vit-base", "vit-huge", "vit-1b", "vit-3b"]
    for model in models:
        at_scale = {s: result.ips(model, s)[-1] for s in result.grids[model]}
        # HYBRID_1GPU best everywhere; FULL_SHARD worst FSDP mode at scale.
        assert at_scale["HYBRID_1GPU"] == max(at_scale.values()), model
        fsdp = {k: v for k, v in at_scale.items() if k != "DDP"}
        assert at_scale["FULL_SHARD"] == min(fsdp.values()), model
        assert at_scale["DDP"] < at_scale["HYBRID_1GPU"], model
    # DDP-vs-FSDP gap grows with model size (paper Section IV-C).
    gap = lambda m: result.ips(m, "HYBRID_1GPU")[-1] / result.ips(m, "DDP")[-1]
    assert gap("vit-3b") > gap("vit-base")
    # Memory panel: ViT-3B > 60 GB-ish unsharded; FULL_SHARD ~4 GB at scale.
    assert result.memory_gib("vit-3b", "NO_SHARD")[0] > 55
    assert result.memory_gib("vit-3b", "FULL_SHARD")[-1] < 10
