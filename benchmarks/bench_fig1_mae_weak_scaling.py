"""Benchmark: Fig. 1 — MAE ViT-3B weak scaling (io / syn / no-comm / real)."""

from repro.experiments.fig1 import DEFAULT_NODE_GRID, render_fig1, run_fig1

from benchmarks.conftest import emit


def test_fig1(benchmark):
    result = benchmark.pedantic(
        run_fig1, args=(DEFAULT_NODE_GRID,), rounds=1, iterations=1
    )
    emit("Fig 1", render_fig1(result))
    curves = result.curves()
    # Never IO-bound; gap grows with scale (paper Section IV-A).
    assert all(io > syn for io, syn in zip(curves["io"], curves["syn"]))
    gaps = [io - syn for io, syn in zip(curves["io"], curves["syn"])]
    assert gaps[-1] > gaps[0]
    # Communication share grows toward the paper's ~22% at 64 nodes.
    fracs = result.comm_fractions()
    assert fracs[-1] > fracs[0]
    assert 0.15 < fracs[-1] < 0.35
    # real tracks syn from below.
    assert all(r <= s for r, s in zip(curves["real"], curves["syn"]))
