"""Benchmark (extension): segmentation probing across model scales.

The second of the paper's stated future-work tasks (after few-shot):
dense prediction with frozen patch tokens.
"""

from repro.experiments.segmentation_exp import render_segmentation, run_segmentation

from benchmarks.conftest import emit


def test_extension_segmentation(benchmark, pretrained_suite):
    exp = benchmark.pedantic(
        lambda: run_segmentation(suite=pretrained_suite), rounds=1, iterations=1
    )
    emit("Extension: segmentation probing", render_segmentation(exp))
    mious = [exp.miou(m) for m in exp.model_order]
    # The scale-quality trend carries to dense prediction: mIoU is
    # monotone in model size, with the largest clearly beating the
    # smallest.
    assert all(a <= b + 1e-9 for a, b in zip(mious, mious[1:])), mious
    assert mious[-1] > mious[0] + 0.01
