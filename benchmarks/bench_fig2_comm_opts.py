"""Benchmark: Fig. 2 — ViT-5B sharding x prefetch x limit_all_gathers."""

from repro.core.sharding import BackwardPrefetch
from repro.experiments.fig2 import best_configuration, render_fig2, run_fig2

from benchmarks.conftest import emit


def test_fig2(benchmark):
    points = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    emit("Fig 2", render_fig2(points))
    best = best_configuration(points)
    # Paper: BACKWARD_PRE + limit_all_gathers is the best configuration.
    assert best.prefetch is BackwardPrefetch.BACKWARD_PRE
    assert best.limit_all_gathers
    # limit_all_gathers improves (or at worst matches) every config.
    by_key = {(p.strategy, p.prefetch, p.limit_all_gathers): p.ips for p in points}
    for (s, pf, lim), ips in by_key.items():
        if lim:
            assert ips >= by_key[(s, pf, False)]
