"""Benchmark driver: the elastic resize chaos campaign.

Thin wrapper over :func:`repro.elastic.campaign.run_resize_campaign`:
runs the full preempt/resize/requeue lifecycle (FULL_SHARD 16 oracle,
forced FULL_SHARD 16 → HYBRID 8 fold, random compatible transitions on
inline *and* process backends) and writes ``ELASTIC_campaign.json`` next
to this file for ``benchmarks/check_regression.py`` — whose gate is
correctness, not throughput: ``bit_identical`` must hold.

Usage::

    PYTHONPATH=src python benchmarks/bench_elastic.py
    python benchmarks/check_regression.py
"""

from __future__ import annotations

from pathlib import Path

HERE = Path(__file__).resolve().parent


def main() -> dict:
    """Run the campaign and write the artifact; returns the summary."""
    from repro.elastic.campaign import main as campaign_main

    return campaign_main(out_path=str(HERE / "ELASTIC_campaign.json"))


if __name__ == "__main__":
    summary = main()
    raise SystemExit(0 if summary["bit_identical"] else 1)
