"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures, prints
the paper-comparable report (run with ``-s`` or capture the output file),
and asserts the qualitative shapes the paper reports. Long-running
artifacts (the pretrained proxy suite) are cached under
``.pretrain_cache/`` and shared across bench processes.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a labelled report block (shows up in bench output)."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def probe_datasets():
    from repro.experiments.table3 import build_probe_datasets

    return build_probe_datasets(img_size=32, seed=0)


@pytest.fixture(scope="session")
def pretrained_suite():
    from repro.experiments.downstream import pretrain_suite

    return pretrain_suite()


@pytest.fixture(scope="session")
def probe_results(pretrained_suite, probe_datasets):
    from repro.experiments.table3 import PROBE_EPOCHS, probe_suite

    return probe_suite(pretrained_suite, probe_datasets, epochs=PROBE_EPOCHS)
