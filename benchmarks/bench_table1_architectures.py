"""Benchmark: Table I — architecture inventory and parameter accounting."""

from repro.experiments.table1 import render_table1, run_table1

from benchmarks.conftest import emit


def test_table1(benchmark):
    rows = benchmark(run_table1)
    emit("Table I", render_table1(rows))
    by_name = {r.cfg.name: r for r in rows}
    # Paper-shape assertions: counts match everywhere but the 5B.
    for name, row in by_name.items():
        if name != "vit-5b":
            assert abs(row.relative_error) < 0.02
    assert by_name["vit-15b"].computed_params_m > 14_000
