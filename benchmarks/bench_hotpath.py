"""Benchmark: measured hot-path performance of the NumPy substrate.

Times the fused kernels against the naive reference oracle
(:mod:`repro.models.reference`), times full proxy MAE training steps,
and writes the machine-readable artifact ``BENCH_hotpath.json`` that
``benchmarks/check_regression.py`` diffs against the committed baseline.

Gates asserted here:

- fused attention forward+backward is >= 1.3x the naive implementation
  at the ViT-Tiny proxy shape (W=192, H=3, N=17 tokens, B=8);
- fused and naive kernels agree numerically (atol=1e-6; observed
  ~1e-15 — same math, different evaluation order).

Run directly (``python benchmarks/bench_hotpath.py``) or through pytest.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.comm.world import World
from repro.core.config import get_mae_config
from repro.core.ddp import DDPEngine
from repro.core.trainer import MAEPretrainer
from repro.models import MaskedAutoencoder, Workspace
from repro.models import functional as F
from repro.models import reference as R
from repro.models.attention import MultiHeadSelfAttention
from repro.perf.hotpath import rss_peak_mb, time_pair, time_train_step

OUT_PATH = Path(__file__).resolve().parent / "BENCH_hotpath.json"

#: ViT-Tiny width/heads at the proxy token count (img 32 / patch 8 -> 17
#: tokens with cls): the shape the speedup gate is defined on.
GATE_SHAPE = dict(b=8, n=17, width=192, heads=3)
GATE_THRESHOLD = 1.3

STEP_MODELS = ("proxy-base", "proxy-huge", "proxy-1b")
STEP_BATCH = 16


# -- attention: fused vs naive -------------------------------------------------


def _attention_pair(b: int, n: int, width: int, heads: int):
    """Two identically-initialized attentions + one fwd/bwd closure each."""
    fused = MultiHeadSelfAttention(width, heads, rng=np.random.default_rng(1))
    naive = MultiHeadSelfAttention(
        width, heads, rng=np.random.default_rng(1), fused=False
    )
    fused.use_workspace(Workspace())
    rng = np.random.default_rng(2)
    x = rng.standard_normal((b, n, width))
    dout = rng.standard_normal((b, n, width))

    def run_fused():
        fused.zero_grad()
        fused(x)
        return fused.backward(dout)

    def run_naive():
        naive.zero_grad()
        naive(x)
        return naive.backward(dout)

    return fused, naive, run_fused, run_naive


def _check_attention_equivalence(fused, naive, run_fused, run_naive) -> float:
    """Assert fused == naive (outputs, input grads, param grads); return max |diff|."""
    rng = np.random.default_rng(3)
    x = rng.standard_normal((4, 9, fused.width))
    dout = rng.standard_normal((4, 9, fused.width))
    fused.zero_grad()
    naive.zero_grad()
    yf = fused(x).copy()
    dxf = fused.backward(dout).copy()
    yn = naive(x)
    dxn = naive.backward(dout)
    worst = 0.0
    for got, want in [(yf, yn), (dxf, dxn)]:
        np.testing.assert_allclose(got, want, atol=1e-6, rtol=0)
        worst = max(worst, float(np.abs(got - want).max()))
    for (name, pf), (_, pn) in zip(
        fused.named_parameters(), naive.named_parameters()
    ):
        np.testing.assert_allclose(pf.grad, pn.grad, atol=1e-6, rtol=0, err_msg=name)
        worst = max(worst, float(np.abs(pf.grad - pn.grad).max()))
    return worst


# -- elementwise kernels: fused vs reference -----------------------------------


def _kernel_pairs(shape=(8, 64, 192)):
    """(name, naive_fn, fused_fn) closures over preallocated buffers."""
    rng = np.random.default_rng(4)
    x = rng.standard_normal(shape)
    dout = rng.standard_normal(shape)
    gamma = np.ones(shape[-1])
    beta = np.zeros(shape[-1])
    y = np.empty_like(x)
    t = np.empty_like(x)
    xhat = np.empty_like(x)
    scratch = np.empty_like(x)
    _, t_ref = R.gelu(x)
    _, ln_cache = F.layernorm(x, gamma, beta, out=y.copy(), xhat_out=xhat)
    att = rng.standard_normal((8, 3, 64, 64))
    att_sm = R.softmax(att)
    att_out = np.empty_like(att)
    return [
        ("gelu_fwd", lambda: R.gelu(x), lambda: F.gelu(x, out=y, t_out=t)),
        (
            "gelu_bwd",
            lambda: R.gelu_backward(dout, x, t_ref),
            lambda: F.gelu_backward(dout, x, t_ref, out=y, scratch=scratch),
        ),
        (
            "layernorm_fwd",
            lambda: R.layernorm(x, gamma, beta),
            lambda: F.layernorm(x, gamma, beta, out=y, xhat_out=xhat),
        ),
        (
            "layernorm_bwd",
            lambda: R.layernorm_backward(dout, gamma, ln_cache),
            lambda: F.layernorm_backward(
                dout, gamma, ln_cache, out=y, scratch=scratch
            ),
        ),
        (
            "softmax_fwd",
            lambda: R.softmax(att),
            lambda: F.softmax(att, out=att_out),
        ),
        (
            "softmax_bwd",
            lambda: R.softmax_backward(att, att_sm),
            lambda: F.softmax_backward(att, att_sm, out=att_out),
        ),
    ]


# -- full proxy training steps -------------------------------------------------


def _step_timing(name: str):
    cfg = get_mae_config(name)
    model = MaskedAutoencoder(cfg, rng=np.random.default_rng(0))
    engine = DDPEngine(model, World(1, ranks_per_node=1))
    images = np.random.default_rng(5).standard_normal(
        (4 * STEP_BATCH, cfg.encoder.in_chans, cfg.encoder.img_size,
         cfg.encoder.img_size)
    )
    trainer = MAEPretrainer(engine, images, global_batch=STEP_BATCH, seed=1)
    noise = trainer._step_noise(0, STEP_BATCH, cfg.encoder.n_patches)
    micros = [(images[:STEP_BATCH], noise)]

    def step():
        from repro.core.trainer import _mae_step_fn

        engine.train_step(micros, _mae_step_fn)

    return time_train_step(
        step, images_per_step=STEP_BATCH, name=name, warmup=1, repeats=5
    )


# -- driver --------------------------------------------------------------------


def run_hotpath() -> dict:
    """Run the full suite; returns the JSON-ready result dict."""
    fused, naive, run_fused, run_naive = _attention_pair(**GATE_SHAPE)
    max_diff = _check_attention_equivalence(fused, naive, run_fused, run_naive)
    attn = time_pair(
        run_naive,
        run_fused,
        name_a="attention_naive",
        name_b="attention_fused",
        warmup=3,
        repeats=15,
        number=10,
    )
    kernels = {}
    for kname, naive_fn, fused_fn in _kernel_pairs():
        kernels[kname] = time_pair(
            naive_fn,
            fused_fn,
            name_a=f"{kname}_naive",
            name_b=f"{kname}_fused",
            warmup=3,
            repeats=11,
            number=20,
        ).to_dict()
    steps = {name: _step_timing(name).to_dict() for name in STEP_MODELS}
    return {
        "schema": 1,
        "gate": {
            "shape": GATE_SHAPE,
            "threshold": GATE_THRESHOLD,
            "attention_speedup_median": attn.median_ratio,
            "attention_speedup_min": attn.min_ratio,
            "equivalence_max_abs_diff": max_diff,
        },
        "attention": attn.to_dict(),
        "kernels": kernels,
        "steps": steps,
        "peak_rss_mb": rss_peak_mb(),
    }


def render_hotpath(result: dict) -> str:
    """Human-readable report of one run."""
    lines = []
    g = result["gate"]
    lines.append(
        f"attention fwd+bwd speedup (fused vs naive, W={g['shape']['width']}, "
        f"N={g['shape']['n']}): median {g['attention_speedup_median']:.2f}x, "
        f"min {g['attention_speedup_min']:.2f}x (gate >= {g['threshold']}x)"
    )
    lines.append(f"fused-vs-naive max |diff|: {g['equivalence_max_abs_diff']:.2e}")
    lines.append("")
    lines.append(f"{'kernel':<16} {'naive us':>10} {'fused us':>10} {'speedup':>8}")
    for name, k in result["kernels"].items():
        lines.append(
            f"{name:<16} {k['a']['median_us']:>10.1f} {k['b']['median_us']:>10.1f} "
            f"{k['median_ratio']:>7.2f}x"
        )
    lines.append("")
    lines.append(f"{'model':<12} {'step ms':>10} {'images/s':>10} {'rss MB':>9}")
    for name, s in result["steps"].items():
        lines.append(
            f"{name:<12} {s['median_step_ms']:>10.1f} {s['images_per_sec']:>10.1f} "
            f"{s['peak_rss_mb']:>9.0f}"
        )
    return "\n".join(lines)


def _write(result: dict) -> None:
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")


def _assert_gates(result: dict) -> None:
    g = result["gate"]
    assert g["equivalence_max_abs_diff"] < 1e-6
    assert g["attention_speedup_median"] >= g["threshold"], (
        f"fused attention {g['attention_speedup_median']:.2f}x < "
        f"{g['threshold']}x gate"
    )
    for name, s in result["steps"].items():
        assert s["images_per_sec"] > 0, name


def test_hotpath(benchmark):
    result = benchmark.pedantic(run_hotpath, rounds=1, iterations=1)
    from benchmarks.conftest import emit

    emit("Hot path", render_hotpath(result))
    _write(result)
    _assert_gates(result)


if __name__ == "__main__":
    res = run_hotpath()
    print(render_hotpath(res))
    _write(res)
    _assert_gates(res)
    print(f"\nwrote {OUT_PATH}")
