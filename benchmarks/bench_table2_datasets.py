"""Benchmark: Table II — dataset inventory and split construction."""

import pytest

from repro.experiments.table2 import render_table2, run_table2

from benchmarks.conftest import emit


def test_table2(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit("Table II", render_table2(rows))
    # The paper's training ratios are preserved exactly.
    for row in rows:
        assert row.train_ratio == pytest.approx(row.paper_train_ratio, abs=0.005)
    names = {r.name for r in rows}
    assert names == {"millionaid", "ucm", "aid", "nwpu"}
