"""Benchmark: Fig. 4 — 5B/15B weak scaling, memory, and power traces."""

from repro.experiments.fig4 import render_fig4, run_fig4

from benchmarks.conftest import emit


def test_fig4(benchmark):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    emit("Fig 4", render_fig4(result))
    # ViT-15B: SHARD_GRAD_OP scales best of all strategies (paper IV-D).
    at_scale_15b = {s: g.ips[-1] for s, g in result.grid_15b.items()}
    assert at_scale_15b["SHARD_GRAD_OP"] == max(at_scale_15b.values())
    # ViT-5B: SGO beats FULL_SHARD at 32 nodes roughly by the paper's
    # 1509/1307 ratio.
    assert 1.02 < result.sgo_over_full < 1.3
    # Memory-pressure effect: HYBRID_8GPUs > HYBRID_2GPUs at scale for 5B.
    assert (
        result.grid_5b["HYBRID_8GPUs"].ips[-1]
        > result.grid_5b["HYBRID_2GPUs"].ips[-1]
    )
    # SGO memory above FULL_SHARD (params unsharded during compute).
    assert (
        result.grid_15b["SHARD_GRAD_OP"].points[-1].memory.total
        > result.grid_15b["FULL_SHARD"].points[-1].memory.total
    )
    # rocm-smi panel: utilization ~100%, SGO power above FULL_SHARD.
    for t in result.power_traces.values():
        assert t.mean_utilization > 90
    assert (
        result.power_traces["SHARD_GRAD_OP"].mean_power
        > result.power_traces["FULL_SHARD"].mean_power
    )
