"""Benchmarks: ablations of the mechanisms behind the paper's findings.

Not paper artifacts — design-choice studies DESIGN.md calls out:
DDP bucket size, HYBRID shard-group size, and the compute/communication
contention calibration.
"""

from repro.experiments.ablations import (
    contention_sweep,
    ddp_bucket_sweep,
    render_bucket_sweep,
    render_contention_sweep,
    render_shard_group_sweep,
    shard_group_sweep,
)

from benchmarks.conftest import emit


def test_ablation_ddp_bucket_size(benchmark):
    points = benchmark.pedantic(ddp_bucket_sweep, rounds=1, iterations=1)
    emit("Ablation: DDP bucket size", render_bucket_sweep(points))
    by_cap = {p.cap_mb: p for p in points}
    # Bucket count scales inversely with the cap...
    assert by_cap[5].comm_calls > by_cap[25].comm_calls > by_cap[400].comm_calls
    # ...and PyTorch's default 25 MB is far from optimal at 3B scale.
    assert by_cap[400].ips > 1.05 * by_cap[25].ips


def test_ablation_shard_group_size(benchmark):
    points = benchmark.pedantic(shard_group_sweep, rounds=1, iterations=1)
    emit("Ablation: HYBRID shard-group size", render_shard_group_sweep(points))
    by_size = {p.shard_size: p for p in points}
    # Memory falls monotonically with the shard group...
    mems = [by_size[s].memory_gib for s in sorted(by_size)]
    assert all(a >= b for a, b in zip(mems, mems[1:]))
    # ...while throughput does not (the Fig. 3/4 trade-off: HYBRID_1GPU
    # wins when the model fits, wider groups only pay off under memory
    # pressure).
    assert by_size[1].ips == max(p.ips for p in points)


def test_ablation_contention_calibration(benchmark):
    points = benchmark.pedantic(contention_sweep, rounds=1, iterations=1)
    emit("Ablation: overlap contention", render_contention_sweep(points))
    shares = [f for _, f in points]
    assert shares == sorted(shares)
    # Zero contention would imply almost-free communication — far from
    # the paper's measured 22%; near-full contention reproduces it.
    assert shares[0] < 0.10
    assert 0.15 < shares[-1] < 0.40
