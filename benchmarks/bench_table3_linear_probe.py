"""Benchmark: Table III — linear-probe top-1 across datasets and sizes."""

import numpy as np

from repro.experiments.downstream import DownstreamRecipe, pretrain_suite
from repro.experiments.report import render_table
from repro.experiments.table3 import probe_suite

from benchmarks.conftest import emit

ORDER = ["proxy-base", "proxy-huge", "proxy-1b", "proxy-3b"]
LONG_FACTOR = 4


def test_table3(benchmark, pretrained_suite, probe_datasets, probe_results):
    datasets = list(probe_datasets)

    # The paper's extra row: Base pretrained 4x longer.
    long_recipe = DownstreamRecipe(
        steps=DownstreamRecipe().steps * LONG_FACTOR, model_names=("proxy-base",)
    )
    long_suite = pretrain_suite(long_recipe)
    long_probes = benchmark.pedantic(
        lambda: probe_suite(long_suite, probe_datasets), rounds=1, iterations=1
    )

    rows = [
        ["proxy-base (4x pretrain)"]
        + [
            round(100 * long_probes[("proxy-base", ds)].final_top1, 2)
            for ds in datasets
        ]
    ]
    rows += [
        [m] + [round(100 * probe_results[(m, ds)].final_top1, 2) for ds in datasets]
        for m in ORDER
    ]
    emit(
        "Table III",
        render_table(["model", *datasets], rows, "linear-probe top-1 (%)"),
    )

    # Paper shapes: accuracy improves with scale on every dataset
    # (largest vs smallest strictly; the mean over datasets strictly
    # monotone along the chain), with a large base->3b gain.
    for ds in datasets:
        assert (
            probe_results[("proxy-3b", ds)].final_top1
            > probe_results[("proxy-base", ds)].final_top1
        ), ds
    means = [
        np.mean([probe_results[(m, ds)].final_top1 for ds in datasets])
        for m in ORDER
    ]
    assert all(a < b for a, b in zip(means, means[1:])), means
    gain = means[-1] - means[0]
    assert gain > 0.08, f"base->3b mean gain too small: {gain:.3f}"
    # Longer pretraining helps the Base model on average (400 vs 100 ep).
    long_mean = np.mean(
        [long_probes[("proxy-base", ds)].final_top1 for ds in datasets]
    )
    assert long_mean > means[0]
