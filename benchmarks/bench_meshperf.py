"""Benchmark driver: mesh perf-model reconciliation.

Thin wrapper over
:func:`repro.experiments.mesh_crossover.run_mesh_reconciliation`: trains
the proxy MAE under every ``mesh_axes.CONFIGS`` composition, compares
the measured per-axis wire traffic against the closed-form predictions
from ``repro.perf.mesh_model``, and writes ``MESHPERF.json`` next to
this file for ``benchmarks/check_regression.py`` — whose gate is
correctness, not throughput: ``reconciled`` must hold (tp and dp match
to the byte and to the call; pp within the documented tolerance).

Usage::

    PYTHONPATH=src python benchmarks/bench_meshperf.py
    python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
from pathlib import Path

HERE = Path(__file__).resolve().parent


def main(out_path: str | None = None) -> dict:
    """Run the reconciliation and write the artifact; returns the summary."""
    from repro.experiments.mesh_axes import STEPS
    from repro.experiments.mesh_crossover import (
        PP_TOLERANCE,
        run_mesh_reconciliation,
    )

    rows = run_mesh_reconciliation(STEPS)
    summary = {
        "schema": 1,
        "steps": STEPS,
        "pp_tolerance": PP_TOLERANCE,
        "reconciled": all(r.ok for r in rows),
        "axes": [
            {
                "mesh": r.label,
                "axis": r.axis,
                "predicted_bytes": r.predicted_bytes,
                "measured_bytes": r.measured_bytes,
                "predicted_calls": r.predicted_calls,
                "measured_calls": r.measured_calls,
                "tolerance": r.tolerance,
                "ok": r.ok,
            }
            for r in rows
        ],
    }
    path = Path(out_path) if out_path is not None else HERE / "MESHPERF.json"
    path.write_text(json.dumps(summary, indent=2) + "\n")
    verdict = "reconciled" if summary["reconciled"] else "DRIFTED"
    print(
        f"meshperf: {len(rows)} axis rows over "
        f"{len({r.label for r in rows})} meshes -> {verdict} ({path})"
    )
    return summary


if __name__ == "__main__":
    summary = main()
    raise SystemExit(0 if summary["reconciled"] else 1)
