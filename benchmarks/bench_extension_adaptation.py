"""Benchmark (extension): the downstream-adaptation spectrum.

Concretizes the paper's Section II discussion: supervised from scratch
vs linear probe vs partial vs full fine-tuning, for a small and a large
pretrained encoder.
"""

from repro.experiments.adaptation import render_adaptation, run_adaptation

from benchmarks.conftest import emit


def test_extension_adaptation(benchmark, pretrained_suite, probe_datasets):
    result = benchmark.pedantic(
        lambda: run_adaptation(
            suite=pretrained_suite, data=probe_datasets["ucm"], dataset="ucm"
        ),
        rounds=1,
        iterations=1,
    )
    emit("Extension: adaptation spectrum", render_adaptation(result))
    for model in result.models:
        scratch = result.top1(model, "scratch")
        probe = result.top1(model, "probe")
        full = result.top1(model, "finetune-full")
        # Pretraining pays: fine-tuning the pretrained encoder beats
        # training the same architecture from random initialization...
        assert full > scratch, model
        # ...and full fine-tuning at least matches the linear probe.
        assert full >= probe - 0.02, model
    # Scale helps under every protocol.
    for protocol in result.protocols:
        assert result.top1("proxy-3b", protocol) > result.top1(
            "proxy-base", protocol
        ), protocol
    # Measured nuance worth recording (not in the paper): with this
    # label budget (TR = 50%), supervised from-scratch can beat the
    # *frozen* probe for the smallest model — the probe's advantage is a
    # compute/label-budget argument, not an accuracy guarantee.
