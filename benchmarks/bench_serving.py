"""Benchmark: online serving throughput, latency, and cache behavior.

Drives :class:`repro.serve.InferenceServer` with deterministic load and
writes ``BENCH_serving.json`` for ``benchmarks/check_regression.py``.
Three phases:

- **throughput / saturation gate** — a closed burst (every request
  present at t=0) keeps the batcher forming full batches back to back,
  so serving degenerates to offline inference plus queue bookkeeping.
  Wall-clock images/s of the serving path must reach >=
  ``GATE_THRESHOLD`` x offline :func:`extract_features` at the same
  model, batch size, and replica count (best of ``GATE_REPEATS`` runs,
  same process, same machine).
- **latency under paced load** — seeded arrivals at ~70% of the
  cost-model capacity of each replica set; p50/p99 are *virtual-time*
  quantities (scheduling + modeled service), deterministic and
  machine-independent.
- **cache** — repeat-heavy traffic over a small working set; reports
  the steady-state hit rate.
- **threaded encoder** — the saturation burst again with
  ``intra_op_threads=THREADED_ENCODER_THREADS``; reports threaded
  serving images/s and asserts delivered features are bit-identical to
  direct ``extract_features`` on a model threaded with the *same* pool
  size (thread count is part of the numerical configuration — see
  ``repro.backend.threads``).
- **open loop** — the seeded multi-tenant diurnal+flash scenario from
  ``repro.experiments.traffic_exp``, served twice: on the fleet the
  capacity planner priced (then reconciled predicted vs measured
  attainment / cost / utilization) and under the SLO-driven autoscaler.
  All quantities are virtual-time, so these columns are deterministic
  and machine-independent.

Run directly (``python benchmarks/bench_serving.py``) or through pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.config import get_mae_config
from repro.eval.features import extract_features
from repro.hardware.gpu import GpuSpec
from repro.models import MaskedAutoencoder
from repro.serve import (
    FixedServiceModel,
    InferenceServer,
    ServiceTimeModel,
    latency_stats,
)

OUT_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"

GATE_MODEL = "proxy-huge"
GATE_BATCH = 16
GATE_IMAGES = 128
GATE_REPEATS = 3
GATE_THRESHOLD = 0.9

LATENCY_REQUESTS = 96
LATENCY_UTILIZATION = 0.7
LATENCY_REPLICAS = (1, 4)

CACHE_REQUESTS = 240
CACHE_WORKING_SET = 16

THREADED_ENCODER_THREADS = 4


def _model_and_images(n: int):
    cfg = get_mae_config(GATE_MODEL)
    model = MaskedAutoencoder(cfg, rng=np.random.default_rng(0))
    enc = cfg.encoder
    images = np.random.default_rng(1).standard_normal(
        (n, enc.in_chans, enc.img_size, enc.img_size)
    )
    return model, images


# -- phase 1: saturation gate --------------------------------------------------


def _saturation(model, images) -> dict:
    """Best-of-N wall-clock serving/offline throughput ratio."""
    n = len(images)
    extract_features(model, images[:GATE_BATCH], batch_size=GATE_BATCH)  # warmup
    ratios, offline_ips, serving_ips = [], [], []
    for _ in range(GATE_REPEATS):
        t0 = time.perf_counter()
        extract_features(model, images, batch_size=GATE_BATCH)
        offline = n / (time.perf_counter() - t0)

        server = InferenceServer(
            model,
            # Service model fast enough that virtual pacing never stalls
            # the closed burst; wall-clock cost is the real NumPy encode.
            services=[FixedServiceModel(1e6)],
            max_batch_size=GATE_BATCH,
            max_wait_s=0.0,
            queue_capacity=n,
        )
        workload = [(0.0, images[i]) for i in range(n)]
        t0 = time.perf_counter()
        responses = server.run(workload)
        serving = n / (time.perf_counter() - t0)

        assert all(r.status == "ok" for r in responses)
        assert server.stats.reconciles()
        offline_ips.append(offline)
        serving_ips.append(serving)
        ratios.append(serving / offline)
    best = int(np.argmax(ratios))
    return {
        "model": GATE_MODEL,
        "batch_size": GATE_BATCH,
        "n_images": n,
        "repeats": GATE_REPEATS,
        "offline_images_per_s": offline_ips[best],
        "serving_images_per_s": serving_ips[best],
        "saturation_ratio": ratios[best],
        "ratios": ratios,
    }


# -- phase 2: latency under paced load -----------------------------------------


def _latency(model, images) -> dict:
    """Virtual-time p50/p99 at fixed utilization, per replica count."""
    enc = model.cfg.encoder
    gpu = GpuSpec()
    svc = ServiceTimeModel(enc, gpu)
    capacity_1 = GATE_BATCH / svc.estimate(GATE_BATCH)  # img/s, one replica
    out = {}
    for n_rep in LATENCY_REPLICAS:
        rate = LATENCY_UTILIZATION * capacity_1 * n_rep
        gaps = np.random.default_rng(7).exponential(1.0 / rate, LATENCY_REQUESTS)
        arrivals = np.cumsum(gaps)
        server = InferenceServer(
            model,
            services=[ServiceTimeModel(enc, gpu)] * n_rep,
            max_batch_size=GATE_BATCH,
            max_wait_s=2.0 / rate,  # wait ~2 mean inter-arrivals to batch up
            queue_capacity=4 * GATE_BATCH,
        )
        responses = server.run(
            [(float(arrivals[i]), images[i % len(images)]) for i in range(LATENCY_REQUESTS)]
        )
        assert server.stats.reconciles()
        stats = latency_stats(responses)
        stats["replicas"] = n_rep
        stats["offered_images_per_s"] = rate
        stats["mean_batch"] = (
            server.stats.batched_images / server.stats.batches
            if server.stats.batches
            else 0.0
        )
        out[str(n_rep)] = stats
    out["utilization"] = LATENCY_UTILIZATION
    out["service_s_per_batch"] = svc.estimate(GATE_BATCH)
    return out


# -- phase 3: cache hit rate ---------------------------------------------------


def _cache(model, images) -> dict:
    """Repeat-heavy traffic over CACHE_WORKING_SET distinct images."""
    rng = np.random.default_rng(11)
    picks = rng.integers(0, CACHE_WORKING_SET, CACHE_REQUESTS)
    server = InferenceServer(
        model,
        services=[FixedServiceModel(2000.0)],
        max_batch_size=GATE_BATCH,
        max_wait_s=0.001,
        queue_capacity=CACHE_REQUESTS,
        cache_capacity=CACHE_WORKING_SET,
    )
    # Spaced past the service time so completions populate the cache
    # before the next repeat arrives.
    responses = server.run(
        [(i * 0.02, images[picks[i]]) for i in range(CACHE_REQUESTS)]
    )
    assert all(r.status == "ok" for r in responses)
    s = server.stats
    assert s.reconciles()
    return {
        "requests": CACHE_REQUESTS,
        "working_set": CACHE_WORKING_SET,
        "hits": s.cache_hits,
        "misses": s.cache_misses,
        "hit_rate": s.cache_hits / max(1, s.cache_hits + s.cache_misses),
        "encoded_images": s.batched_images,
    }


# -- phase 4: threaded encoder -------------------------------------------------


def _threaded(model, images) -> dict:
    """Saturation burst with a threaded encoder; bit-identity checked
    against direct extract_features at the same pool size."""
    n = len(images)
    server = InferenceServer(
        model,
        services=[FixedServiceModel(1e6)],
        max_batch_size=GATE_BATCH,
        max_wait_s=0.0,
        queue_capacity=n,
        intra_op_threads=THREADED_ENCODER_THREADS,
    )
    try:
        workload = [(0.0, images[i]) for i in range(n)]
        t0 = time.perf_counter()
        responses = server.run(workload)
        serving = n / (time.perf_counter() - t0)
        assert all(r.status == "ok" for r in responses)
        assert server.stats.reconciles()
        # The server attached its pool to the (shared) model, so this
        # direct pass is threaded with the same count — the comparison
        # the numerics contract actually guarantees.
        direct = extract_features(model, images, batch_size=GATE_BATCH)
        by_id = {r.req_id: r.features for r in responses}
        ids = sorted(by_id)
        bit_identical = all(
            np.array_equal(by_id[req_id], direct[i])
            for i, req_id in enumerate(ids)
        )
    finally:
        server.close()
        model.use_gemm_pool(None)
    return {
        "threads": THREADED_ENCODER_THREADS,
        "n_images": n,
        "serving_images_per_s": serving,
        "bit_identical_to_direct": bool(bit_identical),
    }


# -- phase 5: open-loop traffic, planned fleet, autoscale ----------------------


OPEN_LOOP_COST_TOLERANCE = 0.10


def _open_loop() -> dict:
    """Planned-fleet reconciliation and autoscaled run, all virtual time."""
    from repro.experiments.traffic_exp import (
        SLO_S,
        run_traffic_autoscale,
        run_traffic_plan,
    )

    plan, result, recon = run_traffic_plan()
    auto_result, autoscaler = run_traffic_autoscale()
    return {
        "slo_s": SLO_S,
        "planned": {
            "fleet": plan.describe(),
            "offered": result.offered,
            "served": result.served,
            "rejected": result.rejected,
            "timed_out": result.timed_out,
            "attainment": result.attainment,
            "admitted_attainment": result.admitted_attainment,
            "attainment_target": plan.attainment_target,
            "predicted_cost_per_hour": plan.predicted_cost_per_hour,
            "measured_cost_per_hour": result.measured_cost_per_hour,
            "cost_tolerance": OPEN_LOOP_COST_TOLERANCE,
            "reconciled": recon.reconciled,
            "reconciliation": recon.to_json(),
        },
        "autoscale": {
            "offered": auto_result.offered,
            "attainment": auto_result.attainment,
            "mean_replicas": auto_result.mean_replicas,
            "max_replicas": auto_result.max_replicas,
            "scale_events": auto_result.scale_events,
            "scale_ups": sum(1 for e in autoscaler.events if e.action == "up"),
            "scale_downs": sum(
                1 for e in autoscaler.events if e.action == "down"
            ),
            "measured_cost_usd": auto_result.measured_cost_usd,
        },
    }


# -- driver --------------------------------------------------------------------


def run_serving() -> dict:
    """Run all phases; returns the JSON-ready result dict."""
    model, images = _model_and_images(GATE_IMAGES)
    sat = _saturation(model, images)
    lat = _latency(model, images)
    cache = _cache(model, images)
    threaded = _threaded(model, images)
    open_loop = _open_loop()
    return {
        "schema": 1,
        "gate": {
            "threshold": GATE_THRESHOLD,
            "saturation_ratio": sat["saturation_ratio"],
            "model": GATE_MODEL,
            "batch_size": GATE_BATCH,
        },
        "throughput": sat,
        "latency": lat,
        "cache": cache,
        "threaded": threaded,
        "open_loop": open_loop,
    }


def render_serving(result: dict) -> str:
    """Human-readable report of one run."""
    t = result["throughput"]
    lines = [
        f"saturation ({t['model']}, batch {t['batch_size']}, "
        f"{t['n_images']} images): serving {t['serving_images_per_s']:.0f} img/s "
        f"vs offline {t['offline_images_per_s']:.0f} img/s = "
        f"{t['saturation_ratio']:.3f}x (gate >= {result['gate']['threshold']}x)",
        "",
        f"{'replicas':<9} {'offered/s':>10} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'mean batch':>11}",
    ]
    lat = result["latency"]
    for n_rep in LATENCY_REPLICAS:
        s = lat[str(n_rep)]
        lines.append(
            f"{n_rep:<9} {s['offered_images_per_s']:>10.0f} {s['p50_ms']:>8.2f} "
            f"{s['p99_ms']:>8.2f} {s['mean_batch']:>11.1f}"
        )
    c = result["cache"]
    lines.append("")
    lines.append(
        f"cache: {c['hits']}/{c['requests']} hits "
        f"({c['hit_rate']:.1%}) over a working set of {c['working_set']}; "
        f"encoder ran on {c['encoded_images']} images"
    )
    th = result.get("threaded")
    if th:
        lines.append(
            f"threaded encoder ({th['threads']} threads): "
            f"{th['serving_images_per_s']:.0f} img/s serving, "
            f"bit-identical to direct: {th['bit_identical_to_direct']}"
        )
    ol = result.get("open_loop")
    if ol:
        p, a = ol["planned"], ol["autoscale"]
        verdict = "reconciled" if p["reconciled"] else "DRIFTED"
        lines.append("")
        lines.append(
            f"open loop (SLO {ol['slo_s'] * 1e3:.0f} ms): planned "
            f"{p['fleet']} served {p['served']}/{p['offered']}, admitted "
            f"attainment {p['admitted_attainment']:.3f} "
            f"(target {p['attainment_target']}), "
            f"{p['measured_cost_per_hour']:.2f} $/h measured vs "
            f"{p['predicted_cost_per_hour']:.2f} predicted -> {verdict}"
        )
        lines.append(
            f"open loop autoscaled: attainment {a['attainment']:.3f}, fleet "
            f"mean {a['mean_replicas']:.2f} / max {a['max_replicas']} "
            f"({a['scale_ups']} ups, {a['scale_downs']} downs), spend "
            f"{a['measured_cost_usd']:.4f} USD"
        )
    return "\n".join(lines)


def _write(result: dict) -> None:
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")


def _assert_gates(result: dict) -> None:
    g = result["gate"]
    assert g["saturation_ratio"] >= g["threshold"], (
        f"serving saturation {g['saturation_ratio']:.3f}x below the "
        f"{g['threshold']}x gate"
    )
    lat = result["latency"]
    for n_rep in LATENCY_REPLICAS:
        s = lat[str(n_rep)]
        assert s["n_ok"] == LATENCY_REQUESTS
        assert 0 < s["p50_ms"] <= s["p99_ms"]
    # More replicas at fixed utilization must not raise the tail.
    assert (
        lat[str(LATENCY_REPLICAS[-1])]["p99_ms"]
        <= lat[str(LATENCY_REPLICAS[0])]["p99_ms"] * 4.0
    )
    c = result["cache"]
    assert c["hit_rate"] > 0.5
    assert c["encoded_images"] < c["requests"]
    th = result["threaded"]
    assert th["bit_identical_to_direct"], (
        "threaded serving features diverged from direct extract_features "
        f"at {th['threads']} threads"
    )
    p = result["open_loop"]["planned"]
    assert p["reconciled"], "planned fleet failed to reconcile"
    assert p["admitted_attainment"] >= p["attainment_target"]
    a = result["open_loop"]["autoscale"]
    assert a["scale_ups"] > 0 and a["scale_downs"] > 0, (
        "open-loop scenario must exercise both scale directions"
    )
    assert 1.0 <= a["mean_replicas"] <= a["max_replicas"]


def test_serving(benchmark):
    result = benchmark.pedantic(run_serving, rounds=1, iterations=1)
    from benchmarks.conftest import emit

    emit("Serving", render_serving(result))
    _write(result)
    _assert_gates(result)


if __name__ == "__main__":
    res = run_serving()
    print(render_serving(res))
    _write(res)
    _assert_gates(res)
    print(f"\nwrote {OUT_PATH}")
