"""Benchmark: Fig. 5 — MAE pretraining loss vs step across model sizes."""

import numpy as np

from repro.experiments.fig5 import Fig5Result, render_fig5

from benchmarks.conftest import emit

ORDER = ["proxy-base", "proxy-huge", "proxy-1b", "proxy-3b"]


def test_fig5(benchmark, pretrained_suite):
    result = benchmark.pedantic(
        lambda: Fig5Result(suite=pretrained_suite), rounds=1, iterations=1
    )
    emit("Fig 5", render_fig5(result))
    # Larger models reach lower loss (paper Fig. 5). At proxy scale the
    # separation is clearest mid-training; by the end the cosine schedule
    # converges everything, so assert (a) strict ordering of the
    # mid-training average, (b) the largest model is never worse at the
    # end.
    mid = [
        float(np.mean(pretrained_suite[name].losses[20:120])) for name in ORDER
    ]
    assert all(a >= b for a, b in zip(mid, mid[1:])), mid
    final = [
        float(np.mean(pretrained_suite[name].losses[-20:])) for name in ORDER
    ]
    assert final[-1] <= final[0] + 1e-3, final
