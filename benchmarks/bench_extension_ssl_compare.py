"""Benchmark (extension): MAE vs contrastive pretraining, same budget."""

from repro.experiments.ssl_compare import render_ssl_compare, run_ssl_compare

from benchmarks.conftest import emit


def test_extension_ssl_compare(benchmark, probe_datasets):
    result = benchmark.pedantic(
        lambda: run_ssl_compare(probe_data=probe_datasets),
        rounds=1,
        iterations=1,
    )
    emit("Extension: SSL objective comparison", render_ssl_compare(result))
    for ds in result.datasets:
        # Either SSL objective beats random features on every dataset.
        assert result.get("mae", ds) > result.get("random-init", ds), ds
        assert result.get("simclr", ds) > result.get("random-init", ds), ds
