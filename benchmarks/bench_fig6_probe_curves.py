"""Benchmark: Fig. 6 — probe top-1/top-5 accuracy vs probing epoch."""

from repro.experiments.fig6 import Fig6Result, render_fig6
from repro.experiments.table3 import PROBE_EPOCHS

from benchmarks.conftest import emit

ORDER = ["proxy-base", "proxy-huge", "proxy-1b", "proxy-3b"]


def test_fig6(benchmark, probe_results, probe_datasets):
    result = benchmark.pedantic(
        lambda: Fig6Result(
            probes=probe_results,
            model_order=ORDER,
            datasets=list(probe_datasets),
            epochs=PROBE_EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Fig 6", render_fig6(result))
    for ds in result.datasets:
        small = result.curve("proxy-base", ds)
        large = result.curve("proxy-3b", ds)
        # The largest model ends ahead on every dataset...
        assert large[-1] > small[-1], ds
        # ...and a persistent separation point exists (paper: visible by
        # ~epoch 10 for the shifted-domain datasets).
        sep = result.epoch_of_separation(ds)
        assert sep is not None, ds
        # top-5 curves dominate top-1 everywhere.
        t5 = result.curve("proxy-3b", ds, k=5)
        assert all(b >= a for a, b in zip(large, t5))
