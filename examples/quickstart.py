"""Quickstart: pretrain a tiny geospatial MAE and linear-probe it.

Runs in well under a minute on a laptop:

1. synthesize a small MillionAID-style corpus;
2. MAE-pretrain a proxy ViT under FSDP FULL_SHARD on a simulated
   4-GPU world (numerically identical to single-GPU training — that is
   the point of the engine);
3. freeze the encoder and train a linear probe on a scene-classification
   dataset;
4. report top-1 / top-5 accuracy.

Usage: python examples/quickstart.py
"""

import numpy as np

from repro import (
    AdamW,
    EngineConfig,
    MAEPretrainer,
    MaskedAutoencoder,
    RecordingSink,
    RunReport,
    TelemetryBus,
    World,
    get_mae_config,
    linear_probe,
    make_engine,
)
from repro.data.datasets import build_dataset, build_pretraining_corpus
from repro.data.transforms import normalize_images


def main() -> None:
    print("1) building synthetic geospatial corpus...")
    corpus = build_pretraining_corpus(n_images=512, img_size=32, seed=0)
    images = normalize_images(corpus.images)

    print("2) MAE pretraining (proxy-base, FULL_SHARD on 4 simulated GPUs)...")
    cfg = get_mae_config("proxy-base")
    model = MaskedAutoencoder(cfg, rng=np.random.default_rng(1))
    bus = TelemetryBus(RecordingSink())
    engine = make_engine(
        model,
        "full_shard",
        world=World(size=4, ranks_per_node=4),
        config=EngineConfig(
            optimizer_factory=lambda p: AdamW(p, lr=1e-3),
            telemetry=bus,
        ),
    )
    trainer = MAEPretrainer(engine, images, global_batch=64, seed=0)
    result = trainer.run(n_steps=150)
    print(
        f"   loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f} "
        f"over {result.n_steps} steps"
    )
    stats = engine.comm.stats
    print(
        f"   collectives issued: {stats.total_calls} "
        f"({stats.total_bytes / 1e6:.1f} MB on the wire)"
    )
    report = RunReport.from_events(bus.sink.events)
    print(
        f"   telemetry: {report.n_events} events, "
        f"{report.images_per_sec:.0f} images/s (measured), "
        f"comm share {100 * report.comm_share:.1f}%"
    )

    print("3) linear probing on the UCM-analogue dataset...")
    data = build_dataset("ucm", img_size=32, seed=0)
    data.train.images = normalize_images(data.train.images)
    data.test.images = normalize_images(data.test.images)
    probe = linear_probe(model, data, epochs=15, seed=0, model_name="proxy-base")

    print(
        f"4) top-1 = {100 * probe.final_top1:.1f}%  "
        f"top-5 = {100 * probe.final_top5:.1f}%  "
        f"({data.spec.n_classes} classes, chance = "
        f"{100 / data.spec.n_classes:.1f}%)"
    )


if __name__ == "__main__":
    main()
