"""Beyond classification: few-shot and segmentation with one encoder.

Demonstrates the paper's two stated future-work directions on a single
quickly-pretrained proxy encoder:

1. few-shot scene classification (K labeled examples per class);
2. patch-level semantic segmentation of composite scenes (mIoU).

Usage: python examples/downstream_tasks.py   (~2 minutes)
"""

import numpy as np

from repro import (
    AdamW,
    MAEPretrainer,
    MaskedAutoencoder,
    World,
    get_mae_config,
    make_engine,
)
from repro.data.datasets import build_dataset, build_pretraining_corpus
from repro.data.segmentation import build_segmentation_dataset
from repro.data.transforms import normalize_images
from repro.eval.few_shot import few_shot_probe
from repro.eval.segmentation import segmentation_probe


def main() -> None:
    print("pretraining a proxy encoder (300 steps)...")
    corpus = normalize_images(
        build_pretraining_corpus(n_images=1024, img_size=32, seed=0).images
    )
    model = MaskedAutoencoder(
        get_mae_config("proxy-1b"), rng=np.random.default_rng(1)
    )
    engine = make_engine(
        model,
        "no_shard",
        world=World(1, ranks_per_node=1),
        optimizer_factory=lambda p: AdamW(p, lr=1e-3),
    )
    MAEPretrainer(engine, corpus, global_batch=64, seed=0).run(300)

    print("\n1) few-shot classification on the AID analogue:")
    data = build_dataset("aid", img_size=32, seed=0)
    data.train.images = normalize_images(data.train.images)
    data.test.images = normalize_images(data.test.images)
    fs = few_shot_probe(model, data, shots=[1, 5, 10], epochs=15, seed=0)
    for k, acc in zip(fs.shots, fs.top1):
        print(f"   {k:>2} shots/class: top-1 = {100 * acc:.1f}%")

    print("\n2) segmentation probing (composite scenes, frozen patch tokens):")
    train = build_segmentation_dataset(n_images=120, img_size=32, seed=0)
    test = build_segmentation_dataset(n_images=60, img_size=32, seed=1)
    seg = segmentation_probe(model, train, test, epochs=15, seed=0)
    print(
        f"   mIoU = {100 * seg.final_miou:.1f}%   "
        f"patch accuracy = {100 * seg.final_patch_acc:.1f}%  "
        f"({train.n_classes} land-cover families)"
    )


if __name__ == "__main__":
    main()
