"""Demonstrate that every sharding strategy trains identically.

Trains the same model on the same data under five distributed
configurations and shows (a) bit-level-equal loss trajectories and final
parameters, (b) how different the *communication* footprint of each
strategy is — the whole tension the paper's performance study explores:
same math, very different wires.

Usage: python examples/sharding_equivalence.py
"""

import numpy as np

from repro import MAEPretrainer, MaskedAutoencoder, World, get_mae_config, make_engine
from repro.experiments.report import render_table

#: (display label, make_engine strategy argument, world size). Paper
#: labels like "HYBRID_2GPUs" resolve directly (implying shard_size=2).
CONFIGS = [
    ("single GPU (reference)", "no_shard", 1),
    ("DDP x8", "ddp", 8),
    ("NO_SHARD x8", "no_shard", 8),
    ("FULL_SHARD x8", "full_shard", 8),
    ("SHARD_GRAD_OP x8", "shard_grad_op", 8),
    ("HYBRID_2GPUs x8", "HYBRID_2GPUs", 8),
]


def main() -> None:
    cfg = get_mae_config("proxy-base")
    rng = np.random.default_rng(42)
    images = rng.standard_normal((128, 3, 32, 32))

    reference_state = None
    rows = []
    for label, strategy, world_size in CONFIGS:
        model = MaskedAutoencoder(cfg, rng=np.random.default_rng(7))
        world = World(world_size, ranks_per_node=4)
        engine = make_engine(model, strategy, world=world)
        result = MAEPretrainer(engine, images, global_batch=32, seed=5).run(5)

        state = model.state_dict()
        if reference_state is None:
            reference_state = state
            max_dev = 0.0
        else:
            max_dev = max(
                float(np.abs(state[k] - reference_state[k]).max())
                for k in state
            )
        stats = engine.comm.stats
        rows.append(
            [
                label,
                f"{result.losses[-1]:.6f}",
                f"{max_dev:.1e}",
                stats.total_calls,
                f"{stats.total_bytes / 1e6:.1f}",
                "+".join(
                    f"{op}:{n}" for op, n in sorted(stats.calls_by_op.items())
                )
                or "none",
            ]
        )

    print(
        render_table(
            ["configuration", "final loss", "max |dtheta| vs ref",
             "collective calls", "wire MB", "call mix"],
            rows,
            title="same numerics, different wires (5 training steps)",
        )
    )
    print(
        "\nevery strategy reproduces the reference parameters to ~1e-15,\n"
        "while wire traffic and call mixes differ by orders of magnitude —\n"
        "which is exactly why the paper's Figures 1-4 exist."
    )


if __name__ == "__main__":
    main()
