"""Demonstrate that every sharding strategy trains identically.

Trains the same model on the same data under five distributed
configurations and shows (a) bit-level-equal loss trajectories and final
parameters, (b) how different the *communication* footprint of each
strategy is — the whole tension the paper's performance study explores:
same math, very different wires.

Usage: python examples/sharding_equivalence.py
"""

import numpy as np

from repro.comm.world import World
from repro.core.config import get_mae_config
from repro.core.ddp import DDPEngine
from repro.core.fsdp import FSDPEngine
from repro.core.sharding import ShardingStrategy
from repro.core.trainer import MAEPretrainer
from repro.experiments.report import render_table
from repro.models.mae import MaskedAutoencoder

CONFIGS = [
    ("single GPU (reference)", "fsdp", 1, ShardingStrategy.NO_SHARD, None),
    ("DDP x8", "ddp", 8, None, None),
    ("NO_SHARD x8", "fsdp", 8, ShardingStrategy.NO_SHARD, None),
    ("FULL_SHARD x8", "fsdp", 8, ShardingStrategy.FULL_SHARD, None),
    ("SHARD_GRAD_OP x8", "fsdp", 8, ShardingStrategy.SHARD_GRAD_OP, None),
    ("HYBRID_2GPUs x8", "fsdp", 8, ShardingStrategy.HYBRID_SHARD, 2),
]


def main() -> None:
    cfg = get_mae_config("proxy-base")
    rng = np.random.default_rng(42)
    images = rng.standard_normal((128, 3, 32, 32))

    reference_state = None
    rows = []
    for label, kind, world_size, strategy, shard_size in CONFIGS:
        model = MaskedAutoencoder(cfg, rng=np.random.default_rng(7))
        world = World(world_size, ranks_per_node=4)
        if kind == "ddp":
            engine = DDPEngine(model, world)
        else:
            engine = FSDPEngine(model, world, strategy, shard_size=shard_size)
        result = MAEPretrainer(engine, images, global_batch=32, seed=5).run(5)

        state = model.state_dict()
        if reference_state is None:
            reference_state = state
            max_dev = 0.0
        else:
            max_dev = max(
                float(np.abs(state[k] - reference_state[k]).max())
                for k in state
            )
        stats = engine.comm.stats
        rows.append(
            [
                label,
                f"{result.losses[-1]:.6f}",
                f"{max_dev:.1e}",
                stats.total_calls,
                f"{stats.total_bytes / 1e6:.1f}",
                "+".join(
                    f"{op}:{n}" for op, n in sorted(stats.calls_by_op.items())
                )
                or "none",
            ]
        )

    print(
        render_table(
            ["configuration", "final loss", "max |dtheta| vs ref",
             "collective calls", "wire MB", "call mix"],
            rows,
            title="same numerics, different wires (5 training steps)",
        )
    )
    print(
        "\nevery strategy reproduces the reference parameters to ~1e-15,\n"
        "while wire traffic and call mixes differ by orders of magnitude —\n"
        "which is exactly why the paper's Figures 1-4 exist."
    )


if __name__ == "__main__":
    main()
