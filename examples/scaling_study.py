"""Plan a Frontier allocation: which sharding strategy for which model?

The scenario from the paper's introduction: you have a ViT variant and a
node budget — which FSDP configuration should you submit? This example
sweeps every strategy over a node grid with the performance simulator
(publishing every grid point to a telemetry bus), prints the
throughput/memory table, picks the winner per scale, exports a Chrome
trace of one simulated step for inspection (chrome://tracing or
https://ui.perfetto.dev), and dumps the full telemetry stream — grid
gauges plus a synthesized rocm-smi-style power trace of the winning
configuration — to a JSONL file.

Usage: python examples/scaling_study.py [model] [max_nodes]
       e.g. python examples/scaling_study.py vit-3b 64
"""

import sys

from repro import JsonlSink, TelemetryBus
from repro.core.config import get_vit_config
from repro.core.scaling import run_strategy_grid
from repro.core.sharding import parse_strategy
from repro.experiments.report import render_series
from repro.hardware.frontier import frontier_machine
from repro.hardware.power import PowerModel
from repro.perf.simulator import TrainStepSimulator
from repro.perf.tracing import write_chrome_trace
from repro.utils.units import GIB

STRATEGIES = [
    "DDP",
    "NO_SHARD",
    "HYBRID_1GPU",
    "HYBRID_2GPUs",
    "HYBRID_8GPUs",
    "FULL_SHARD",
    "SHARD_GRAD_OP",
]


def main(model_name: str = "vit-3b", max_nodes: int = 64) -> None:
    cfg = get_vit_config(model_name)
    nodes = [n for n in (1, 2, 4, 8, 16, 32, 64) if n <= max_nodes]
    print(f"sweeping {len(STRATEGIES)} strategies on {nodes} nodes...")
    events_path = f"scaling_telemetry_{model_name}.jsonl"
    bus = TelemetryBus(JsonlSink(events_path))
    grid = run_strategy_grid(cfg, STRATEGIES, nodes, telemetry=bus)

    print()
    print(
        render_series(
            "nodes",
            nodes,
            {s: g.ips for s, g in grid.items()},
            title=f"{model_name}: images/second by strategy",
        )
    )
    print()
    print(
        render_series(
            "nodes",
            nodes,
            {
                s: [round(p.memory.total / GIB, 1) for p in g.points]
                for s, g in grid.items()
            },
            title=f"{model_name}: per-GPU memory (GiB) by strategy",
            precision=1,
        )
    )

    print("\nrecommended strategy per scale:")
    hbm = frontier_machine(1).gpu.hbm_bytes
    for i, n in enumerate(nodes):
        feasible = {
            s: g.ips[i]
            for s, g in grid.items()
            if g.points[i].memory.total < hbm
        }
        if not feasible:
            print(f"  {n:>3} nodes: nothing fits!")
            continue
        best = max(feasible, key=feasible.get)
        print(f"  {n:>3} nodes: {best}  ({feasible[best]:.0f} ips)")

    # Export a trace of the best large-scale configuration.
    best_label = max(grid, key=lambda s: grid[s].ips[-1])
    strategy, shard_size = parse_strategy(best_label)
    sim = TrainStepSimulator(
        cfg, frontier_machine(nodes[-1]), strategy, shard_size=shard_size
    )
    out = f"step_trace_{model_name}_{best_label}.json"
    write_chrome_trace(sim.build_schedule().timeline, out)
    print(f"\nwrote one simulated step of {best_label} to {out}")

    # Synthesize a rocm-smi-style power/util trace of the winner and
    # publish it onto the same bus before closing the JSONL stream.
    b = sim.simulate()
    trace = PowerModel().trace(
        step_time_s=b.step_time_s,
        compute_occupancy=b.compute_occupancy,
        comm_occupancy=b.comm_occupancy,
        memory_bytes=b.memory.total,
        n_steps=10,
        label=best_label,
    )
    n_gauges = trace.emit(bus)
    bus.close()
    print(
        f"wrote {bus.sink.n_events} telemetry events "
        f"({n_gauges} power/util gauges) to {events_path}"
    )


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "vit-3b",
        int(sys.argv[2]) if len(sys.argv) > 2 else 64,
    )
