"""Open-loop serving demo: traffic generation, admission, autoscaling.

Walks the production-serving story end to end, all on virtual time:

1. describe three tenants — diurnal production, a rate-limited free
   tier that flash-crowds, and low-priority batch — and generate a
   seeded open-loop workload (arrivals never react to the server);
2. price a fleet for the forecast peak with
   :func:`repro.serve.plan_capacity` and serve the workload on it;
3. reconcile predicted attainment / cost / utilization against the
   measured run;
4. serve the same workload again with an SLO-driven
   :class:`repro.serve.Autoscaler` growing and draining the fleet;
5. replay the autoscaled run and verify it is bit-identical.

Usage: python examples/autoscale_demo.py
"""

from repro import (
    AdmissionController,
    Autoscaler,
    AutoscalePolicy,
    InferenceServer,
    RateProfile,
    TenantSpec,
    TenantTraffic,
    VirtualClock,
    generate_workload,
    plan_capacity,
    reconcile_plan,
    run_open_loop,
)
from repro.serve import FixedServiceModel, ReplicaType, SyntheticEncoder

HORIZON_S = 8.0
SEED = 17
SLO_S = 0.25


def build_traffics() -> list[TenantTraffic]:
    return [
        TenantTraffic(
            TenantSpec("prod", weight=4.0),
            RateProfile(base_rate_ips=90.0, diurnal_amplitude=0.3,
                        diurnal_period_s=HORIZON_S),
            deadline_s=1.0,
            image_shape=(1, 2, 2),
        ),
        TenantTraffic(
            TenantSpec("free", rate_limit=60.0),
            RateProfile(base_rate_ips=30.0, flash_at_s=3.0, flash_magnitude=5.0,
                        flash_ramp_s=0.5, flash_hold_s=1.5),
            deadline_s=1.0,
            image_shape=(1, 2, 2),
        ),
        TenantTraffic(
            TenantSpec("batch", priority=1),
            RateProfile(base_rate_ips=25.0),
            process="pareto",
            image_shape=(1, 2, 2),
        ),
    ]


def build_server(traffics, services, prices, autoscaler=None) -> InferenceServer:
    return InferenceServer(
        SyntheticEncoder(),
        services=services,
        replica_prices=prices,
        max_batch_size=8,
        queue_capacity=1024,
        clock=VirtualClock(),
        admission=AdmissionController([t.spec for t in traffics], capacity=1024),
        autoscaler=autoscaler,
    )


def build_autoscaler() -> Autoscaler:
    return Autoscaler(
        AutoscalePolicy(min_replicas=1, max_replicas=6, interval_s=0.25,
                        slo_s=SLO_S, high_backlog=6.0, warmup_s=0.25),
        lambda: FixedServiceModel(150.0),
        usd_per_hour=1.0,
    )


def main() -> None:
    print("1) three tenants, one seeded open-loop workload...")
    traffics = build_traffics()
    events = generate_workload(traffics, horizon_s=HORIZON_S, seed=SEED)
    per_tenant = {t.spec.name: 0 for t in traffics}
    for e in events:
        per_tenant[e.tenant] += 1
    print(f"   {len(events)} arrivals over {HORIZON_S:.0f}s: {per_tenant}")

    print("2) pricing a fleet for the admitted peak...")
    types = [
        ReplicaType("fast", FixedServiceModel(400.0), 2.0),
        ReplicaType("slow", FixedServiceModel(150.0), 1.0),
    ]
    peak = sum(
        min(t.profile.max_rate(), t.spec.rate_limit or float("inf"))
        for t in traffics
    )
    plan = plan_capacity(types, peak_rate_ips=peak, batch_size=8, slo_s=SLO_S)
    print(f"   peak {peak:.0f} img/s -> {plan.describe()} "
          f"@ {plan.predicted_cost_per_hour:.2f} $/h")

    print("3) serving on the planned fleet and reconciling...")
    server = build_server(traffics, plan.services(), plan.prices())
    result = run_open_loop(server, traffics, horizon_s=HORIZON_S, seed=SEED,
                           slo_s=SLO_S)
    assert server.stats.reconciles(), "ledger must balance"
    print("   " + result_line(result))
    print("   " + reconcile_plan(plan, result).render().replace("\n", "\n   "))

    print("4) same workload, elastic fleet...")
    auto = build_autoscaler()
    server = build_server(traffics, [FixedServiceModel(150.0)], [1.0],
                          autoscaler=auto)
    elastic = run_open_loop(server, traffics, horizon_s=HORIZON_S, seed=SEED,
                            slo_s=SLO_S)
    assert server.stats.reconciles(), "ledger must balance"
    print("   " + result_line(elastic))
    for ev in auto.events:
        print(f"   t={ev.t_s:5.2f}s {ev.action:>4} -> {ev.n_replicas} replicas "
              f"(backlog {ev.backlog:.0f}, p99 {ev.p99_s * 1e3:.0f} ms)")

    print("5) replaying the autoscaled run bit-identically...")
    server = build_server(traffics, [FixedServiceModel(150.0)], [1.0],
                          autoscaler=build_autoscaler())
    replay = run_open_loop(server, traffics, horizon_s=HORIZON_S, seed=SEED,
                           slo_s=SLO_S)
    a = [(r.req_id, r.status, r.done_s) for r in elastic.responses]
    b = [(r.req_id, r.status, r.done_s) for r in replay.responses]
    assert a == b, "open-loop runs are pure functions of (workload, config, seed)"
    print("   identical.")


def result_line(result) -> str:
    return (
        f"served {result.served}/{result.offered} "
        f"(rejected {result.rejected}, timed out {result.timed_out}), "
        f"attainment {result.attainment:.3f}, "
        f"mean fleet {result.mean_replicas:.2f}, "
        f"spend {result.measured_cost_usd:.4f} USD"
    )


if __name__ == "__main__":
    main()
