"""Serving demo: a pretrained encoder behind the micro-batching server.

Walks the online-inference path end to end, all on virtual time:

1. build a proxy MAE encoder (the frozen feature extractor);
2. stand up an :class:`repro.serve.InferenceServer` with two replicas,
   a dynamic micro-batcher, and an LRU feature cache;
3. replay a bursty, repeat-heavy request trace with per-request
   deadlines;
4. report latency percentiles, cache hit rate, and the telemetry
   ledger — and verify the served features are bit-identical to offline
   :func:`repro.eval.features.extract_features`.

Usage: python examples/serving_demo.py
"""

import numpy as np

from repro import (
    InferenceServer,
    MaskedAutoencoder,
    RecordingSink,
    ServiceTimeModel,
    TelemetryBus,
    VirtualClock,
    get_mae_config,
    latency_stats,
)
from repro.eval.features import extract_features
from repro.hardware.gpu import GpuSpec


def main() -> None:
    print("1) building the frozen encoder (proxy-base)...")
    cfg = get_mae_config("proxy-base")
    model = MaskedAutoencoder(cfg, rng=np.random.default_rng(0))
    enc = cfg.encoder

    print("2) starting a 2-replica server (batch<=8, wait<=2ms, cache 32)...")
    clock = VirtualClock()
    bus = TelemetryBus(RecordingSink(), clock=clock.now)
    server = InferenceServer(
        model,
        services=[ServiceTimeModel(enc, GpuSpec())] * 2,
        max_batch_size=8,
        max_wait_s=0.002,
        queue_capacity=64,
        cache_capacity=32,
        clock=clock,
        telemetry=bus,
    )

    print("3) replaying a bursty trace (120 requests, 24 distinct images)...")
    rng = np.random.default_rng(1)
    images = rng.standard_normal((24, enc.in_chans, enc.img_size, enc.img_size))
    picks = rng.integers(0, 24, 120)
    gaps = rng.exponential(0.002, 120)
    arrivals = np.cumsum(gaps)
    workload = [
        (float(arrivals[i]), images[picks[i]], float(arrivals[i]) + 0.25)
        for i in range(120)
    ]
    responses = server.run(workload)

    stats = latency_stats(responses)
    s = server.stats
    print(
        f"   served {s.served}/{s.submitted} "
        f"(rejected {s.rejected}, timed out {s.timed_out}) "
        f"in {s.batches} batches"
    )
    print(
        f"   latency p50 {stats['p50_ms']:.2f} ms, "
        f"p99 {stats['p99_ms']:.2f} ms (virtual time)"
    )
    print(
        f"   cache: {s.cache_hits} hits / {s.cache_misses} misses; "
        f"encoder ran on {s.batched_images} images"
    )
    assert s.reconciles(), "ledger must balance"

    print("4) verifying bit-identity against offline extract_features...")
    reference = extract_features(model, images, batch_size=64)
    for r in responses:
        if r.status == "ok":
            np.testing.assert_array_equal(r.features, reference[picks[r.req_id]])
    spans = [e for e in bus.sink.events if e.kind == "span"]
    print(
        f"   identical. telemetry captured {len(spans)} spans "
        f"({sum(1 for e in spans if e.name == 'serve.batch')} serve.batch)"
    )


if __name__ == "__main__":
    main()
