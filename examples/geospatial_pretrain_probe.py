"""Model-scale study on synthetic geospatial data (paper Section V).

Pretrains two proxy model sizes with identical hyper-parameters, probes
both on every scene-classification dataset analogue, and prints the
accuracy-vs-scale comparison — a quick version of the paper's Table III
experiment (the full four-model version lives in the benchmarks).

Usage: python examples/geospatial_pretrain_probe.py  (~2-3 minutes)
"""

import numpy as np

from repro import (
    AdamW,
    MAEPretrainer,
    MaskedAutoencoder,
    World,
    get_mae_config,
    linear_probe,
    make_engine,
)
from repro.data.datasets import build_pretraining_corpus
from repro.data.transforms import normalize_images
from repro.experiments.report import render_table
from repro.experiments.table3 import build_probe_datasets

MODELS = ["proxy-base", "proxy-1b"]
STEPS = 300


def main() -> None:
    corpus = normalize_images(
        build_pretraining_corpus(n_images=1024, img_size=32, seed=0).images
    )
    datasets = build_probe_datasets(img_size=32, seed=0)

    rows = []
    for name in MODELS:
        print(f"pretraining {name} ({STEPS} steps)...")
        model = MaskedAutoencoder(
            get_mae_config(name), rng=np.random.default_rng(1)
        )
        engine = make_engine(
            model,
            "no_shard",
            world=World(1, ranks_per_node=1),
            optimizer_factory=lambda p: AdamW(p, lr=1e-3),
        )
        MAEPretrainer(engine, corpus, global_batch=64, seed=0).run(STEPS)
        row = [name]
        for ds_name, data in datasets.items():
            probe = linear_probe(model, data, epochs=20, seed=0, model_name=name)
            row.append(round(100 * probe.final_top1, 1))
            print(f"  {ds_name}: top-1 = {100 * probe.final_top1:.1f}%")
        rows.append(row)

    print()
    print(
        render_table(
            ["model", *datasets], rows,
            title="linear-probe top-1 (%) — accuracy grows with model scale",
            precision=1,
        )
    )


if __name__ == "__main__":
    main()
