"""Classic setup shim.

Lets ``pip install -e .`` fall back to ``setup.py develop`` on
environments without the ``wheel`` package (PEP 660 editable builds need
it); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
