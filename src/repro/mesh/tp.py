"""Tensor-parallel context: GEMM output sharding with load-bearing gathers.

Megatron-style tensor parallelism column-splits the first GEMM of a pair
and row-splits the second, stitching the halves back with an all-gather
(forward activations) and its mirror on the input gradient (backward).
The SPMD substrate here computes each flagged GEMM *once* at full width
— BLAS results for a sliced operand are not bitwise equal to slices of
the full product, so genuinely re-deriving each shard on its own GEMM
would break the engine's fp32 bit-exactness contract — and then treats
the tp dimension as a *data-movement* axis: the full output is cut into
the per-rank column shards each tp rank would own, the shards travel
through :meth:`SimComm.all_gather` over the tp group (validating the
ring algorithms and booking honest wire bytes), and the layer consumes
the *reassembled* gathered result. Reassembly of contiguous column
slices is a pure permutation copy, so the consumed activations are
bitwise identical to the single-rank computation by construction — the
same fixed-point economy the FSDP engine uses for parameter
all-gathers. Weight/bias gradients are sharded by construction (each
rank's dW columns come only from its dout columns), so no gradient
collective is needed on the tp axis.

A :class:`TPContext` is attached to a model tree with
:meth:`repro.models.module.Module.use_tensor_parallel`; layers flagged
``tp_shard = True`` (attention qkv/proj, MLP fc1/fc2) route their
forward output and backward input-gradient through
:meth:`TPContext.reassemble`.
"""

from __future__ import annotations

import numpy as np

from repro.comm.collectives import SimComm
from repro.comm.world import Group

__all__ = ["TPContext"]


class TPContext:
    """Per-model tensor-parallel state: group, collectives, telemetry.

    Parameters
    ----------
    size:
        Tensor-parallel ways (the tp group size).
    group:
        The tp :class:`~repro.comm.world.Group` (from a ``DeviceMesh``).
    comm:
        The :class:`~repro.comm.collectives.SimComm` carrying the
        gathers (usually the engine's, so byte accounting lands in one
        ledger).
    bus:
        Telemetry bus for ``comm.all_gather`` spans tagged
        ``axis="tp"``. ``None`` disables spans.

    Pickling: ``comm`` and ``bus`` hold process-local state (lambdas in
    ``CommStats``, sink callbacks) and are dropped by ``__getstate__``;
    a process-backend worker re-attaches fresh ones via :meth:`rewire`
    after unpickling. All modules of one pickled model share a single
    context object (pickle preserves object identity within one graph),
    so one ``rewire`` call fixes the whole tree.
    """

    def __init__(self, size: int, group: Group, comm: SimComm | None, bus=None):
        if size < 1:
            raise ValueError(f"tp size must be >= 1, got {size}")
        if group.size != size:
            raise ValueError(
                f"tp group {group.ranks} has {group.size} ranks, expected {size}"
            )
        self.size = size
        self.group = group
        self.comm = comm
        self.bus = bus

    def __getstate__(self):
        state = dict(self.__dict__)
        state["comm"] = None
        state["bus"] = None
        return state

    def rewire(self, comm: SimComm, bus=None) -> "TPContext":
        """Re-attach process-local collectives/telemetry after unpickling."""
        self.comm = comm
        self.bus = bus
        return self

    def reassemble(self, arr2: np.ndarray) -> None:
        """Round-trip ``arr2``'s columns through a tp all-gather, in place.

        ``arr2`` is the 2-D ``(rows, features)`` output of a flagged
        GEMM (or its input gradient). Its columns are cut into
        ``size`` contiguous per-rank shards, gathered over the tp
        group, and written back reassembled — a bitwise identity on the
        values, but the array the caller keeps using is now the
        *received* data, making the collective load-bearing.
        """
        t = self.size
        if t == 1:
            return
        if self.comm is None:
            raise RuntimeError(
                "TPContext has no SimComm attached (unpickled without rewire?)"
            )
        rows, feat = arr2.shape
        if feat % t != 0:
            raise ValueError(
                f"feature dim {feat} not divisible by tp size {t}"
            )
        c = feat // t
        shards = [
            np.ascontiguousarray(arr2[:, r * c : (r + 1) * c]).ravel()
            for r in range(t)
        ]
        if self.bus is not None:
            with self.bus.span(
                "comm.all_gather", bytes=float(arr2.nbytes), axis="tp"
            ):
                flat = self.comm.all_gather(shards, self.group)[0]
        else:
            flat = self.comm.all_gather(shards, self.group)[0]
        arr2[...] = (
            flat.reshape(t, rows, c).transpose(1, 0, 2).reshape(rows, feat)
        )
