"""MeshEngine: tensor/pipeline/data parallelism over one named-axis mesh.

The engine realizes an ``EngineConfig(mesh=MeshSpec(pp, dp, tp))`` as a
3-D :class:`~repro.mesh.device_mesh.DeviceMesh` over the world and
composes one parallelism layer per axis:

``tp`` (innermost)
    Megatron-style GEMM sharding via :class:`~repro.mesh.tp.TPContext`:
    flagged layers route activations/input-gradients through
    load-bearing column-shard all-gathers over the tp group. Weight
    gradients are sharded by construction, so the axis needs no
    gradient collective.
``dp``
    The existing data-parallel strategies, re-expressed over the dp
    group: ``"ddp"`` all-reduces one concatenated full-model gradient
    per (round, dp-rank) contribution; ``"full_shard"`` keeps flat
    parameters sharded ``dp`` ways, all-gathering them each round and
    reduce-scattering gradients (the FSDP ``FULL_SHARD`` call pattern).
``pp`` (outermost)
    Layer-partitioned pipeline stages running a GPipe or 1F1B schedule
    (:mod:`repro.mesh.pipeline`); stage-boundary activations and
    gradients move through ``SimComm.send``.

**Bit-exactness.** Every axis is a fixed-point economy in fp32: tp
gathers reassemble the exact single-GEMM output; the dp reduction
stack-means the same contributions in the same order as the single-rank
oracle running ``grad_accum_steps * dp`` accumulation rounds; pipeline
stages recompute their forward before backward from per-micro context,
so any valid schedule equals depth-first execution. Composed, a
``(pp, dp, tp)`` engine trains fp32 bit-identically to the world-1 DDP
oracle on the same global batch (differential-tested per axis and
jointly, on both backends). The engine is therefore fp32-only: bf16
emulation would need a per-axis rounding story this substrate does not
model yet.

**SPMD economy.** As everywhere in this codebase, all ranks share one
process and one model instance. The tp/pp axes are *data-movement*
axes: computation happens once, and the collectives move the real
bytes so wire accounting is honest. Under the process backend, workers
run microbatches depth-first (numerically identical); the parent books
the schedule's boundary traffic analytically from
:func:`~repro.mesh.pipeline.boundary_nbytes`, and tp gather bytes live
in each worker's own ``SimComm`` ledger — cross-backend tests compare
numerics and send bytes, not worker-local tp bytes. Inline pipeline
recompute also books one extra tp gather per flagged GEMM (three
passes instead of two); that is real traffic the recompute performs,
not an accounting wrinkle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.backend import GemmPool, make_backend
from repro.comm.collectives import SimComm
from repro.comm.faults import CollectiveError, call_with_retry
from repro.comm.world import World
from repro.core.engine import EngineConfig
from repro.core.mixed_precision import MixedPrecisionMixin
from repro.core.sharding import default_wrap_units
from repro.elastic.layout import validate_mesh_layout
from repro.mesh.device_mesh import DeviceMesh
from repro.mesh.pipeline import boundary_nbytes, partition_stages, schedule_actions
from repro.mesh.spec import MESH_AXIS_NAMES, MeshSpec
from repro.mesh.tp import TPContext
from repro.models.module import Module
from repro.optim.adamw import AdamW
from repro.telemetry import NULL_BUS

__all__ = ["MeshEngine", "DP_STRATEGIES"]

StepFn = Callable[[Module, Any], float]

#: Data-parallel strategies the dp axis can run.
DP_STRATEGIES = ("ddp", "full_shard")


def _validate_tp(model: Module, tp: int) -> None:
    """Reject tp sizes the model's flagged GEMMs cannot shard evenly."""
    for m in model.modules():
        heads = getattr(m, "heads", None)
        if heads is not None and heads % tp != 0:
            raise ValueError(
                f"tp={tp} does not divide the {heads} attention heads of "
                f"{type(m).__name__}; tensor parallelism shards per-head "
                "column blocks"
            )
        if getattr(m, "tp_shard", False):
            for dim, label in (
                (m.out_features, "out_features"),
                (m.in_features, "in_features"),
            ):
                if dim % tp != 0:
                    raise ValueError(
                        f"tp={tp} does not divide {label}={dim} of a "
                        "tp-sharded Linear; pick a tp that divides every "
                        "flagged GEMM width"
                    )


class MeshEngine(MixedPrecisionMixin):
    """Training engine over a ``(pp, dp, tp)`` device mesh.

    Prefer :func:`repro.core.engine.make_engine` with
    ``EngineConfig(mesh=MeshSpec(...))`` and strategy ``"ddp"`` or
    ``"full_shard"`` (the dp-axis strategy). ``train_step`` consumes
    ``grad_accum_steps * dp`` microbatches, round-major over the dp
    axis — micro ``(round j, dp-rank r)`` sits at index ``j * dp + r``
    — matching the ordering of the equivalent single-rank oracle.

    Representative groups: collectives run over the *first* group of
    each axis (``DeviceMesh.groups(axis)[0]``) because the one shared
    model instance stands in for every coordinate of the other axes;
    per-axis byte accounting is unchanged by that choice (the other
    groups would carry identical payloads of the same single model).
    The dp-axis parameter all-gather is likewise issued once over the
    full flat units: pp partitions the parameters across stages and tp
    shards flagged weights, so summing per-(pp, tp)-group gathers of
    parameter slices equals one gather of the whole.
    """

    def __init__(
        self,
        model: Module,
        world: World,
        mesh: MeshSpec | None = None,
        dp_strategy: str = "ddp",
        *,
        config: EngineConfig | None = None,
        telemetry=None,
    ):
        if config is None:
            config = EngineConfig(mesh=mesh, telemetry=telemetry)
        if mesh is not None and config.mesh is not None and mesh != config.mesh:
            raise ValueError(
                f"mesh argument {mesh.describe()} disagrees with "
                f"config.mesh {config.mesh.describe()}"
            )
        spec = mesh if mesh is not None else config.mesh
        if spec is None:
            raise ValueError(
                "MeshEngine needs a MeshSpec: pass mesh=MeshSpec(...) or "
                "EngineConfig(mesh=...)"
            )
        if config.mesh is None:
            config = replace(config, mesh=spec)
        if dp_strategy not in DP_STRATEGIES:
            raise ValueError(
                f"dp_strategy must be one of {DP_STRATEGIES}, got {dp_strategy!r}"
            )
        if config.precision != "fp32":
            raise ValueError(
                "MeshEngine is fp32-only: the per-axis bit-exactness "
                "contract has no bf16 rounding story yet"
            )
        if spec.size != world.size:
            raise ValueError(
                f"mesh {spec.describe()} occupies {spec.size} ranks but the "
                f"world has {world.size}; pp * dp * tp must equal the world "
                "size"
            )
        if config.shard_size not in (None, spec.dp):
            raise ValueError(
                f"config.shard_size={config.shard_size} conflicts with the "
                f"mesh dp axis; full_shard shards over dp={spec.dp}"
            )
        self.config = config
        self.model = model
        self.world = world
        self.mesh_spec = spec
        self.dp_strategy = dp_strategy
        self.pp, self.dp, self.tp = spec.shape
        self.schedule = spec.schedule
        self.device_mesh = DeviceMesh(world, spec.shape, MESH_AXIS_NAMES)
        self.comm = config.comm if config.comm is not None else SimComm()
        self.retry_policy = config.retry_policy
        self.telemetry = config.telemetry if config.telemetry is not None else NULL_BUS
        self.layout = validate_mesh_layout(
            self.dp, config.grad_accum_steps, config.reduction_layout
        )
        self._dp_group = self.device_mesh.groups("dp")[0]
        self._tp_group = self.device_mesh.groups("tp")[0]
        self._pp_group = self.device_mesh.groups("pp")[0]
        self._param_dtype = model.parameters()[0].dtype

        # -- tp axis ------------------------------------------------------
        if self.tp > 1:
            _validate_tp(model, self.tp)
            self.tp_context: TPContext | None = TPContext(
                self.tp,
                self._tp_group,
                self.comm,
                bus=self.telemetry if self.telemetry.enabled else None,
            )
            model.use_tensor_parallel(self.tp_context)
        else:
            self.tp_context = None

        # -- pp axis ------------------------------------------------------
        if self.pp > 1:
            ops_fn = getattr(model, "pipeline_ops", None)
            if ops_fn is None:
                raise TypeError(
                    f"pp={self.pp} needs a model exposing pipeline_ops(); "
                    f"{type(model).__name__} does not"
                )
            self._ops = list(ops_fn())
            self._stage_bounds = partition_stages(len(self._ops), self.pp)
            self._stage_params = self._stage_param_lists()
        else:
            self._ops = None
            self._stage_bounds = None
            self._stage_params = None

        # -- dp axis ------------------------------------------------------
        self.gemm_pool = (
            GemmPool(config.intra_op_threads)
            if config.intra_op_threads > 1
            else None
        )
        if self.gemm_pool is not None:
            model.use_gemm_pool(self.gemm_pool)
        if dp_strategy == "full_shard":
            # ``units``/``shard_size`` double as the process backend's
            # fsdp-mode markers; the ddp branch must define neither.
            self.shard_size = self.dp
            self.units = default_wrap_units(model, self.dp)
        else:
            self.params = model.parameters()
        # Backend before optimizer: a process backend re-homes parameter
        # storage into shared memory first (same ordering as DDP/FSDP).
        self._backend = make_backend(self)
        if dp_strategy == "full_shard":
            self._shards = [u.make_shards() for u in self.units]
            opt_params = [s for shards in self._shards for s in shards]
        else:
            opt_params = self.params
        factory = (
            config.optimizer_factory
            if config.optimizer_factory is not None
            else AdamW
        )
        self.optimizer = factory(opt_params)
        self._init_precision()
        self._backend.start()
        self.step_count = 0

    # -- execution backend hooks -------------------------------------------

    @property
    def backend(self) -> str:
        """Name of the active execution backend (``inline``/``process``)."""
        return self._backend.name

    @property
    def data_parallel_size(self) -> int:
        """Ranks along the dp axis (microbatches per accumulation round)."""
        return self.dp

    @property
    def compute_world_size(self) -> int:
        """Ranks that run distinct compute: the dp axis only.

        The tp and pp axes are data-movement axes over the one shared
        model; the process backend sizes its worker pool from this."""
        return self.dp

    def _microbatch_count(self) -> int:
        """Microbatches one ``train_step`` consumes (rounds x dp ranks)."""
        return self.grad_accum_steps * self.dp

    def _zero_local_grads(self) -> None:
        """Zero one dp rank's local gradients before its microbatch."""
        if self.dp_strategy == "full_shard":
            for unit in self.units:
                unit.zero_grad()
        else:
            self.model.zero_grad()

    def _collect_rank_grads(self) -> list[np.ndarray]:
        """One dp rank's outbound (wire-ready) gradient contributions."""
        if self.dp_strategy == "full_shard":
            return [
                self._outbound_grad(unit.read_grad(), owned=True)
                for unit in self.units
            ]
        return [self._outbound_grad(p.grad) for p in self.params]

    def close(self) -> None:
        """Release backend resources (workers, shared memory, GEMM
        threads). Idempotent; see :meth:`DDPEngine.close`."""
        self._backend.shutdown()
        if self.gemm_pool is not None:
            self.gemm_pool.close()

    @property
    def lr(self) -> float:
        """Current learning rate (delegates to the optimizer)."""
        return self.optimizer.lr

    @lr.setter
    def lr(self, value: float) -> None:
        """Current learning rate (delegates to the optimizer)."""
        self.optimizer.lr = value

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Engine snapshot: model params, optimizer state, scaler, step."""
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "scaler": self.scaler.state_dict(),
            "step_count": self.step_count,
        }

    def load_state_dict(self, sd: dict) -> None:
        """Restore a snapshot from a same-architecture mesh engine."""
        self.model.load_state_dict(sd["model"])
        self.optimizer.load_state_dict(sd["optimizer"])
        if "scaler" in sd:
            self.scaler.load_state_dict(sd["scaler"])
        self.step_count = int(sd["step_count"])

    def topology(self) -> dict:
        """The world/mesh shape a snapshot of this engine assumes."""
        return {
            "kind": "mesh",
            "strategy": self.dp_strategy,
            "world_size": self.world.size,
            "ranks_per_node": self.world.ranks_per_node,
            "shard_size": self.dp if self.dp_strategy == "full_shard" else None,
            "grad_accum_steps": self.grad_accum_steps,
            "layout": {"total": self.layout.total, "chunk": self.layout.chunk},
            "precision": self.precision,
            "backend": self.backend,
            "mesh": {
                "pp": self.pp,
                "dp": self.dp,
                "tp": self.tp,
                "schedule": self.schedule,
            },
        }

    # -- collectives -------------------------------------------------------

    def _collective(self, fn, op: str = "collective", nbytes: float = 0.0, axis: str = "dp"):
        """Issue one collective with retries; span tagged by mesh axis."""
        bus = self.telemetry
        if not bus.enabled:
            return call_with_retry(fn, self.retry_policy, stats=self.comm.stats)
        stats = self.comm.stats
        retries0 = stats.total_retries
        backoff0 = stats.backoff_seconds
        try:
            with bus.span(f"comm.{op}", bytes=float(nbytes), axis=axis):
                return call_with_retry(fn, self.retry_policy, stats=stats)
        finally:
            if stats.total_retries != retries0:
                bus.counter("comm.retries", stats.total_retries - retries0, op=op)
                bus.counter(
                    "comm.backoff_s", stats.backoff_seconds - backoff0, op=op
                )

    def _issue_param_allgathers(self) -> None:
        """Materialize full parameters from dp shards (full_shard only)."""
        if self.dp_strategy != "full_shard" or self.dp == 1:
            return
        for unit in self.units:
            shards = [unit.shard_view(j) for j in range(self.dp)]
            gathered = self._collective(
                lambda shards=shards: self.comm.all_gather(
                    shards, self._dp_group, wire_dtype=None
                ),
                op="all_gather",
                nbytes=float(unit.flat.nbytes),
                axis="dp",
            )
            np.copyto(unit.flat, gathered[0])

    def _send(self, arr: np.ndarray, src: int, dst: int) -> np.ndarray:
        """Move a stage-boundary tensor through ``SimComm.send``."""
        arr = np.ascontiguousarray(arr)
        bus = self.telemetry
        if bus.enabled:
            with bus.span("comm.send", bytes=float(arr.nbytes), axis="pp"):
                return self.comm.send(arr, src, dst)
        return self.comm.send(arr, src, dst)

    # -- pipeline ----------------------------------------------------------

    def _stage_param_lists(self) -> list[list]:
        """Per-stage parameter ownership; must partition the model."""
        all_params = self.model.parameters()
        known = {id(p) for p in all_params}
        seen: set[int] = set()
        stages: list[list] = []
        for start, stop in self._stage_bounds:
            stage_params = []
            for op in self._ops[start:stop]:
                for p in op.params():
                    if id(p) not in known:
                        raise ValueError(
                            f"pipeline op {type(op).__name__} owns a "
                            "parameter not in model.parameters()"
                        )
                    if id(p) in seen:
                        raise ValueError(
                            f"pipeline op {type(op).__name__} claims a "
                            "parameter another stage already owns"
                        )
                    seen.add(id(p))
                    stage_params.append(p)
            stages.append(stage_params)
        if len(seen) != len(all_params):
            raise ValueError(
                "pipeline ops do not cover every model parameter "
                f"({len(seen)} of {len(all_params)} claimed)"
            )
        return stages

    def _run_pipeline(
        self, micros: Sequence[Any], k: int
    ) -> tuple[list[float], list[list[list[np.ndarray]]]]:
        """Drive the pipeline schedule for each dp rank's microbatches.

        Returns ``(losses, micro_grads)`` with losses indexed
        ``j * dp + r`` and ``micro_grads[j][r]`` the rank's outbound
        contribution for round ``j`` — the same shapes the round loop
        produces, so the reduction path downstream is shared.
        """
        bus = self.telemetry
        actions = schedule_actions(self.schedule, k, self.pp)
        # Parameters are static within a step, so the full_shard
        # materialization traffic is booked with the round loop's
        # cadence: one gather set per round plus the backward regather.
        for _ in range(k):
            self._issue_param_allgathers()
            self._issue_param_allgathers()
        losses = [0.0] * (k * self.dp)
        rows: list[list[list[np.ndarray] | None]] = [
            [None] * k for _ in range(self.dp)
        ]
        for r in range(self.dp):
            rank_micros = [
                self._cast_micro(micros[j * self.dp + r]) for j in range(k)
            ]
            with bus.span("compute.fwd_bwd"):
                self._run_pipeline_rank(r, rank_micros, actions, losses, rows[r])
        micro_grads = [
            [rows[r][j] for r in range(self.dp)] for j in range(k)
        ]
        return losses, micro_grads

    def _run_pipeline_rank(
        self,
        r: int,
        rank_micros: list,
        actions: list,
        losses: list[float],
        out_row: list,
    ) -> None:
        """Execute the schedule for dp rank ``r``'s ``k`` microbatches."""
        pp = self.pp
        ops = self._ops
        bounds = self._stage_bounds
        ranks = self._pp_group.ranks
        n_micro = len(rank_micros)
        ctxs: list[dict] = [dict() for _ in range(n_micro)]
        # inbox[s][j]: stage s's forward input for micro j (arrives via
        # send from stage s-1, kept alive for the recompute-at-backward).
        inbox: list[list] = [[None] * n_micro for _ in range(pp)]
        grad_inbox: list[list] = [[None] * n_micro for _ in range(pp)]
        partials: list[dict[int, np.ndarray]] = [dict() for _ in range(n_micro)]
        for j, micro in enumerate(rank_micros):
            inbox[0][j] = micro if isinstance(micro, tuple) else (micro, None)
        self._zero_local_grads()
        for kind, s, j in actions:
            start, stop = bounds[s]
            ctx = ctxs[j]
            x = inbox[s][j]
            for op in ops[start:stop]:
                x = op.forward(x, ctx)
            if kind == "fwd":
                if s < pp - 1:
                    inbox[s + 1][j] = self._send(x, ranks[s], ranks[s + 1])
                else:
                    losses[j * self.dp + r] = float(ctx["output"].loss)
                continue
            # Backward: the forward above was the recompute (in-flight
            # micros clobbered the module caches since this micro's
            # scheduled forward; deterministic via the ctx noise stash).
            d = grad_inbox[s][j]  # None on the last stage: tail seeds it
            for op in reversed(ops[start:stop]):
                d = op.backward(d, ctx)
            if s > 0:
                grad_inbox[s - 1][j] = self._send(d, ranks[s], ranks[s - 1])
            # Snapshot this stage's freshly accumulated gradients and
            # zero them, so in-flight micros never mix contributions.
            for p in self._stage_params[s]:
                partials[j][id(p)] = p.grad.copy()
                p.zero_grad()
            if s == 0:
                # Micro j fully done: reassemble its full-model gradient
                # and collect the outbound contribution through the same
                # path the round loop uses.
                snap = partials[j]
                for p in self.model.parameters():
                    p.grad[...] = snap.pop(id(p))
                out_row[j] = self._collect_rank_grads()
                self._zero_local_grads()

    def _book_pipeline_transfers(self, micros: Sequence[Any]) -> None:
        """Analytic stage-boundary byte accounting (process backend).

        Workers run each microbatch depth-first — numerically identical
        to any schedule — so no activation is ever materialized on a
        boundary. The parent books the traffic the inline schedule
        would move: per micro, per boundary, one forward activation and
        one backward gradient of the same size.
        """
        bus = self.telemetry
        for micro in micros:
            imgs = micro[0] if isinstance(micro, tuple) else micro
            batch = int(imgs.shape[0])
            itemsize = np.result_type(imgs.dtype, self._param_dtype).itemsize
            sizes = boundary_nbytes(self._ops, self._stage_bounds, batch, itemsize)
            for nbytes in sizes:
                for _direction in ("fwd", "bwd"):
                    self.comm.stats.record("send", 2, float(nbytes))
                    if bus.enabled:
                        with bus.span(
                            "comm.send", bytes=float(nbytes), axis="pp"
                        ):
                            pass

    # -- the step ----------------------------------------------------------

    def _reduce_gradients(
        self, micro_grads: list[list[list[np.ndarray]]]
    ) -> list[list[np.ndarray]] | np.ndarray:
        """Reduce all rounds' contributions over the dp group at once."""
        k = len(micro_grads)
        group = self._dp_group
        if self.dp_strategy == "full_shard":
            reduced = []
            for u in range(len(self.units)):
                bufs = [
                    micro_grads[j][r][u]
                    for j in range(k)
                    for r in range(self.dp)
                ]
                reduced.append(
                    self._collective(
                        lambda bufs=bufs: self.comm.reduce_scatter(
                            bufs,
                            group,
                            op="mean",
                            parts_per_rank=k,
                            wire_dtype=self._wire_dtype,
                        ),
                        op="reduce_scatter",
                        nbytes=self._wire_nbytes(bufs[0].nbytes),
                        axis="dp",
                    )
                )
            return reduced
        # ddp: one concatenated full-model contribution per (round, rank),
        # stacked-mean in micro order j * dp + r — elementwise, so it is
        # bit-identical to the oracle's bucketed reduction of the same
        # contributions (concatenation commutes with a stacked mean).
        n_items = len(self.params)
        per_contrib = [
            np.concatenate(
                [micro_grads[j][r][i].reshape(-1) for i in range(n_items)]
            )
            for j in range(k)
            for r in range(self.dp)
        ]
        return self._collective(
            lambda: self.comm.all_reduce(
                per_contrib,
                group,
                op="mean",
                parts_per_rank=k,
                wire_dtype=self._wire_dtype,
            ),
            op="all_reduce",
            nbytes=self._wire_nbytes(per_contrib[0].nbytes),
            axis="dp",
        )[0]

    def train_step(self, micros: Sequence[Any], step_fn: StepFn) -> float:
        """One optimizer step over ``grad_accum_steps * dp`` microbatches.

        Micro ``(round j, dp-rank r)`` sits at index ``j * dp + r``. In
        fp32 the result is bit-identical to the world-1 DDP oracle
        consuming the same micros with ``grad_accum_steps * dp``
        accumulation rounds, for every mesh shape and schedule (tested).
        """
        self._check_micros(micros)
        k = self.grad_accum_steps
        bus = self.telemetry
        bus.set_step(self.step_count)
        self._emit_precision_gauges()
        losses: list[float] = []
        micro_grads: list[list[list[np.ndarray]]] = []
        pipeline_inline = self.pp > 1 and self._backend.name == "inline"
        try:
            if pipeline_inline:
                losses, micro_grads = self._run_pipeline(micros, k)
            else:
                for j in range(k):
                    self._issue_param_allgathers()
                    with bus.span("compute.fwd_bwd"):
                        cast = [
                            self._cast_micro(micros[j * self.dp + r])
                            for r in range(self.dp)
                        ]
                        round_losses, per_rank = self._backend.run_round(
                            j, cast, step_fn
                        )
                        losses.extend(round_losses)
                        micro_grads.append(per_rank)
                    # FULL_SHARD-style backward regather (no-op for ddp).
                    self._issue_param_allgathers()
                if self.pp > 1:
                    self._book_pipeline_transfers(micros)
        except Exception:
            self.model.release_caches()
            raise

        try:
            reduced = self._reduce_gradients(micro_grads)
        except CollectiveError:
            self.model.release_caches()
            raise

        if self.dp_strategy == "full_shard":
            flat = [g for unit in reduced for g in unit]
            apply_update = self._grad_postprocess(flat)
            for u, shards in enumerate(self._shards):
                for s, shard in enumerate(shards):
                    shard.grad[...] = reduced[u][s]
        else:
            apply_update = self._grad_postprocess([reduced])
            offset = 0
            for p in self.params:
                n = p.grad.size
                p.grad[...] = reduced[offset : offset + n].reshape(p.grad.shape)
                offset += n
        if apply_update:
            with bus.span("optim.step"):
                self.optimizer.step()
        self.step_count += 1
        return float(np.mean(losses))
