"""N-D device meshes and the parallelism layers composed over them.

The mesh package generalizes the hard-coded 2-D replica x shard mesh of
``comm/world.py`` into one composable stack:

- :mod:`repro.mesh.spec` — :class:`MeshSpec`, the pure-literal
  ``EngineConfig(mesh=...)`` value naming the ``("pp", "dp", "tp")``
  axes (dependency leaf; importable from the config layer).
- :mod:`repro.mesh.device_mesh` — :class:`DeviceMesh`, named-axis rank
  grids with per-axis process-group extraction (the only place besides
  ``comm/world.py`` allowed to construct ``Group`` objects; see
  ``tools/mesh_discipline_check.py``).
- :mod:`repro.mesh.tp` — :class:`TPContext`, megatron-style tensor
  parallelism as load-bearing column-shard all-gathers.
- :mod:`repro.mesh.pipeline` — GPipe / 1F1B schedules over
  layer-partitioned op stages, plus closed-form boundary byte
  accounting.
- :mod:`repro.mesh.engine` — :class:`MeshEngine`, the engine that
  composes all three axes with the existing ddp / full-shard
  data-parallel strategies (built via
  ``make_engine(model, strategy, world=..., mesh=MeshSpec(...))``).

``MeshEngine`` is exposed lazily (PEP 562): ``repro.core.engine``
imports this package for :class:`MeshSpec`, while ``mesh/engine.py``
imports ``repro.core.engine`` back — the deferred attribute breaks the
cycle.
"""

from repro.mesh.device_mesh import DeviceMesh
from repro.mesh.pipeline import (
    boundary_nbytes,
    gpipe_schedule,
    one_f_one_b_schedule,
    partition_stages,
    schedule_actions,
)
from repro.mesh.spec import MESH_AXIS_NAMES, PIPELINE_SCHEDULES, MeshSpec
from repro.mesh.tp import TPContext

__all__ = [
    "DeviceMesh",
    "MESH_AXIS_NAMES",
    "MeshEngine",
    "MeshSpec",
    "PIPELINE_SCHEDULES",
    "TPContext",
    "boundary_nbytes",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "partition_stages",
    "schedule_actions",
]


def __getattr__(name: str):
    if name == "MeshEngine":
        from repro.mesh.engine import MeshEngine

        return MeshEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
