"""Mesh shape specification: the ``EngineConfig(mesh=...)`` value.

A :class:`MeshSpec` names the three parallelism axes the engine layer
composes — pipeline (``pp``), data (``dp``), tensor (``tp``) — plus the
pipeline schedule. It is a pure-literal frozen dataclass (stdlib only)
so :mod:`repro.core.engine` can import it without touching the rest of
:mod:`repro.mesh`, keeping the config layer a dependency leaf.

The axis order ``("pp", "dp", "tp")`` is also the rank-major order of
the realized :class:`~repro.mesh.device_mesh.DeviceMesh`: tp ranks are
adjacent (they exchange activations every layer), dp ranks stride over
tp blocks, and pp stages stride over whole (dp x tp) planes — the same
innermost-to-outermost bandwidth ordering megatron-style launchers use.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MeshSpec", "MESH_AXIS_NAMES", "PIPELINE_SCHEDULES"]

#: Canonical axis order for engine meshes (outermost to innermost).
MESH_AXIS_NAMES = ("pp", "dp", "tp")

#: Supported pipeline schedules (only meaningful when ``pp > 1``).
PIPELINE_SCHEDULES = ("gpipe", "1f1b")


@dataclass(frozen=True)
class MeshSpec:
    """Requested mesh shape for :func:`repro.core.engine.make_engine`.

    Parameters
    ----------
    pp:
        Pipeline stages (layer-partitioned).
    dp:
        Data-parallel replicas (where gradients are reduced).
    tp:
        Tensor-parallel ways (attention/MLP GEMM sharding).
    schedule:
        Pipeline schedule, ``"gpipe"`` or ``"1f1b"``; ignored when
        ``pp == 1``.
    """

    pp: int = 1
    dp: int = 1
    tp: int = 1
    schedule: str = "gpipe"

    def __post_init__(self) -> None:
        for name in MESH_AXIS_NAMES:
            v = getattr(self, name)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                raise ValueError(
                    f"mesh axis {name} must be an int >= 1, got {v!r}"
                )
        if self.schedule not in PIPELINE_SCHEDULES:
            raise ValueError(
                f"unknown pipeline schedule {self.schedule!r}; "
                f"expected one of {PIPELINE_SCHEDULES}"
            )

    @property
    def shape(self) -> tuple[int, int, int]:
        """Axis sizes in canonical ``("pp", "dp", "tp")`` order."""
        return (self.pp, self.dp, self.tp)

    @property
    def size(self) -> int:
        """Total ranks the mesh occupies (``pp * dp * tp``)."""
        return self.pp * self.dp * self.tp

    def describe(self) -> str:
        """Human-readable form used in error messages and topology dicts."""
        return f"(pp={self.pp}, dp={self.dp}, tp={self.tp}, schedule={self.schedule})"
