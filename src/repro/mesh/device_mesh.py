"""Named-axis N-D device meshes over a :class:`~repro.comm.world.World`.

:class:`DeviceMesh` generalizes the hard-coded 2-D replica x shard mesh
of :func:`repro.comm.world.make_hybrid_mesh` to any number of named
axes. Ranks are laid out row-major over ``shape`` in axis order, so the
*last* axis is innermost (adjacent global ranks) — the bandwidth-first
convention of megatron-style launchers. Process groups are extracted
per axis: ``groups("dp")`` returns one :class:`~repro.comm.world.Group`
per coordinate of the *other* axes, each connecting the ranks that vary
only along ``"dp"``.

This module (together with ``comm/world.py`` itself) is the only place
allowed to construct :class:`Group` objects — enforced by
``tools/mesh_discipline_check.py`` — so every collective in the tree
runs over a group that provably came from a mesh.
"""

from __future__ import annotations

import numpy as np

from repro.comm.world import Group, World

__all__ = ["DeviceMesh"]


class DeviceMesh:
    """An N-D arrangement of a world's ranks with named axes.

    Parameters
    ----------
    world:
        The :class:`~repro.comm.world.World` whose ranks are arranged.
        ``prod(shape)`` must equal ``world.size``.
    shape:
        Axis sizes, outermost first.
    axis_names:
        One unique non-empty name per axis (e.g. ``("pp", "dp", "tp")``).
    """

    def __init__(
        self,
        world: World,
        shape: tuple[int, ...],
        axis_names: tuple[str, ...],
        *,
        _grid: np.ndarray | None = None,
    ):
        shape = tuple(int(s) for s in shape)
        axis_names = tuple(axis_names)
        if len(shape) == 0:
            raise ValueError("a mesh needs at least one axis")
        if len(shape) != len(axis_names):
            raise ValueError(
                f"shape {shape} and axis_names {axis_names} disagree on rank"
            )
        if len(set(axis_names)) != len(axis_names):
            raise ValueError(f"duplicate axis names: {axis_names}")
        for name in axis_names:
            if not isinstance(name, str) or not name:
                raise ValueError(f"axis names must be non-empty strings, got {name!r}")
        for s in shape:
            if s < 1:
                raise ValueError(f"axis sizes must be >= 1, got {shape}")
        total = int(np.prod(shape))
        if _grid is None:
            if total != world.size:
                raise ValueError(
                    f"mesh shape {shape} holds {total} ranks but the world "
                    f"has {world.size}; axis sizes must multiply to the "
                    "world size"
                )
            _grid = np.arange(world.size, dtype=np.int64).reshape(shape)
        else:
            if _grid.shape != shape:
                raise ValueError("internal: grid/shape mismatch")
        self.world = world
        self.shape = shape
        self.axis_names = axis_names
        self._grid = _grid

    # -- introspection ---------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ranks covered by this mesh."""
        return int(self._grid.size)

    @property
    def ranks(self) -> tuple[int, ...]:
        """All covered global ranks, row-major."""
        return tuple(int(r) for r in self._grid.ravel())

    def axis_index(self, axis: str) -> int:
        """Position of ``axis`` in ``axis_names``."""
        try:
            return self.axis_names.index(axis)
        except ValueError:
            raise ValueError(
                f"unknown mesh axis {axis!r}; have {self.axis_names}"
            ) from None

    def axis_size(self, axis: str) -> int:
        """Size of the named axis."""
        return self.shape[self.axis_index(axis)]

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Mesh coordinates of a covered global rank."""
        hits = np.argwhere(self._grid == rank)
        if len(hits) == 0:
            raise ValueError(f"rank {rank} is not covered by this mesh")
        return tuple(int(c) for c in hits[0])

    def rank_at(self, coords: tuple[int, ...]) -> int:
        """Global rank at the given mesh coordinates."""
        if len(coords) != len(self.shape):
            raise ValueError(
                f"expected {len(self.shape)} coordinates, got {coords}"
            )
        return int(self._grid[tuple(coords)])

    # -- group extraction ------------------------------------------------

    def groups(self, axis: str) -> tuple[Group, ...]:
        """Every process group along ``axis``.

        One group per coordinate of the other axes; each group's ranks
        vary only along ``axis``, ordered by their axis coordinate.
        """
        i = self.axis_index(axis)
        moved = np.moveaxis(self._grid, i, -1).reshape(-1, self.shape[i])
        return tuple(
            self.world.new_group(tuple(int(r) for r in row)) for row in moved
        )

    def group_for(self, axis: str, rank: int) -> Group:
        """The ``axis`` group containing ``rank``."""
        for g in self.groups(axis):
            if rank in g:
                return g
        raise ValueError(f"rank {rank} is not covered by this mesh")

    def submesh(self, axes: tuple[str, ...], rank: int = 0) -> DeviceMesh:
        """The sub-grid through ``rank`` spanned by the named axes.

        The other axes are pinned at ``rank``'s coordinates; the result
        is a :class:`DeviceMesh` over the same world covering only the
        selected ranks (its shape no longer multiplies to the world
        size — group extraction still works per remaining axis).
        """
        axes = tuple(axes)
        if len(axes) == 0:
            raise ValueError("submesh needs at least one axis")
        keep = [self.axis_index(a) for a in axes]
        if len(set(keep)) != len(keep):
            raise ValueError(f"duplicate axes in submesh: {axes}")
        coords = self.coords_of(rank)
        index = tuple(
            slice(None) if i in keep else coords[i] for i in range(len(self.shape))
        )
        grid = self._grid[index]
        # numpy keeps surviving axes in original order; transpose them
        # into the requested order.
        remaining = sorted(keep)
        order = [remaining.index(i) for i in keep]
        grid = np.transpose(grid, order) if grid.ndim > 1 else grid
        shape = tuple(self.shape[i] for i in keep)
        return DeviceMesh(self.world, shape, axes, _grid=np.ascontiguousarray(grid))

    def describe(self) -> str:
        """Human-readable form, e.g. ``mesh(pp=2, dp=4, tp=2)``."""
        inner = ", ".join(
            f"{n}={s}" for n, s in zip(self.axis_names, self.shape)
        )
        return f"mesh({inner})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceMesh({self.describe()}, world={self.world.size})"
