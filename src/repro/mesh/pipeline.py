"""Pipeline-parallel schedules over layer-partitioned op stages.

A model exposing ``pipeline_ops()`` (see :mod:`repro.models.mae`) is
partitioned into ``pp`` contiguous op chunks — the *stages*. A schedule
is a sequence of ``("fwd"|"bwd", stage, micro)`` actions that respects
the pipeline dependencies:

- ``fwd(s, j)`` needs ``fwd(s-1, j)`` (the activation arrives from the
  previous stage);
- ``bwd(s, j)`` needs ``bwd(s+1, j)`` (the gradient arrives from the
  next stage) and ``fwd(s, j)``.

Two schedules are provided. **GPipe** runs all forwards as a wavefront,
then all backwards; its peak in-flight count per stage is the full
microbatch count. **1F1B** warms up with ``p-1-s`` forwards on stage
``s``, then strictly alternates one-backward/one-forward, draining the
pipeline with far fewer activations alive at once. Both execute every
micro's fwd exactly once and every bwd exactly once with per-stage
backward order ``0..m-1`` — and since the engine isolates microbatch
state (context dicts plus recompute-before-backward), *any* valid
schedule is numerically identical to running the microbatches
depth-first. The schedules differ only in activation liveness and
bubble structure, which is exactly what the telemetry layer measures.

Byte accounting: the activation crossing each stage boundary (and its
gradient, backward) moves through ``SimComm.send``.
:func:`boundary_nbytes` computes those payload sizes in closed form so
the process backend — whose workers run depth-first and never
materialize the send — can book identical wire bytes to the inline
schedule (asserted by the cross-backend differential tests).
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "partition_stages",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "schedule_actions",
    "boundary_nbytes",
]

Action = tuple[str, int, int]  # ("fwd" | "bwd", stage, micro)


def partition_stages(n_ops: int, pp: int) -> list[tuple[int, int]]:
    """Split ``n_ops`` ops into ``pp`` contiguous near-equal stages.

    Returns ``[(start, stop), ...]`` per stage. Earlier stages take the
    remainder (matching the ring-chunk convention in the collectives).
    """
    if pp < 1:
        raise ValueError(f"pp must be >= 1, got {pp}")
    if pp > n_ops:
        raise ValueError(
            f"cannot partition {n_ops} pipeline ops into {pp} stages; "
            f"the model supports at most pp={n_ops}"
        )
    base, extra = divmod(n_ops, pp)
    bounds, start = [], 0
    for s in range(pp):
        size = base + (1 if s < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def gpipe_schedule(n_micro: int, pp: int) -> Iterator[Action]:
    """GPipe: forward wavefront over all micros, then backward wavefront.

    Forward clock ``c`` runs stage ``s`` on micro ``c - s`` (the
    diagonal fill/drain); backward mirrors it from the last stage.
    """
    for c in range(n_micro + pp - 1):
        for s in range(pp):
            j = c - s
            if 0 <= j < n_micro:
                yield ("fwd", s, j)
    for c in range(n_micro + pp - 1):
        for s in range(pp - 1, -1, -1):
            j = c - (pp - 1 - s)
            if 0 <= j < n_micro:
                yield ("bwd", s, j)


def one_f_one_b_schedule(n_micro: int, pp: int) -> Iterator[Action]:
    """1F1B: per-stage warmup forwards, then alternate bwd/fwd, then drain.

    Stage ``s`` runs ``min(m, p-1-s)`` warmup forwards before its first
    backward, then strictly alternates. Emitted as a global tick loop:
    each tick, every stage (deepest first) runs its next ready action,
    readiness tracked against the dependency rules above.
    """
    if pp < 1:
        raise ValueError(f"pp must be >= 1, got {pp}")
    fwd_done = [0] * pp  # per stage: micros forwarded so far
    bwd_done = [0] * pp  # per stage: micros backwarded so far
    warmup = [min(n_micro, pp - 1 - s) for s in range(pp)]
    total = 2 * n_micro * pp
    emitted = 0
    while emitted < total:
        progressed = False
        # Deepest stage first so a bwd frees its upstream in the same tick.
        for s in range(pp - 1, -1, -1):
            j = bwd_done[s]
            bwd_ready = (
                j < n_micro
                and fwd_done[s] > j
                and (s == pp - 1 or bwd_done[s + 1] > j)
            )
            # After warmup[s] + j + 1 forwards, the next action is bwd j
            # (the strict one-backward/one-forward alternation).
            prefer_bwd = fwd_done[s] >= min(n_micro, warmup[s] + j + 1)
            if bwd_ready and prefer_bwd:
                yield ("bwd", s, j)
                bwd_done[s] += 1
                emitted += 1
                progressed = True
                continue
            i = fwd_done[s]
            if i < n_micro and (s == 0 or fwd_done[s - 1] > i):
                yield ("fwd", s, i)
                fwd_done[s] += 1
                emitted += 1
                progressed = True
            elif bwd_ready:
                yield ("bwd", s, j)
                bwd_done[s] += 1
                emitted += 1
                progressed = True
        if not progressed:  # pragma: no cover - schedule invariant
            raise RuntimeError("1F1B schedule deadlocked")


def schedule_actions(name: str, n_micro: int, pp: int) -> list[Action]:
    """Materialize the named schedule and verify its invariants."""
    if name == "gpipe":
        actions = list(gpipe_schedule(n_micro, pp))
    elif name == "1f1b":
        actions = list(one_f_one_b_schedule(n_micro, pp))
    else:
        raise ValueError(f"unknown pipeline schedule {name!r}")
    _check_schedule(actions, n_micro, pp)
    return actions


def _check_schedule(actions: list[Action], n_micro: int, pp: int) -> None:
    """Assert dependency order and exactly-once execution."""
    fwd_seen: set[tuple[int, int]] = set()
    bwd_seen: set[tuple[int, int]] = set()
    for kind, s, j in actions:
        if kind == "fwd":
            if (s, j) in fwd_seen:
                raise RuntimeError(f"fwd({s},{j}) scheduled twice")
            if s > 0 and (s - 1, j) not in fwd_seen:
                raise RuntimeError(f"fwd({s},{j}) before fwd({s - 1},{j})")
            fwd_seen.add((s, j))
        else:
            if (s, j) in bwd_seen:
                raise RuntimeError(f"bwd({s},{j}) scheduled twice")
            if (s, j) not in fwd_seen:
                raise RuntimeError(f"bwd({s},{j}) before fwd({s},{j})")
            if s < pp - 1 and (s + 1, j) not in bwd_seen:
                raise RuntimeError(f"bwd({s},{j}) before bwd({s + 1},{j})")
            bwd_seen.add((s, j))
    expect = {(s, j) for s in range(pp) for j in range(n_micro)}
    if fwd_seen != expect or bwd_seen != expect:
        raise RuntimeError("schedule did not execute every (stage, micro) once")


def boundary_nbytes(
    ops: list, bounds: list[tuple[int, int]], batch: int, itemsize: int
) -> list[int]:
    """Payload bytes of each stage boundary's activation tensor.

    ``bounds`` is the :func:`partition_stages` result; boundary ``s``
    carries the output of the last op of stage ``s`` (shape from the
    op's ``out_shape``). The same payload crosses back as a gradient,
    so one micro moves ``2 * sum(boundary_nbytes)`` bytes total.
    """
    sizes = []
    for s in range(len(bounds) - 1):
        last_op = ops[bounds[s][1] - 1]
        shape = last_op.out_shape(batch)
        n = 1
        for dim in shape:
            n *= dim
        sizes.append(n * itemsize)
    return sizes
