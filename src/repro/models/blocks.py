"""Pre-norm transformer encoder block (the ViT/MAE building unit).

``x = x + attn(ln1(x)); x = x + mlp(ln2(x))``

This block is also the FSDP *wrapping unit*: the sharding layer flattens
one block's parameters into one flat parameter, exactly like wrapping
``Block`` with ``transformer_auto_wrap_policy`` in the paper's setup.
"""

from __future__ import annotations

import numpy as np

from repro.models.attention import MultiHeadSelfAttention
from repro.models.layers import MLP, LayerNorm
from repro.models.module import DEFAULT_DTYPE, Module

__all__ = ["TransformerBlock"]


class TransformerBlock(Module):
    """One encoder block, optionally activation-checkpointed.

    With ``checkpoint=True`` the forward pass keeps only its *input*
    (dropping every intermediate cache) and the backward pass recomputes
    the forward first — the classic memory-for-compute trade the memory
    model (:mod:`repro.perf.memory_model`) prices, and what the paper's
    3B-on-one-GPU memory figures imply was enabled. Numerics are
    identical either way (tested).
    """

    def __init__(
        self,
        width: int,
        heads: int,
        mlp: int,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
        checkpoint: bool = False,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.ln1 = LayerNorm(width, dtype=dtype)
        self.attn = MultiHeadSelfAttention(width, heads, rng=rng, dtype=dtype)
        self.ln2 = LayerNorm(width, dtype=dtype)
        self.mlp = MLP(width, mlp, rng=rng, dtype=dtype)
        self.checkpoint = checkpoint
        self._ckpt_input: np.ndarray | None = None

    def _forward_impl(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn(self.ln1(x))
        x = x + self.mlp(self.ln2(x))
        return x

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Pre-norm block forward (checkpointing-aware)."""
        if not self.checkpoint:
            return self._forward_impl(x)
        out = self._forward_impl(x)
        self._ckpt_input = x
        self.release_caches()  # keep only the block input
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Block backward through both residual branches (recomputes forward first when checkpointed)."""
        if self.checkpoint:
            if self._ckpt_input is None:
                raise RuntimeError("backward called before forward")
            # Recompute the forward to rebuild the sub-layer caches.
            self._forward_impl(self._ckpt_input)
            self._ckpt_input = None
        # Second residual: dout flows both directly and through mlp(ln2(.)).
        dx = dout + self.ln2.backward(self.mlp.backward(dout))
        # First residual.
        dx = dx + self.ln1.backward(self.attn.backward(dx))
        return dx

    def _clear_cache(self) -> None:
        # Deliberately does NOT drop _ckpt_input: that is the one tensor
        # checkpointing keeps.
        pass
