"""Masked Autoencoder (He et al.) for ViT pretraining.

Mirrors the official MAE implementation the paper builds on:

- linear patch embedding over *all* patches, fixed sin-cos positions;
- per-sample random masking by argsort of a noise vector (75% default);
- encoder sees only the visible patches plus a class token;
- lightweight decoder (8 blocks / width 512 at paper scale) receives the
  encoded visible tokens plus a learned mask token per masked position,
  un-shuffled back to the original patch order;
- MSE reconstruction loss on masked patches only, with per-patch
  pixel normalization (``norm_pix_loss``).

The masking noise is an explicit input so the distributed engines can
make masking a function of the *global sample index*: sharded and
unsharded training then produce bit-identical losses (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MAEConfig
from repro.models import init
from repro.models.blocks import TransformerBlock
from repro.models.layers import LayerNorm, Linear
from repro.models.module import DEFAULT_DTYPE, Module, Parameter
from repro.models.patch import patchify, unpatchify
from repro.models.posembed import sincos_2d

__all__ = ["MaskedAutoencoder", "MAEOutput"]


@dataclass
class MAEOutput:
    """Result of one MAE forward pass."""

    loss: float
    pred: np.ndarray  # (B, N, patch_dim) reconstruction in patch space
    mask: np.ndarray  # (B, N) 1 where the patch was masked


class MaskedAutoencoder(Module):
    def __init__(
        self,
        cfg: MAEConfig,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
        checkpoint: bool = False,
    ):
        super().__init__()
        self.cfg = cfg
        enc = cfg.encoder
        rng = rng if rng is not None else np.random.default_rng(0)
        self.rng = rng

        # Encoder.
        self.patch_proj = Linear(enc.patch_dim, enc.width, rng=rng, dtype=dtype)
        self.cls_token = Parameter(
            init.trunc_normal(rng, (1, 1, enc.width), dtype=dtype), name="cls_token"
        )
        self.enc_pos = sincos_2d(enc.width, enc.grid, cls_token=True).astype(dtype)
        self.enc_blocks = [
            TransformerBlock(
                enc.width, enc.heads, enc.mlp, rng=rng, dtype=dtype,
                checkpoint=checkpoint,
            )
            for _ in range(enc.depth)
        ]
        for i, blk in enumerate(self.enc_blocks):
            setattr(self, f"enc_block{i}", blk)
        self.enc_norm = LayerNorm(enc.width, dtype=dtype)

        # Decoder.
        self.dec_embed = Linear(enc.width, cfg.dec_width, rng=rng, dtype=dtype)
        self.mask_token = Parameter(
            init.trunc_normal(rng, (1, 1, cfg.dec_width), dtype=dtype),
            name="mask_token",
        )
        self.dec_pos = sincos_2d(cfg.dec_width, enc.grid, cls_token=True).astype(dtype)
        self.dec_blocks = [
            TransformerBlock(
                cfg.dec_width, cfg.dec_heads, 4 * cfg.dec_width, rng=rng,
                dtype=dtype, checkpoint=checkpoint,
            )
            for _ in range(cfg.dec_depth)
        ]
        for i, blk in enumerate(self.dec_blocks):
            setattr(self, f"dec_block{i}", blk)
        self.dec_norm = LayerNorm(cfg.dec_width, dtype=dtype)
        self.pred = Linear(cfg.dec_width, enc.patch_dim, rng=rng, dtype=dtype)

        self._cache = None

    # -- masking -----------------------------------------------------------

    def random_masking_indices(
        self, noise: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Derive (ids_keep, ids_shuffle, ids_restore, mask) from noise.

        ``noise`` is ``(B, N)``; patches with the smallest noise stay
        visible (the MAE reference convention).
        """
        b, n = noise.shape
        if n != self.cfg.encoder.n_patches:
            raise ValueError(
                f"noise has {n} patches, model expects {self.cfg.encoder.n_patches}"
            )
        ids_shuffle = np.argsort(noise, axis=1, kind="stable")
        ids_restore = np.argsort(ids_shuffle, axis=1, kind="stable")
        n_vis = self.cfg.n_visible
        ids_keep = ids_shuffle[:, :n_vis]
        mask = np.ones((b, n), dtype=noise.dtype)
        mask[:, :n_vis] = 0.0
        mask = np.take_along_axis(mask, ids_restore, axis=1)
        return ids_keep, ids_shuffle, ids_restore, mask

    # -- forward -----------------------------------------------------------

    def forward(self, imgs: np.ndarray, noise: np.ndarray | None = None) -> MAEOutput:
        """Masked-autoencoder forward: mask, encode visibles, decode, per-patch-normalized MSE on masked patches."""
        enc = self.cfg.encoder
        b = imgs.shape[0]
        if noise is None:
            noise = self.rng.random((b, enc.n_patches))
        ids_keep, ids_shuffle, ids_restore, mask = self.random_masking_indices(noise)
        n_vis = self.cfg.n_visible

        patches = patchify(imgs, enc.patch)  # (B, N, D)
        tok = self.patch_proj(patches) + self.enc_pos[None, 1:, :]
        x_vis = np.take_along_axis(tok, ids_keep[:, :, None], axis=1)

        cls = np.broadcast_to(
            self.cls_token.data + self.enc_pos[None, :1, :], (b, 1, enc.width)
        )
        x = np.concatenate([cls, x_vis], axis=1)  # (B, 1+Lv, W)
        for blk in self.enc_blocks:
            x = blk(x)
        x = self.enc_norm(x)

        y = self.dec_embed(x)  # (B, 1+Lv, Wd)
        n_masked = self.cfg.n_masked
        mask_tokens = np.broadcast_to(
            self.mask_token.data, (b, n_masked, self.cfg.dec_width)
        )
        y_shuffled = np.concatenate([y[:, 1:, :], mask_tokens], axis=1)  # (B, N, Wd)
        y_unshuf = np.take_along_axis(y_shuffled, ids_restore[:, :, None], axis=1)
        y_full = np.concatenate([y[:, :1, :], y_unshuf], axis=1) + self.dec_pos[None]
        for blk in self.dec_blocks:
            y_full = blk(y_full)
        y_full = self.dec_norm(y_full)
        pred = self.pred(y_full[:, 1:, :])  # (B, N, D)

        # Reconstruction target, optionally per-patch normalized.
        target = patches
        if self.cfg.norm_pix_loss:
            mu = target.mean(axis=-1, keepdims=True)
            var = target.var(axis=-1, keepdims=True)
            target = (target - mu) / np.sqrt(var + 1e-6)

        diff = pred - target
        per_patch = (diff * diff).mean(axis=-1)  # (B, N)
        mask_sum = mask.sum()
        loss = float((per_patch * mask).sum() / mask_sum)

        self._cache = (
            b,
            ids_keep,
            ids_shuffle,
            mask,
            diff,
            mask_sum,
            n_vis,
            tok.shape,
        )
        return MAEOutput(loss=loss, pred=pred, mask=mask)

    # -- backward ----------------------------------------------------------

    def backward(self) -> np.ndarray:
        """Backprop d(loss)/d(everything); returns d(loss)/d(imgs)."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        (b, ids_keep, ids_shuffle, mask, diff, mask_sum, n_vis, tok_shape) = self._cache
        self._cache = None
        enc = self.cfg.encoder
        d_patch = enc.patch_dim

        dpred = (2.0 / d_patch) * diff * mask[:, :, None] / mask_sum
        dy_tail = self.pred.backward(dpred)  # (B, N, Wd)
        dy_full = np.concatenate(
            [np.zeros((b, 1, self.cfg.dec_width), dtype=dy_tail.dtype), dy_tail],
            axis=1,
        )
        dy_full = self.dec_norm.backward(dy_full)
        for blk in reversed(self.dec_blocks):
            dy_full = blk.backward(dy_full)
        # dec_pos is a constant buffer: no gradient.
        dcls_dec = dy_full[:, :1, :]
        dy_unshuf = dy_full[:, 1:, :]
        # Inverse of the gather-with-ids_restore is gather-with-ids_shuffle.
        dy_shuffled = np.take_along_axis(dy_unshuf, ids_shuffle[:, :, None], axis=1)
        dy_vis = dy_shuffled[:, :n_vis, :]
        dmask_tok = dy_shuffled[:, n_vis:, :]
        self.mask_token.accumulate(
            dmask_tok.sum(axis=(0, 1))[None, None, :]
        )
        dy_enc_out = np.concatenate([dcls_dec, dy_vis], axis=1)
        dx = self.dec_embed.backward(dy_enc_out)

        dx = self.enc_norm.backward(dx)
        for blk in reversed(self.enc_blocks):
            dx = blk.backward(dx)
        dcls = dx[:, :1, :]
        self.cls_token.accumulate(dcls.sum(axis=0, keepdims=True))
        dvis = dx[:, 1:, :]
        dtok = np.zeros(tok_shape, dtype=dvis.dtype)
        np.put_along_axis(dtok, ids_keep[:, :, None], dvis, axis=1)
        dpatches = self.patch_proj.backward(dtok)
        return unpatchify(dpatches, enc.patch, enc.in_chans)

    def _clear_cache(self) -> None:
        self._cache = None

    # -- feature extraction (for linear probing) ----------------------------

    def encode_features(self, imgs: np.ndarray) -> np.ndarray:
        """Class-token features from the *unmasked* encoder: ``(B, W)``.

        This is the representation the paper linear-probes (the MAE
        encoder applied to the full image, masking disabled).
        """
        enc = self.cfg.encoder
        b = imgs.shape[0]
        patches = patchify(imgs, enc.patch)
        x = self.patch_proj(patches) + self.enc_pos[None, 1:, :]
        cls = np.broadcast_to(
            self.cls_token.data + self.enc_pos[None, :1, :], (b, 1, enc.width)
        )
        x = np.concatenate([cls, x], axis=1)
        for blk in self.enc_blocks:
            x = blk(x)
        x = self.enc_norm(x)
        # Copy: with a workspace attached, x is a pooled buffer that the
        # next forward overwrites, and feature extraction batches calls.
        return x[:, 0, :].copy()

    def encode_patch_tokens(self, imgs: np.ndarray) -> np.ndarray:
        """Per-patch features from the unmasked encoder: ``(B, N, W)``.

        The dense counterpart of :meth:`encode_features` — used for
        patch-level downstream tasks (semantic segmentation probing).
        """
        enc = self.cfg.encoder
        b = imgs.shape[0]
        patches = patchify(imgs, enc.patch)
        x = self.patch_proj(patches) + self.enc_pos[None, 1:, :]
        cls = np.broadcast_to(
            self.cls_token.data + self.enc_pos[None, :1, :], (b, 1, enc.width)
        )
        x = np.concatenate([cls, x], axis=1)
        for blk in self.enc_blocks:
            x = blk(x)
        x = self.enc_norm(x)
        # Copy for the same buffer-reuse reason as encode_features.
        return x[:, 1:, :].copy()
