"""Masked Autoencoder (He et al.) for ViT pretraining.

Mirrors the official MAE implementation the paper builds on:

- linear patch embedding over *all* patches, fixed sin-cos positions;
- per-sample random masking by argsort of a noise vector (75% default);
- encoder sees only the visible patches plus a class token;
- lightweight decoder (8 blocks / width 512 at paper scale) receives the
  encoded visible tokens plus a learned mask token per masked position,
  un-shuffled back to the original patch order;
- MSE reconstruction loss on masked patches only, with per-patch
  pixel normalization (``norm_pix_loss``).

The masking noise is an explicit input so the distributed engines can
make masking a function of the *global sample index*: sharded and
unsharded training then produce bit-identical losses (tested).

Pipeline decomposition: the forward pass is expressed as a sequence of
*ops* — ``[head] + enc_blocks + [bridge] + dec_blocks + [tail]`` — and
``forward``/``backward`` simply run that sequence forward/reversed.
The ops are the single source of truth, so a layer-partitioned pipeline
engine (:mod:`repro.mesh.pipeline`) running contiguous op chunks as
stages is bit-identical to the monolithic pass *by construction*.
Per-microbatch state (masking indices, patch targets, the loss
residual) lives in an explicit ``ctx`` dict threaded through the ops,
never in module attributes, so multiple microbatches can be in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MAEConfig
from repro.models import init
from repro.models.blocks import TransformerBlock
from repro.models.layers import LayerNorm, Linear
from repro.models.module import DEFAULT_DTYPE, Module, Parameter
from repro.models.patch import patchify, unpatchify
from repro.models.posembed import sincos_2d

__all__ = ["MaskedAutoencoder", "MAEOutput"]


@dataclass
class MAEOutput:
    """Result of one MAE forward pass."""

    loss: float
    pred: np.ndarray  # (B, N, patch_dim) reconstruction in patch space
    mask: np.ndarray  # (B, N) 1 where the patch was masked


class _HeadOp:
    """Patchify, embed, mask, prepend cls: ``(imgs, noise) -> (B, 1+Lv, W)``."""

    kind = "head"

    def __init__(self, model: "MaskedAutoencoder"):
        self.m = model

    def forward(self, x, ctx: dict):
        imgs, noise = x
        m = self.m
        enc = m.cfg.encoder
        b = imgs.shape[0]
        if noise is None:
            # Reuse the noise a previous forward of this micro drew (the
            # pipeline engine recomputes stage forwards before backward);
            # only draw fresh noise on the first pass.
            noise = ctx.get("noise")
        if noise is None:
            noise = m.rng.random((b, enc.n_patches))
        ctx["noise"] = noise
        ids_keep, ids_shuffle, ids_restore, mask = m.random_masking_indices(noise)

        patches = patchify(imgs, enc.patch)  # (B, N, D)
        tok = m.patch_proj(patches) + m.enc_pos[None, 1:, :]
        x_vis = np.take_along_axis(tok, ids_keep[:, :, None], axis=1)

        cls = np.broadcast_to(
            m.cls_token.data + m.enc_pos[None, :1, :], (b, 1, enc.width)
        )
        ctx.update(
            b=b,
            ids_keep=ids_keep,
            ids_shuffle=ids_shuffle,
            ids_restore=ids_restore,
            mask=mask,
            patches=patches,
            tok_shape=tok.shape,
            n_vis=m.cfg.n_visible,
        )
        return np.concatenate([cls, x_vis], axis=1)  # (B, 1+Lv, W)

    def backward(self, d, ctx: dict):
        m = self.m
        enc = m.cfg.encoder
        dcls = d[:, :1, :]
        m.cls_token.accumulate(dcls.sum(axis=0, keepdims=True))
        dvis = d[:, 1:, :]
        dtok = np.zeros(ctx["tok_shape"], dtype=dvis.dtype)
        np.put_along_axis(dtok, ctx["ids_keep"][:, :, None], dvis, axis=1)
        dpatches = m.patch_proj.backward(dtok)
        return unpatchify(dpatches, enc.patch, enc.in_chans)

    def out_shape(self, batch: int) -> tuple[int, ...]:
        enc = self.m.cfg.encoder
        return (batch, 1 + self.m.cfg.n_visible, enc.width)

    def params(self) -> list[Parameter]:
        return self.m.patch_proj.parameters() + [self.m.cls_token]


class _BlockOp:
    """One transformer block (encoder or decoder)."""

    def __init__(self, model: "MaskedAutoencoder", blk, kind: str):
        self.m = model
        self.blk = blk
        self.kind = kind

    def forward(self, x, ctx: dict):
        return self.blk(x)

    def backward(self, d, ctx: dict):
        return self.blk.backward(d)

    def out_shape(self, batch: int) -> tuple[int, ...]:
        m = self.m
        if self.kind == "enc":
            return (batch, 1 + m.cfg.n_visible, m.cfg.encoder.width)
        return (batch, 1 + m.cfg.encoder.n_patches, m.cfg.dec_width)

    def params(self) -> list[Parameter]:
        return self.blk.parameters()


class _BridgeOp:
    """Encoder norm, decoder embed, mask-token fill, un-shuffle, dec pos."""

    kind = "bridge"

    def __init__(self, model: "MaskedAutoencoder"):
        self.m = model

    def forward(self, x, ctx: dict):
        m = self.m
        b = ctx["b"]
        x = m.enc_norm(x)
        y = m.dec_embed(x)  # (B, 1+Lv, Wd)
        n_masked = m.cfg.n_masked
        mask_tokens = np.broadcast_to(
            m.mask_token.data, (b, n_masked, m.cfg.dec_width)
        )
        y_shuffled = np.concatenate([y[:, 1:, :], mask_tokens], axis=1)  # (B, N, Wd)
        y_unshuf = np.take_along_axis(
            y_shuffled, ctx["ids_restore"][:, :, None], axis=1
        )
        return np.concatenate([y[:, :1, :], y_unshuf], axis=1) + m.dec_pos[None]

    def backward(self, d, ctx: dict):
        m = self.m
        # dec_pos is a constant buffer: no gradient.
        dcls_dec = d[:, :1, :]
        dy_unshuf = d[:, 1:, :]
        # Inverse of the gather-with-ids_restore is gather-with-ids_shuffle.
        dy_shuffled = np.take_along_axis(
            dy_unshuf, ctx["ids_shuffle"][:, :, None], axis=1
        )
        n_vis = ctx["n_vis"]
        dy_vis = dy_shuffled[:, :n_vis, :]
        dmask_tok = dy_shuffled[:, n_vis:, :]
        m.mask_token.accumulate(dmask_tok.sum(axis=(0, 1))[None, None, :])
        dy_enc_out = np.concatenate([dcls_dec, dy_vis], axis=1)
        dx = m.dec_embed.backward(dy_enc_out)
        return m.enc_norm.backward(dx)

    def out_shape(self, batch: int) -> tuple[int, ...]:
        m = self.m
        return (batch, 1 + m.cfg.encoder.n_patches, m.cfg.dec_width)

    def params(self) -> list[Parameter]:
        m = self.m
        return (
            m.enc_norm.parameters()
            + m.dec_embed.parameters()
            + [m.mask_token]
        )


class _TailOp:
    """Decoder norm, pixel prediction, masked per-patch-normalized MSE."""

    kind = "tail"

    def __init__(self, model: "MaskedAutoencoder"):
        self.m = model

    def forward(self, x, ctx: dict):
        m = self.m
        y_full = m.dec_norm(x)
        pred = m.pred(y_full[:, 1:, :])  # (B, N, D)

        # Reconstruction target, optionally per-patch normalized.
        target = ctx["patches"]
        if m.cfg.norm_pix_loss:
            mu = target.mean(axis=-1, keepdims=True)
            var = target.var(axis=-1, keepdims=True)
            target = (target - mu) / np.sqrt(var + 1e-6)

        mask = ctx["mask"]
        diff = pred - target
        per_patch = (diff * diff).mean(axis=-1)  # (B, N)
        mask_sum = mask.sum()
        loss = float((per_patch * mask).sum() / mask_sum)
        ctx["diff"] = diff
        ctx["mask_sum"] = mask_sum
        out = MAEOutput(loss=loss, pred=pred, mask=mask)
        ctx["output"] = out
        return out

    def backward(self, d, ctx: dict):
        # ``d`` is ignored: this op owns the loss, so backward seeds it.
        m = self.m
        d_patch = m.cfg.encoder.patch_dim
        dpred = (2.0 / d_patch) * ctx["diff"] * ctx["mask"][:, :, None] / ctx["mask_sum"]
        dy_tail = m.pred.backward(dpred)  # (B, N, Wd)
        dy_full = np.concatenate(
            [np.zeros((ctx["b"], 1, m.cfg.dec_width), dtype=dy_tail.dtype), dy_tail],
            axis=1,
        )
        return m.dec_norm.backward(dy_full)

    def out_shape(self, batch: int) -> None:
        return None  # the loss: nothing crosses a stage boundary after this

    def params(self) -> list[Parameter]:
        return self.m.dec_norm.parameters() + self.m.pred.parameters()


class MaskedAutoencoder(Module):
    def __init__(
        self,
        cfg: MAEConfig,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
        checkpoint: bool = False,
    ):
        super().__init__()
        self.cfg = cfg
        enc = cfg.encoder
        rng = rng if rng is not None else np.random.default_rng(0)
        self.rng = rng

        # Encoder.
        self.patch_proj = Linear(enc.patch_dim, enc.width, rng=rng, dtype=dtype)
        self.cls_token = Parameter(
            init.trunc_normal(rng, (1, 1, enc.width), dtype=dtype), name="cls_token"
        )
        self.enc_pos = sincos_2d(enc.width, enc.grid, cls_token=True).astype(dtype)
        self.enc_blocks = [
            TransformerBlock(
                enc.width, enc.heads, enc.mlp, rng=rng, dtype=dtype,
                checkpoint=checkpoint,
            )
            for _ in range(enc.depth)
        ]
        for i, blk in enumerate(self.enc_blocks):
            setattr(self, f"enc_block{i}", blk)
        self.enc_norm = LayerNorm(enc.width, dtype=dtype)

        # Decoder.
        self.dec_embed = Linear(enc.width, cfg.dec_width, rng=rng, dtype=dtype)
        self.mask_token = Parameter(
            init.trunc_normal(rng, (1, 1, cfg.dec_width), dtype=dtype),
            name="mask_token",
        )
        self.dec_pos = sincos_2d(cfg.dec_width, enc.grid, cls_token=True).astype(dtype)
        self.dec_blocks = [
            TransformerBlock(
                cfg.dec_width, cfg.dec_heads, 4 * cfg.dec_width, rng=rng,
                dtype=dtype, checkpoint=checkpoint,
            )
            for _ in range(cfg.dec_depth)
        ]
        for i, blk in enumerate(self.dec_blocks):
            setattr(self, f"dec_block{i}", blk)
        self.dec_norm = LayerNorm(cfg.dec_width, dtype=dtype)
        self.pred = Linear(cfg.dec_width, enc.patch_dim, rng=rng, dtype=dtype)

        # The pipeline op sequence (single source of truth for fwd/bwd).
        self._ops = (
            [_HeadOp(self)]
            + [_BlockOp(self, blk, "enc") for blk in self.enc_blocks]
            + [_BridgeOp(self)]
            + [_BlockOp(self, blk, "dec") for blk in self.dec_blocks]
            + [_TailOp(self)]
        )

        self._cache = None

    def pipeline_ops(self) -> list:
        """The forward pass as an op sequence (see module docstring).

        A pipeline engine partitions this list into contiguous stages;
        running the full list in order is exactly :meth:`forward`.
        """
        return self._ops

    # -- masking -----------------------------------------------------------

    def random_masking_indices(
        self, noise: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Derive (ids_keep, ids_shuffle, ids_restore, mask) from noise.

        ``noise`` is ``(B, N)``; patches with the smallest noise stay
        visible (the MAE reference convention).
        """
        b, n = noise.shape
        if n != self.cfg.encoder.n_patches:
            raise ValueError(
                f"noise has {n} patches, model expects {self.cfg.encoder.n_patches}"
            )
        ids_shuffle = np.argsort(noise, axis=1, kind="stable")
        ids_restore = np.argsort(ids_shuffle, axis=1, kind="stable")
        n_vis = self.cfg.n_visible
        ids_keep = ids_shuffle[:, :n_vis]
        mask = np.ones((b, n), dtype=noise.dtype)
        mask[:, :n_vis] = 0.0
        mask = np.take_along_axis(mask, ids_restore, axis=1)
        return ids_keep, ids_shuffle, ids_restore, mask

    # -- forward -----------------------------------------------------------

    def forward(self, imgs: np.ndarray, noise: np.ndarray | None = None) -> MAEOutput:
        """Masked-autoencoder forward: mask, encode visibles, decode, per-patch-normalized MSE on masked patches.

        Runs the pipeline op sequence in order with one shared per-call
        ``ctx``; the tail op returns the :class:`MAEOutput`.
        """
        ctx: dict = {}
        x = (imgs, noise)
        for op in self._ops:
            x = op.forward(x, ctx)
        self._cache = ctx
        return x

    # -- backward ----------------------------------------------------------

    def backward(self) -> np.ndarray:
        """Backprop d(loss)/d(everything); returns d(loss)/d(imgs).

        Runs the pipeline op sequence reversed (the tail op seeds the
        loss gradient).
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        ctx, self._cache = self._cache, None
        d = None
        for op in reversed(self._ops):
            d = op.backward(d, ctx)
        return d

    def _clear_cache(self) -> None:
        self._cache = None

    # -- feature extraction (for linear probing) ----------------------------

    def encode_features(self, imgs: np.ndarray) -> np.ndarray:
        """Class-token features from the *unmasked* encoder: ``(B, W)``.

        This is the representation the paper linear-probes (the MAE
        encoder applied to the full image, masking disabled).
        """
        enc = self.cfg.encoder
        b = imgs.shape[0]
        patches = patchify(imgs, enc.patch)
        x = self.patch_proj(patches) + self.enc_pos[None, 1:, :]
        cls = np.broadcast_to(
            self.cls_token.data + self.enc_pos[None, :1, :], (b, 1, enc.width)
        )
        x = np.concatenate([cls, x], axis=1)
        for blk in self.enc_blocks:
            x = blk(x)
        x = self.enc_norm(x)
        # Copy: with a workspace attached, x is a pooled buffer that the
        # next forward overwrites, and feature extraction batches calls.
        return x[:, 0, :].copy()

    def encode_patch_tokens(self, imgs: np.ndarray) -> np.ndarray:
        """Per-patch features from the unmasked encoder: ``(B, N, W)``.

        The dense counterpart of :meth:`encode_features` — used for
        patch-level downstream tasks (semantic segmentation probing).
        """
        enc = self.cfg.encoder
        b = imgs.shape[0]
        patches = patchify(imgs, enc.patch)
        x = self.patch_proj(patches) + self.enc_pos[None, 1:, :]
        cls = np.broadcast_to(
            self.cls_token.data + self.enc_pos[None, :1, :], (b, 1, enc.width)
        )
        x = np.concatenate([cls, x], axis=1)
        for blk in self.enc_blocks:
            x = blk(x)
        x = self.enc_norm(x)
        # Copy for the same buffer-reuse reason as encode_features.
        return x[:, 1:, :].copy()
