"""Naive reference kernels: the numerical oracle for the fused hot path.

These are the substrate's original (pre-optimization) implementations,
kept verbatim. They allocate freely, never write in place, and follow
the textbook formulas — which makes them slow, obviously correct, and
the ideal oracle: the equivalence gate in
``tests/test_models/test_hotpath_equivalence.py`` asserts that the fused
kernels in :mod:`repro.models.functional` / :mod:`repro.models.layers` /
:mod:`repro.models.attention` match these bit-for-bit-ish (atol=1e-6,
observed ~1e-15), so an optimization can never silently change training
math. ``benchmarks/bench_hotpath.py`` also times them as the "naive"
baseline of its speedup gate.

Do not optimize this module.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gelu",
    "gelu_backward",
    "softmax",
    "softmax_backward",
    "layernorm",
    "layernorm_backward",
    "linear_forward",
    "linear_backward",
]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)
_GELU_C = 0.044715


def gelu(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Tanh-approximated GELU. Returns ``(y, tanh_cache)``."""
    inner = _SQRT_2_OVER_PI * (x + _GELU_C * x**3)
    t = np.tanh(inner)
    y = 0.5 * x * (1.0 + t)
    return y, t


def gelu_backward(dout: np.ndarray, x: np.ndarray, t: np.ndarray) -> np.ndarray:
    """d/dx of tanh-GELU given the cached tanh value ``t``."""
    du = _SQRT_2_OVER_PI * (1.0 + 3.0 * _GELU_C * x * x)
    return dout * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_backward(dout: np.ndarray, y: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward of softmax given its output ``y``."""
    return y * (dout - (dout * y).sum(axis=axis, keepdims=True))


def layernorm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-6
) -> tuple[np.ndarray, tuple]:
    """LayerNorm over the last axis. Returns ``(y, cache)``."""
    mu = x.mean(axis=-1, keepdims=True)
    xc = x - mu
    var = (xc * xc).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = xc * inv_std
    y = xhat * gamma + beta
    return y, (xhat, inv_std)


def layernorm_backward(
    dout: np.ndarray, gamma: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of layernorm. Returns ``(dx, dgamma, dbeta)``."""
    xhat, inv_std = cache
    reduce_axes = tuple(range(dout.ndim - 1))
    dgamma = (dout * xhat).sum(axis=reduce_axes)
    dbeta = dout.sum(axis=reduce_axes)
    dxhat = dout * gamma
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * inv_std
    return dx, dgamma, dbeta


def linear_forward(
    weight: np.ndarray, bias: np.ndarray | None, x: np.ndarray
) -> np.ndarray:
    """``x @ W (+ b)`` exactly as the original Linear computed it
    (stacked batched matmul, fresh output)."""
    y = x @ weight
    if bias is not None:
        y = y + bias
    return y


def linear_backward(
    weight: np.ndarray, x: np.ndarray, dout: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(dx, dweight, dbias)`` for the reference linear."""
    in_features, out_features = weight.shape
    x2 = x.reshape(-1, in_features)
    d2 = dout.reshape(-1, out_features)
    dweight = x2.T @ d2
    dbias = d2.sum(axis=0)
    dx = dout @ weight.T
    return dx, dweight, dbias
