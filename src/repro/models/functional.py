"""Stateless numeric primitives with paired backward functions.

Every kernel here is *fused and buffer-aware*: it computes through
in-place ufunc chains (one pass per logical term, no expression-tree
temporaries) and accepts optional ``out=`` buffers so callers holding a
:class:`~repro.models.workspace.Workspace` can make the steady-state
training step allocation-free. With the ``out`` arguments omitted the
kernels allocate their results and behave like plain functions.

The original allocating implementations live on as the oracle in
:mod:`repro.models.reference`; the equivalence tests assert these fused
versions agree with them to float rounding.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gelu",
    "gelu_backward",
    "softmax",
    "softmax_backward",
    "layernorm",
    "layernorm_backward",
]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)
_GELU_C = 0.044715


def gelu(
    x: np.ndarray,
    out: np.ndarray | None = None,
    t_out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Tanh-approximated GELU (the variant in the original ViT/MAE code).

    Returns ``(y, cache)`` where cache holds the inner tanh for backward.
    ``out``/``t_out`` receive ``y`` and the tanh cache when given.
    """
    t = t_out if t_out is not None else np.empty_like(x)
    y = out if out is not None else np.empty_like(x)
    # t = tanh(sqrt(2/pi) * x * (1 + c x^2)), built without temporaries.
    np.multiply(x, x, out=t)
    t *= _GELU_C
    t += 1.0
    t *= x
    t *= _SQRT_2_OVER_PI
    np.tanh(t, out=t)
    # y = 0.5 x (1 + t)
    np.add(t, 1.0, out=y)
    y *= x
    y *= 0.5
    return y, t


def gelu_backward(
    dout: np.ndarray,
    x: np.ndarray,
    t: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """d/dx of tanh-GELU given the cached tanh value ``t``."""
    # y = 0.5 x (1 + tanh(u)), u = c1 (x + c2 x^3)
    # dy/dx = 0.5 (1 + t) + 0.5 x (1 - t^2) c1 (1 + 3 c2 x^2)
    g = out if out is not None else np.empty_like(x)
    tmp = scratch if scratch is not None else np.empty_like(x)
    # g = du = c1 (1 + 3 c2 x^2)
    np.multiply(x, x, out=g)
    g *= 3.0 * _GELU_C
    g += 1.0
    g *= _SQRT_2_OVER_PI
    # tmp = 0.5 x (1 - t^2) * du
    np.multiply(t, t, out=tmp)
    np.subtract(1.0, tmp, out=tmp)
    tmp *= x
    tmp *= 0.5
    tmp *= g
    # g = 0.5 (1 + t) + tmp, then scale by dout
    np.add(t, 1.0, out=g)
    g *= 0.5
    g += tmp
    g *= dout
    return g


def softmax(
    x: np.ndarray, axis: int = -1, out: np.ndarray | None = None
) -> np.ndarray:
    """Numerically stable softmax along ``axis`` (in place when ``out is x``)."""
    y = out if out is not None else np.empty_like(x)
    mx = x.max(axis=axis, keepdims=True)
    np.subtract(x, mx, out=y)
    np.exp(y, out=y)
    y /= y.sum(axis=axis, keepdims=True)
    return y


def softmax_backward(
    dout: np.ndarray,
    y: np.ndarray,
    axis: int = -1,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Backward of softmax given its output ``y`` (in place when ``out is dout``)."""
    dx = out if out is not None else np.empty_like(y)
    if axis in (-1, y.ndim - 1):
        # Single-pass reduction: no (dout * y)-sized temporary.
        s = np.einsum("...i,...i->...", dout, y)[..., None]
    else:
        s = (dout * y).sum(axis=axis, keepdims=True)
    np.subtract(dout, s, out=dx)
    dx *= y
    return dx


def layernorm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-6,
    out: np.ndarray | None = None,
    xhat_out: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple]:
    """LayerNorm over the last axis. Returns ``(y, cache)``.

    ``xhat_out``, when given, receives the normalized-input cache that
    backward consumes (it must stay intact until then).
    """
    xhat = xhat_out if xhat_out is not None else np.empty_like(x)
    y = out if out is not None else np.empty_like(x)
    mu = x.mean(axis=-1, keepdims=True)
    np.subtract(x, mu, out=xhat)  # xc
    np.multiply(xhat, xhat, out=y)  # y as scratch: xc^2
    var = y.mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat *= inv_std
    np.multiply(xhat, gamma, out=y)
    y += beta
    return y, (xhat, inv_std)


def layernorm_backward(
    dout: np.ndarray,
    gamma: np.ndarray,
    cache: tuple,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of layernorm. Returns ``(dx, dgamma, dbeta)``."""
    xhat, inv_std = cache
    dxhat = scratch if scratch is not None else np.empty_like(dout)
    dx = out if out is not None else np.empty_like(dout)
    np.multiply(dout, gamma, out=dxhat)
    # dx = (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat)) * inv_std
    np.multiply(dxhat, xhat, out=dx)  # dx as scratch: dxhat * xhat
    m2 = dx.mean(axis=-1, keepdims=True)
    m1 = dxhat.mean(axis=-1, keepdims=True)
    np.multiply(xhat, m2, out=dx)
    np.subtract(dxhat, dx, out=dx)
    dx -= m1
    dx *= inv_std
    # Parameter gradients; dxhat is dead now, reuse it for dout * xhat.
    reduce_axes = tuple(range(dout.ndim - 1))
    np.multiply(dout, xhat, out=dxhat)
    dgamma = dxhat.sum(axis=reduce_axes)
    dbeta = dout.sum(axis=reduce_axes)
    return dx, dgamma, dbeta
