"""Stateless numeric primitives with paired backward functions.

Each ``*_backward`` consumes the quantities its forward returned (avoiding
recomputation, per the optimization guides: cache instead of recompute,
operate in place where safe).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gelu",
    "gelu_backward",
    "softmax",
    "softmax_backward",
    "layernorm",
    "layernorm_backward",
]

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)
_GELU_C = 0.044715


def gelu(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Tanh-approximated GELU (the variant in the original ViT/MAE code).

    Returns ``(y, cache)`` where cache holds the inner tanh for backward.
    """
    inner = _SQRT_2_OVER_PI * (x + _GELU_C * x**3)
    t = np.tanh(inner)
    y = 0.5 * x * (1.0 + t)
    return y, t


def gelu_backward(dout: np.ndarray, x: np.ndarray, t: np.ndarray) -> np.ndarray:
    """d/dx of tanh-GELU given the cached tanh value ``t``."""
    # y = 0.5 x (1 + tanh(u)), u = c1 (x + c2 x^3)
    # dy/dx = 0.5 (1 + t) + 0.5 x (1 - t^2) c1 (1 + 3 c2 x^2)
    du = _SQRT_2_OVER_PI * (1.0 + 3.0 * _GELU_C * x * x)
    return dout * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_backward(dout: np.ndarray, y: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward of softmax given its output ``y``."""
    return y * (dout - (dout * y).sum(axis=axis, keepdims=True))


def layernorm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-6
) -> tuple[np.ndarray, tuple]:
    """LayerNorm over the last axis. Returns ``(y, cache)``."""
    mu = x.mean(axis=-1, keepdims=True)
    xc = x - mu
    var = (xc * xc).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = xc * inv_std
    y = xhat * gamma + beta
    return y, (xhat, inv_std)


def layernorm_backward(
    dout: np.ndarray, gamma: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of layernorm. Returns ``(dx, dgamma, dbeta)``."""
    xhat, inv_std = cache
    d = xhat.shape[-1]
    # Reduce over all leading axes for the parameter gradients.
    reduce_axes = tuple(range(dout.ndim - 1))
    dgamma = (dout * xhat).sum(axis=reduce_axes)
    dbeta = dout.sum(axis=reduce_axes)
    dxhat = dout * gamma
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * inv_std
    # Silence the unused-variable linter for d while documenting intent:
    # the mean terms above already divide by d via .mean().
    del d
    return dx, dgamma, dbeta
