"""Fixed 2-D sine-cosine position embeddings (as in the official MAE code).

These are buffers, not parameters: the paper's implementation follows He
et al.'s MAE, which freezes sin-cos embeddings for both encoder and
decoder. ``repro.core.config.count_vit_params`` relies on this.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sincos_1d", "sincos_2d"]


def sincos_1d(dim: int, positions: np.ndarray) -> np.ndarray:
    """1-D sin-cos embedding of ``positions`` into ``dim`` channels."""
    if dim % 2 != 0:
        raise ValueError(f"embedding dim must be even, got {dim}")
    omega = np.arange(dim // 2, dtype=np.float64) / (dim / 2.0)
    omega = 1.0 / 10000.0**omega
    out = positions.reshape(-1).astype(np.float64)[:, None] * omega[None, :]
    return np.concatenate([np.sin(out), np.cos(out)], axis=1)


def sincos_2d(dim: int, grid: int, cls_token: bool = True) -> np.ndarray:
    """2-D sin-cos embedding for a ``grid x grid`` patch lattice.

    Returns shape ``(grid*grid [+1], dim)``; the optional class-token row
    is all zeros (position-free), matching the MAE reference code.
    """
    if dim % 4 != 0:
        raise ValueError(f"2-D sin-cos embedding needs dim % 4 == 0, got {dim}")
    if grid <= 0:
        raise ValueError(f"grid must be positive, got {grid}")
    coords = np.arange(grid, dtype=np.float64)
    gy, gx = np.meshgrid(coords, coords, indexing="ij")
    emb_h = sincos_1d(dim // 2, gy)
    emb_w = sincos_1d(dim // 2, gx)
    emb = np.concatenate([emb_h, emb_w], axis=1)
    if cls_token:
        emb = np.concatenate([np.zeros((1, dim), dtype=np.float64), emb], axis=0)
    return emb
