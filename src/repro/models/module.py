"""Parameter and Module base classes.

A :class:`Parameter` owns a data array and a same-shaped gradient
accumulator. ``data`` may be *reassigned* to a view into an external flat
buffer — this is how the FSDP engine materializes all-gathered parameters
without copying (NumPy slicing yields views, so an optimizer writing the
flat buffer updates the module in place).

A :class:`Module` registers parameters and sub-modules automatically on
attribute assignment (like ``torch.nn.Module``) and exposes them in a
deterministic depth-first order, which the sharding layer relies on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "DEFAULT_DTYPE"]

#: Library-wide default float dtype. float64 keeps the cross-strategy
#: numerical-equivalence guarantees tight; pass float32 for speed.
DEFAULT_DTYPE = np.float64


class Parameter:
    """A trainable tensor with a gradient accumulator."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Array dtype."""
        return self.data.dtype

    def zero_grad(self) -> None:
        """Zero this parameter's gradient in place."""
        self.grad[...] = 0.0

    def accumulate(self, g: np.ndarray) -> None:
        """Add an incoming gradient contribution (broadcast-checked)."""
        if g.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {g.shape} does not match parameter "
                f"{self.name or '<unnamed>'} shape {self.data.shape}"
            )
        self.grad += g

    def __repr__(self) -> str:
        return f"Parameter({self.name or '<unnamed>'}, shape={self.data.shape})"


class Module:
    """Base class for layers with explicit forward/backward.

    Subclasses implement ``forward(*inputs)`` (caching what backward
    needs) and ``backward(dout)`` (returning the gradient with respect to
    the forward input and accumulating parameter gradients).
    """

    def __init__(self):
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_workspace", None)
        object.__setattr__(self, "_gemm_pool", None)
        object.__setattr__(self, "_tp_ctx", None)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._params[name] = value
            if not value.name:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Depth-first (registration-order) traversal of all parameters."""
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters in deterministic depth-first order."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Depth-first iterator over self and submodules."""
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def n_params(self) -> int:
        """Total parameter count of the module tree."""
        return sum(p.size for p in self.parameters())

    # -- state -----------------------------------------------------------

    def zero_grad(self) -> None:
        """Zero every parameter gradient."""
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively; returns self."""
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively; returns self."""
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of all parameters keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values by dotted name (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            src = np.asarray(state[name])
            if src.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {src.shape} vs {p.data.shape}"
                )
            p.data[...] = src

    # -- scratch buffers -----------------------------------------------------

    def use_workspace(self, ws) -> "Module":
        """Attach (or detach, with ``None``) a scratch-buffer pool.

        Propagates recursively so every layer in the tree routes its
        hot-path temporaries through the same
        :class:`~repro.models.workspace.Workspace`. Returns self.
        """
        for m in self.modules():
            object.__setattr__(m, "_workspace", ws)
        return self

    @property
    def workspace(self):
        """The attached :class:`Workspace`, or ``None``."""
        return self._workspace

    def _buf(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialized scratch buffer owned by this module.

        Pool-backed (and therefore reused across steps) when a workspace
        is attached; a fresh ``np.empty`` otherwise. Contents must be
        fully overwritten before being read.
        """
        ws = self._workspace
        if ws is None:
            return np.empty(shape, dtype=dtype)
        return ws.request((id(self), tag), shape, np.dtype(dtype))

    # -- tensor parallelism --------------------------------------------------

    def use_tensor_parallel(self, ctx) -> "Module":
        """Attach (or detach, with ``None``) a tensor-parallel context.

        Propagates recursively, like :meth:`use_workspace`. Layers
        flagged ``tp_shard = True`` route their flagged GEMM outputs
        (and input gradients) through the
        :class:`~repro.mesh.tp.TPContext`'s load-bearing all-gather;
        with no context attached (the default) the numerics are
        untouched. Returns self.
        """
        for m in self.modules():
            object.__setattr__(m, "_tp_ctx", ctx)
        return self

    @property
    def tensor_parallel(self):
        """The attached :class:`~repro.mesh.tp.TPContext`, or ``None``."""
        return self._tp_ctx

    # -- intra-op threading --------------------------------------------------

    def use_gemm_pool(self, pool) -> "Module":
        """Attach (or detach, with ``None``) an intra-op GEMM thread pool.

        Propagates recursively, like :meth:`use_workspace`, so every
        layer's large matmuls tile over the same
        :class:`~repro.backend.threads.GemmPool`. Thread count is part
        of the numerical configuration: a fixed count is deterministic
        and backend-independent, but different counts may differ at the
        ulp level (see the determinism contract in
        :mod:`repro.backend.threads`). Returns self.
        """
        for m in self.modules():
            object.__setattr__(m, "_gemm_pool", pool)
        return self

    @property
    def gemm_pool(self):
        """The attached :class:`GemmPool`, or ``None``."""
        return self._gemm_pool

    def _matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``np.matmul(a, b, out=out)``, tiled over the pool when attached."""
        pool = self._gemm_pool
        if pool is None:
            return np.matmul(a, b, out=out)
        return pool.matmul(a, b, out)

    # -- activation caches ---------------------------------------------------

    def _clear_cache(self) -> None:
        """Drop this module's own cached activations (subclass hook)."""

    def release_caches(self) -> None:
        """Recursively drop cached activations (activation checkpointing)."""
        for m in self.modules():
            m._clear_cache()

    # -- call protocol -----------------------------------------------------

    def forward(self, *args, **kwargs):
        """Compute outputs (subclass responsibility)."""
        raise NotImplementedError

    def backward(self, dout):
        """Backpropagate (subclass responsibility)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
