"""Multi-head self-attention with a hand-derived backward pass.

Two implementations live side by side:

- the **fused** path (default): head split/merge are pure strided views
  of the ``(B, N, 3W)`` qkv projection (zero copies), every contraction
  is a ``matmul``/``einsum`` with ``out=`` into workspace buffers, the
  softmax and its backward run in place, and the 1/sqrt(d) scale is
  folded into ``q`` so no ``(B, H, N, N)``-sized scaling pass exists.
  The backward builds ``dqkv`` directly inside one preallocated
  ``(B, N, 3W)`` buffer instead of concatenating per-head gradients.
  Only two tensors are cached (``qkv`` and ``attn``) — q/k/v are
  recovered as views, halving peak activation memory vs. caching the
  split heads.
- the **naive** path (``fused=False``): the original textbook
  implementation with explicit ``_split_heads``/``_merge_heads``
  copies, kept as the numerical oracle and the benchmark baseline
  (see :mod:`repro.models.reference` and
  ``benchmarks/bench_hotpath.py``).

Input/output shape ``(B, N, W)``. The attention matrix is materialized
(``(B, H, N, N)``) — fine at the proxy scales this substrate trains; the
*performance model* of the full-size variants accounts for the same
matmuls analytically.
"""

from __future__ import annotations

import numpy as np

from repro.models import reference as R
from repro.models.layers import Linear
from repro.models.module import DEFAULT_DTYPE, Module

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard ViT attention: fused qkv projection, softmax, output proj."""

    def __init__(
        self,
        width: int,
        heads: int,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
        fused: bool = True,
    ):
        super().__init__()
        if width % heads != 0:
            raise ValueError(f"width {width} not divisible by heads {heads}")
        self.width = width
        self.heads = heads
        self.head_dim = width // heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.fused = fused
        rng = rng if rng is not None else np.random.default_rng(0)
        # tp_shard: qkv is the column-parallel half of the megatron pair
        # (per-head column blocks), proj the row-parallel half.
        self.qkv = Linear(width, 3 * width, rng=rng, dtype=dtype, tp_shard=True)
        self.proj = Linear(width, width, rng=rng, dtype=dtype, tp_shard=True)
        self._cache = None

    # -- head reshaping (naive path only; the fused path uses views) -------

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, N, W) -> (B, H, N, Dh)."""
        b, n, _ = x.shape
        return x.reshape(b, n, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, H, N, Dh) -> (B, N, W)."""
        b, h, n, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, n, h * d)

    def _qkv_views(
        self, qkv: np.ndarray, b: int, n: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """q/k/v as (B, H, N, Dh) strided views into the (B, N, 3W) buffer."""
        q5 = qkv.reshape(b, n, 3, self.heads, self.head_dim)
        return (
            q5[:, :, 0].transpose(0, 2, 1, 3),
            q5[:, :, 1].transpose(0, 2, 1, 3),
            q5[:, :, 2].transpose(0, 2, 1, 3),
        )

    # -- forward -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Attention over ``(B, N, W)`` tokens."""
        b, n, w = x.shape
        if w != self.width:
            raise ValueError(f"expected width {self.width}, got {w}")
        if not self.fused:
            return self._forward_naive(x)
        h = self.heads
        qkv = self.qkv(x)  # (B, N, 3W)
        q, k, v = self._qkv_views(qkv, b, n)
        # Fold the 1/sqrt(d) scale into q once (a (B, N, W)-sized pass)
        # instead of scaling the (B, H, N, N) score matrix.
        qkv.reshape(b, n, 3, w)[:, :, 0] *= self.scale
        scores = self._buf("scores", (b, h, n, n), qkv.dtype)
        self._matmul(q, k.transpose(0, 1, 3, 2), scores)
        # In-place softmax over the last axis.
        red = self._buf("red", (b, h, n, 1), qkv.dtype)
        np.max(scores, axis=-1, keepdims=True, out=red)
        np.subtract(scores, red, out=scores)
        np.exp(scores, out=scores)
        np.sum(scores, axis=-1, keepdims=True, out=red)
        scores /= red
        attn = scores
        # Context lands pre-merged: matmul writes through the transposed
        # view so ctx is (B, N, W) without a merge copy.
        ctx = self._buf("ctx", (b, n, h, self.head_dim), qkv.dtype)
        self._matmul(attn, v, ctx.transpose(0, 2, 1, 3))
        out = self.proj(ctx.reshape(b, n, w))
        self._cache = (qkv, attn, b, n)
        return out

    def _forward_naive(self, x: np.ndarray) -> np.ndarray:
        """Original attention forward; caches q/k/v/attn (the oracle path)."""
        qkv = R.linear_forward(self.qkv.weight.data, self.qkv.bias.data, x)
        q, k, v = (self._split_heads(t) for t in np.split(qkv, 3, axis=-1))
        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale  # (B, H, N, N)
        attn = R.softmax(scores, axis=-1)
        ctx = attn @ v  # (B, H, N, Dh)
        merged = self._merge_heads(ctx)
        out = R.linear_forward(self.proj.weight.data, self.proj.bias.data, merged)
        self._cache = (x, merged, q, k, v, attn)
        return out

    # -- backward ----------------------------------------------------------

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Hand-derived attention backward; returns d(input)."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if not self.fused:
            return self._backward_naive(dout)
        qkv, attn, b, n = self._cache
        self._cache = None
        h, d, w = self.heads, self.head_dim, self.width
        # Note: q below is already scaled by 1/sqrt(d) (folded in forward).
        qs, k, v = self._qkv_views(qkv, b, n)
        dctx = self.proj.backward(dout)  # (B, N, W)
        dctx4 = dctx.reshape(b, n, h, d).transpose(0, 2, 1, 3)
        dattn = self._buf("dattn", (b, h, n, n), dout.dtype)
        self._matmul(dctx4, v.transpose(0, 1, 3, 2), dattn)
        # dq/dk/dv are written straight into one (B, N, 3W) buffer via
        # transposed views — no per-head concatenation.
        dqkv = self._buf("dqkv", (b, n, 3 * w), dout.dtype)
        dq5 = dqkv.reshape(b, n, 3, h, d)
        self._matmul(
            attn.transpose(0, 1, 3, 2), dctx4,
            dq5[:, :, 2].transpose(0, 2, 1, 3),
        )
        # In-place softmax backward: dscores = attn * (dattn - rowsum).
        red = self._buf("dred", (b, h, n, 1), dout.dtype)
        np.einsum("bhnm,bhnm->bhn", dattn, attn, out=red[..., 0])
        np.subtract(dattn, red, out=dattn)
        np.multiply(dattn, attn, out=dattn)
        # dq picks up the folded scale explicitly; dk inherits it from qs.
        self._matmul(dattn, k, dq5[:, :, 0].transpose(0, 2, 1, 3))
        dqkv.reshape(b, n, 3, w)[:, :, 0] *= self.scale
        self._matmul(
            dattn.transpose(0, 1, 3, 2), qs,
            dq5[:, :, 1].transpose(0, 2, 1, 3),
        )
        return self.qkv.backward(dqkv)

    def _backward_naive(self, dout: np.ndarray) -> np.ndarray:
        """Original attention backward (the oracle path)."""
        x, merged, q, k, v, attn = self._cache
        self._cache = None
        dm, dwp, dbp = R.linear_backward(self.proj.weight.data, merged, dout)
        self.proj.weight.accumulate(dwp)
        self.proj.bias.accumulate(dbp)
        dctx = self._split_heads(dm)  # (B, H, N, Dh)
        dattn = dctx @ v.transpose(0, 1, 3, 2)  # (B, H, N, N)
        dv = attn.transpose(0, 1, 3, 2) @ dctx  # (B, H, N, Dh)
        dscores = R.softmax_backward(dattn, attn) * self.scale
        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q
        dqkv = np.concatenate(
            [self._merge_heads(t) for t in (dq, dk, dv)], axis=-1
        )
        dx, dwqkv, dbqkv = R.linear_backward(self.qkv.weight.data, x, dqkv)
        self.qkv.weight.accumulate(dwqkv)
        self.qkv.bias.accumulate(dbqkv)
        return dx

    def _clear_cache(self) -> None:
        self._cache = None
