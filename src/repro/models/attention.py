"""Multi-head self-attention with a hand-derived backward pass."""

from __future__ import annotations

import numpy as np

from repro.models import functional as F
from repro.models.layers import Linear
from repro.models.module import DEFAULT_DTYPE, Module

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard ViT attention: fused qkv projection, softmax, output proj.

    Input/output shape ``(B, N, W)``. The attention matrix is materialized
    (``(B, H, N, N)``) — fine at the proxy scales this substrate trains;
    the *performance model* of the full-size variants accounts for the
    same matmuls analytically.
    """

    def __init__(
        self,
        width: int,
        heads: int,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
    ):
        super().__init__()
        if width % heads != 0:
            raise ValueError(f"width {width} not divisible by heads {heads}")
        self.width = width
        self.heads = heads
        self.head_dim = width // heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.qkv = Linear(width, 3 * width, rng=rng, dtype=dtype)
        self.proj = Linear(width, width, rng=rng, dtype=dtype)
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, N, W) -> (B, H, N, Dh)."""
        b, n, _ = x.shape
        return x.reshape(b, n, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, H, N, Dh) -> (B, N, W)."""
        b, h, n, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, n, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Attention over ``(B, N, W)`` tokens; caches q/k/v/attn."""
        b, n, w = x.shape
        if w != self.width:
            raise ValueError(f"expected width {self.width}, got {w}")
        qkv = self.qkv(x)  # (B, N, 3W)
        q, k, v = (self._split_heads(t) for t in np.split(qkv, 3, axis=-1))
        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale  # (B, H, N, N)
        attn = F.softmax(scores, axis=-1)
        ctx = attn @ v  # (B, H, N, Dh)
        out = self.proj(self._merge_heads(ctx))
        self._cache = (q, k, v, attn)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Hand-derived attention backward; returns d(input)."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        q, k, v, attn = self._cache
        self._cache = None
        dctx = self._split_heads(self.proj.backward(dout))  # (B, H, N, Dh)
        dattn = dctx @ v.transpose(0, 1, 3, 2)  # (B, H, N, N)
        dv = attn.transpose(0, 1, 3, 2) @ dctx  # (B, H, N, Dh)
        dscores = F.softmax_backward(dattn, attn) * self.scale
        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q
        dqkv = np.concatenate(
            [self._merge_heads(t) for t in (dq, dk, dv)], axis=-1
        )
        return self.qkv.backward(dqkv)

    def _clear_cache(self) -> None:
        self._cache = None
