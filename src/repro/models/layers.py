"""Core layers: Linear, LayerNorm, GELU, Dropout, MLP.

Each layer's ``forward`` caches exactly what its hand-derived ``backward``
needs; ``backward`` accumulates parameter gradients and returns the input
gradient. Batch (leading) dimensions are arbitrary: every layer operates
on the trailing feature axis.

Hot-path discipline: all large results are produced with ``out=`` into
buffers from :meth:`Module._buf`, so attaching a
:class:`~repro.models.workspace.Workspace` (see
:meth:`Module.use_workspace`) makes the steady-state step allocation-free.
Matmuls flatten leading axes first: one ``(B·N, in) @ (in, out)`` GEMM is
substantially faster than a stacked batch of ``(N, in)`` GEMMs. The
original allocating implementations survive as the oracle in
:mod:`repro.models.reference`.
"""

from __future__ import annotations

import numpy as np

from repro.models import functional as F
from repro.models import init
from repro.models.module import DEFAULT_DTYPE, Module, Parameter

__all__ = ["Linear", "LayerNorm", "GELU", "Dropout", "MLP"]


class Linear(Module):
    """Affine map on the trailing axis: ``y = x @ W + b``.

    Weight layout is ``(in_features, out_features)`` so the forward matmul
    runs on contiguous operands without transposition (cache-friendly per
    the optimization guides).

    Tensor parallelism: layers constructed with ``tp_shard=True`` (the
    attention qkv/proj and MLP fc1/fc2 GEMMs) route their forward output
    and backward input-gradient through the attached
    :class:`~repro.mesh.tp.TPContext`'s load-bearing column-shard
    all-gather (see :mod:`repro.mesh.tp`); dW/db stay sharded by
    construction on the tp axis, so no gradient collective is needed.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        bias: bool = True,
        dtype=DEFAULT_DTYPE,
        tp_shard: bool = False,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.tp_shard = tp_shard
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(
            init.xavier_uniform(rng, in_features, out_features, dtype=dtype)
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(init.zeros(out_features, dtype=dtype))
        self._x2: np.ndarray | None = None
        self._lead: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``x @ W + b`` on the trailing axis; caches the flattened input."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected trailing dim {self.in_features}, got {x.shape}"
            )
        # One big GEMM over the flattened leading axes. reshape copies
        # only when x is a non-contiguous view (and backward reuses the
        # cached 2-D array either way).
        x2 = x.reshape(-1, self.in_features)
        self._x2 = x2
        self._lead = x.shape[:-1]
        res_dtype = np.result_type(x.dtype, self.weight.data.dtype)
        y = self._buf("y", x.shape[:-1] + (self.out_features,), res_dtype)
        y2 = y.reshape(-1, self.out_features)
        self._matmul(x2, self.weight.data, y2)
        ctx = self._tp_ctx
        if ctx is not None and self.tp_shard:
            # Column-parallel output: each tp rank owns a column block;
            # the gather reassembles the full activation bit-exactly.
            ctx.reassemble(y2)
        if self.has_bias:
            y += self.bias.data
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Accumulate dW/db; return ``dout @ W.T``."""
        if self._x2 is None:
            raise RuntimeError("backward called before forward")
        x2 = self._x2
        d2 = dout.reshape(-1, self.out_features)
        gw = self._buf("gw", self.weight.shape, self.weight.dtype)
        self._matmul(x2.T, d2, gw)
        self.weight.accumulate(gw)
        if self.has_bias:
            gb = self._buf("gb", self.bias.shape, self.bias.dtype)
            d2.sum(axis=0, out=gb)
            self.bias.accumulate(gb)
        dx = self._buf(
            "dx", self._lead + (self.in_features,), np.result_type(d2, x2)
        )
        dx2 = dx.reshape(-1, self.in_features)
        self._matmul(d2, self.weight.data.T, dx2)
        ctx = self._tp_ctx
        if ctx is not None and self.tp_shard:
            # Row-parallel backward: each tp rank contributes a column
            # block of dx; the gather mirrors the forward reassembly.
            ctx.reassemble(dx2)
        self._x2 = None
        self._lead = None
        return dx

    def _clear_cache(self) -> None:
        self._x2 = None
        self._lead = None


class LayerNorm(Module):
    """LayerNorm over the trailing axis with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-6, dtype=DEFAULT_DTYPE):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones(dim, dtype=dtype))
        self.beta = Parameter(init.zeros(dim, dtype=dtype))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Normalize the trailing axis and apply the affine."""
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected trailing dim {self.dim}, got {x.shape}")
        res_dtype = np.result_type(x.dtype, self.gamma.data.dtype)
        y = self._buf("y", x.shape, res_dtype)
        xhat = self._buf("xhat", x.shape, res_dtype)
        y, self._cache = F.layernorm(
            x, self.gamma.data, self.beta.data, self.eps, out=y, xhat_out=xhat
        )
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """LayerNorm backward; accumulates dgamma/dbeta."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        dx = self._buf("dx", dout.shape, dout.dtype)
        scratch = self._buf("dxhat", dout.shape, dout.dtype)
        dx, dgamma, dbeta = F.layernorm_backward(
            dout, self.gamma.data, self._cache, out=dx, scratch=scratch
        )
        self.gamma.accumulate(dgamma)
        self.beta.accumulate(dbeta)
        self._cache = None
        return dx

    def _clear_cache(self) -> None:
        self._cache = None


class GELU(Module):
    """Tanh-approximated GELU activation."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Tanh-GELU; caches input and inner tanh."""
        y = self._buf("y", x.shape, x.dtype)
        t = self._buf("t", x.shape, x.dtype)
        y, t = F.gelu(x, out=y, t_out=t)
        self._cache = (x, t)
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """GELU backward from the cached tanh."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, t = self._cache
        self._cache = None
        dx = self._buf("dx", x.shape, x.dtype)
        scratch = self._buf("scratch", x.shape, x.dtype)
        return F.gelu_backward(dout, x, t, out=dx, scratch=scratch)

    def _clear_cache(self) -> None:
        self._cache = None


class Dropout(Module):
    """Inverted dropout. Identity when ``p == 0`` or in eval mode.

    The mask RNG is supplied per call (or at construction) so distributed
    engines can make dropout a function of the *sample*, keeping sharded
    and unsharded training bit-identical.
    """

    def __init__(self, p: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Apply inverted dropout (identity when p=0 or eval)."""
        if self.p == 0.0 or not self.training:
            self._mask = None
            return x
        gen = rng or self.rng
        if gen is None:
            raise RuntimeError("Dropout with p > 0 requires an RNG")
        keep = 1.0 - self.p
        self._mask = (gen.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Propagate gradients through the kept units only."""
        if self._mask is None:
            return dout
        mask, self._mask = self._mask, None
        return dout * mask

    def _clear_cache(self) -> None:
        self._mask = None


class MLP(Module):
    """Transformer feed-forward: Linear -> GELU -> Linear."""

    def __init__(
        self,
        width: int,
        hidden: int,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.fc1 = Linear(width, hidden, rng=rng, dtype=dtype, tp_shard=True)
        self.act = GELU()
        self.fc2 = Linear(hidden, width, rng=rng, dtype=dtype, tp_shard=True)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """fc2(gelu(fc1(x)))."""
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Chain backward through fc2, GELU, fc1."""
        return self.fc1.backward(self.act.backward(self.fc2.backward(dout)))
