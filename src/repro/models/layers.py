"""Core layers: Linear, LayerNorm, GELU, Dropout, MLP.

Each layer's ``forward`` caches exactly what its hand-derived ``backward``
needs; ``backward`` accumulates parameter gradients and returns the input
gradient. Batch (leading) dimensions are arbitrary: every layer operates
on the trailing feature axis.
"""

from __future__ import annotations

import numpy as np

from repro.models import functional as F
from repro.models import init
from repro.models.module import DEFAULT_DTYPE, Module, Parameter

__all__ = ["Linear", "LayerNorm", "GELU", "Dropout", "MLP"]


class Linear(Module):
    """Affine map on the trailing axis: ``y = x @ W + b``.

    Weight layout is ``(in_features, out_features)`` so the forward matmul
    runs on contiguous operands without transposition (cache-friendly per
    the optimization guides).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        bias: bool = True,
        dtype=DEFAULT_DTYPE,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(
            init.xavier_uniform(rng, in_features, out_features, dtype=dtype)
        )
        self.has_bias = bias
        if bias:
            self.bias = Parameter(init.zeros(out_features, dtype=dtype))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``x @ W + b`` on the trailing axis; caches ``x``."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected trailing dim {self.in_features}, got {x.shape}"
            )
        self._x = x
        y = x @ self.weight.data
        if self.has_bias:
            y += self.bias.data
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Accumulate dW/db; return ``dout @ W.T``."""
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        # Flatten leading dims to one batch axis for the weight gradient.
        x2 = x.reshape(-1, self.in_features)
        d2 = dout.reshape(-1, self.out_features)
        self.weight.accumulate(x2.T @ d2)
        if self.has_bias:
            self.bias.accumulate(d2.sum(axis=0))
        dx = dout @ self.weight.data.T
        self._x = None
        return dx

    def _clear_cache(self) -> None:
        self._x = None


class LayerNorm(Module):
    """LayerNorm over the trailing axis with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-6, dtype=DEFAULT_DTYPE):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones(dim, dtype=dtype))
        self.beta = Parameter(init.zeros(dim, dtype=dtype))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Normalize the trailing axis and apply the affine."""
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected trailing dim {self.dim}, got {x.shape}")
        y, self._cache = F.layernorm(x, self.gamma.data, self.beta.data, self.eps)
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """LayerNorm backward; accumulates dgamma/dbeta."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        dx, dgamma, dbeta = F.layernorm_backward(dout, self.gamma.data, self._cache)
        self.gamma.accumulate(dgamma)
        self.beta.accumulate(dbeta)
        self._cache = None
        return dx

    def _clear_cache(self) -> None:
        self._cache = None


class GELU(Module):
    """Tanh-approximated GELU activation."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Tanh-GELU; caches input and inner tanh."""
        y, t = F.gelu(x)
        self._cache = (x, t)
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """GELU backward from the cached tanh."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, t = self._cache
        self._cache = None
        return F.gelu_backward(dout, x, t)

    def _clear_cache(self) -> None:
        self._cache = None


class Dropout(Module):
    """Inverted dropout. Identity when ``p == 0`` or in eval mode.

    The mask RNG is supplied per call (or at construction) so distributed
    engines can make dropout a function of the *sample*, keeping sharded
    and unsharded training bit-identical.
    """

    def __init__(self, p: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Apply inverted dropout (identity when p=0 or eval)."""
        if self.p == 0.0 or not self.training:
            self._mask = None
            return x
        gen = rng or self.rng
        if gen is None:
            raise RuntimeError("Dropout with p > 0 requires an RNG")
        keep = 1.0 - self.p
        self._mask = (gen.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Propagate gradients through the kept units only."""
        if self._mask is None:
            return dout
        mask, self._mask = self._mask, None
        return dout * mask

    def _clear_cache(self) -> None:
        self._mask = None


class MLP(Module):
    """Transformer feed-forward: Linear -> GELU -> Linear."""

    def __init__(
        self,
        width: int,
        hidden: int,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.fc1 = Linear(width, hidden, rng=rng, dtype=dtype)
        self.act = GELU()
        self.fc2 = Linear(hidden, width, rng=rng, dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """fc2(gelu(fc1(x)))."""
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Chain backward through fc2, GELU, fc1."""
        return self.fc1.backward(self.act.backward(self.fc2.backward(dout)))
