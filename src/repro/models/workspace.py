"""Scratch-buffer pool for the steady-state training hot path.

A :class:`Workspace` hands out reusable ndarray buffers keyed by
``(owner, tag)``. The first request for a key allocates; subsequent
requests with the same shape/dtype return the *same* array, so a
training loop that runs the same model step after step stops allocating
its large temporaries (qkv projections, attention matrices, layer
outputs) after the first step — the CPU-substrate analogue of the
memory discipline the paper applies on Frontier.

Safety contract (why reuse is sound here):

- every layer instance appears at most once per forward/backward chain,
  so a buffer written in step *t* is only rewritten in step *t + 1*,
  after the backward pass that consumed it has finished;
- activation caches may hold workspace buffers across forward→backward
  because the owning module is the only writer of its buffers;
- a checkpointed block's recompute refills the same buffers with the
  same values before its backward reads them.

Buffers are returned **uninitialized** (``np.empty`` semantics): callers
must fully overwrite them (``out=`` kernels) before reading.

Attach a pool with :meth:`repro.models.module.Module.use_workspace`;
detach by passing ``None``. With no pool attached every request falls
back to a fresh ``np.empty``, i.e. allocation behavior — and numerics —
are unchanged.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Keyed pool of reusable scratch buffers."""

    __slots__ = ("_bufs", "hits", "misses")

    def __init__(self):
        self._bufs: dict[Hashable, np.ndarray] = {}
        #: Requests served by an existing buffer (steady state: all).
        self.hits = 0
        #: Requests that had to (re)allocate (first step / shape change).
        self.misses = 0

    def request(
        self, key: Hashable, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        """Return an uninitialized buffer for ``key``, reusing when possible.

        A shape or dtype change (e.g. the trailing short batch of an
        epoch) transparently reallocates that one buffer.
        """
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def n_buffers(self) -> int:
        """Number of live buffers in the pool."""
        return len(self._bufs)

    def nbytes(self) -> int:
        """Total bytes held by the pool."""
        return sum(b.nbytes for b in self._bufs.values())

    def clear(self) -> None:
        """Drop every buffer (and reset the hit/miss counters)."""
        self._bufs.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"Workspace({self.n_buffers()} buffers, "
            f"{self.nbytes() / 1e6:.2f} MB, "
            f"hits={self.hits}, misses={self.misses})"
        )
