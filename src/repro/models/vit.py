"""Vision Transformer encoder with optional classification head.

Follows the original ViT/MAE layout: linear patch embedding, class token,
fixed 2-D sin-cos position embeddings, pre-norm transformer blocks, final
LayerNorm. ``forward_features`` returns the class-token embedding — the
representation the paper's linear-probing experiments train on.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ViTConfig
from repro.models import init
from repro.models.blocks import TransformerBlock
from repro.models.layers import LayerNorm, Linear
from repro.models.module import DEFAULT_DTYPE, Module, Parameter
from repro.models.patch import PatchEmbed
from repro.models.posembed import sincos_2d

__all__ = ["VisionTransformer"]


class VisionTransformer(Module):
    """ViT encoder.

    Parameters
    ----------
    cfg:
        Architecture description (width/depth/mlp/heads/patch/img_size).
    n_classes:
        When given, append a linear classification head; ``forward``
        then returns logits instead of features.
    rng:
        Initialization RNG; required for reproducible experiments.
    """

    def __init__(
        self,
        cfg: ViTConfig,
        n_classes: int | None = None,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
        checkpoint: bool = False,
    ):
        super().__init__()
        self.cfg = cfg
        rng = rng if rng is not None else np.random.default_rng(0)
        self.patch_embed = PatchEmbed(
            cfg.patch, cfg.in_chans, cfg.width, rng=rng, dtype=dtype
        )
        self.cls_token = Parameter(
            init.trunc_normal(rng, (1, 1, cfg.width), dtype=dtype), name="cls_token"
        )
        # Fixed buffer (not a Parameter): sin-cos embedding incl. cls row.
        self.pos_embed = sincos_2d(cfg.width, cfg.grid, cls_token=True).astype(dtype)
        self.blocks = [
            TransformerBlock(
                cfg.width, cfg.heads, cfg.mlp, rng=rng, dtype=dtype,
                checkpoint=checkpoint,
            )
            for _ in range(cfg.depth)
        ]
        for i, blk in enumerate(self.blocks):
            setattr(self, f"block{i}", blk)
        self.norm = LayerNorm(cfg.width, dtype=dtype)
        self.head = (
            Linear(cfg.width, n_classes, rng=rng, dtype=dtype)
            if n_classes is not None
            else None
        )
        self._batch: int | None = None
        self._tokens: int | None = None

    # -- forward -----------------------------------------------------------

    def _embed(self, imgs: np.ndarray) -> np.ndarray:
        b = imgs.shape[0]
        x = self.patch_embed(imgs) + self.pos_embed[None, 1:, :]
        cls = np.broadcast_to(
            self.cls_token.data + self.pos_embed[None, :1, :], (b, 1, self.cfg.width)
        )
        x = np.concatenate([cls, x], axis=1)
        self._batch, self._tokens = b, x.shape[1]
        return x

    def forward_features(self, imgs: np.ndarray) -> np.ndarray:
        """Class-token embedding after the final LayerNorm: ``(B, W)``."""
        x = self._embed(imgs)
        for blk in self.blocks:
            x = blk(x)
        x = self.norm(x)
        # Copy: with a workspace attached, x is a pooled buffer that the
        # next forward overwrites; callers batch feature extraction.
        return x[:, 0, :].copy()

    def forward(self, imgs: np.ndarray) -> np.ndarray:
        """Logits when a head exists, else class-token features."""
        feats = self.forward_features(imgs)
        if self.head is None:
            return feats
        return self.head(feats)

    # -- backward ----------------------------------------------------------

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backprop from logits (if a head exists) or features to images."""
        if self._batch is None:
            raise RuntimeError("backward called before forward")
        dfeat = self.head.backward(dout) if self.head is not None else dout
        # Only the cls-token row received gradient.
        dx = np.zeros((self._batch, self._tokens, self.cfg.width), dtype=dfeat.dtype)
        dx[:, 0, :] = dfeat
        dx = self.norm.backward(dx)
        for blk in reversed(self.blocks):
            dx = blk.backward(dx)
        # Split cls from patch tokens.
        dcls = dx[:, :1, :]
        self.cls_token.accumulate(dcls.sum(axis=0, keepdims=True))
        dimgs = self.patch_embed.backward(dx[:, 1:, :])
        self._batch = self._tokens = None
        return dimgs
