"""From-scratch NumPy neural-network substrate (ViT + MAE).

Every layer implements an explicit, hand-derived backward pass; tests
validate each against central-difference gradients. All math is
vectorized NumPy over contiguous arrays (no per-element Python loops),
and parameter storage supports *views into flat buffers* so the FSDP
engine can materialize parameters by all-gathering into one flat array
per transformer block without copies.

Modules:

- :mod:`repro.models.module` — Parameter / Module base machinery.
- :mod:`repro.models.workspace` — scratch-buffer pool for allocation-free
  steady-state training steps (see :meth:`Module.use_workspace`).
- :mod:`repro.models.functional` — fused gelu / softmax / layernorm
  primitives with paired backward functions (``out=``-aware).
- :mod:`repro.models.reference` — the original allocating kernels, kept
  verbatim as the numerical oracle and benchmark baseline.
- :mod:`repro.models.layers` — Linear, LayerNorm, GELU, Dropout, MLP.
- :mod:`repro.models.attention` — multi-head self-attention.
- :mod:`repro.models.blocks` — pre-norm transformer encoder block.
- :mod:`repro.models.patch` — patchify / unpatchify, patch embedding.
- :mod:`repro.models.vit` — Vision Transformer encoder (+ optional head).
- :mod:`repro.models.mae` — masked autoencoder for ViT pretraining.
- :mod:`repro.models.init` — weight initialization (trunc-normal, xavier).
- :mod:`repro.models.posembed` — fixed 2-D sin-cos position embeddings.
"""

from repro.models.attention import MultiHeadSelfAttention
from repro.models.blocks import TransformerBlock
from repro.models.layers import GELU, MLP, Dropout, LayerNorm, Linear
from repro.models.mae import MaskedAutoencoder
from repro.models.module import Module, Parameter
from repro.models.patch import PatchEmbed, patchify, unpatchify
from repro.models.simclr import SimCLRModel, nt_xent
from repro.models.vit import VisionTransformer
from repro.models.workspace import Workspace

__all__ = [
    "Parameter",
    "Module",
    "Workspace",
    "Linear",
    "LayerNorm",
    "GELU",
    "Dropout",
    "MLP",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "PatchEmbed",
    "patchify",
    "unpatchify",
    "VisionTransformer",
    "MaskedAutoencoder",
    "SimCLRModel",
    "nt_xent",
]
