"""Contrastive pretraining (SimCLR-style) baseline.

The paper's Section II describes the two prevailing SSL families for
vision FMs: contrastive learning (SimCLR) and masked autoencoding (MAE),
and adopts MAE. This module implements the contrastive alternative on
the same ViT substrate so the two can be compared at proxy scale:

- a ViT encoder shared with the rest of the library;
- a 2-layer MLP projection head;
- the NT-Xent (normalized temperature-scaled cross entropy) loss over
  augmented view pairs, with a hand-derived backward pass (gradcheck'd
  like every other module).

The two views of each image are concatenated into one ``2B`` batch so a
single encoder forward/backward serves both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ViTConfig
from repro.models.layers import GELU, Linear
from repro.models.module import DEFAULT_DTYPE, Module
from repro.models.vit import VisionTransformer

__all__ = ["SimCLRModel", "SimCLROutput", "nt_xent"]


def nt_xent(
    z: np.ndarray, temperature: float = 0.2
) -> tuple[float, np.ndarray]:
    """NT-Xent loss over ``2B`` projected embeddings (views i and i+B
    are positives). Returns ``(loss, dloss/dz)``.

    ``z`` is *unnormalized*; normalization is part of the loss (and its
    backward), as in the SimCLR reference.
    """
    n = len(z)
    if n < 4 or n % 2:
        raise ValueError(f"need an even batch of >= 4 embeddings, got {n}")
    b = n // 2
    norms = np.linalg.norm(z, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("zero embedding cannot be normalized")
    zn = z / norms
    sim = (zn @ zn.T) / temperature
    np.fill_diagonal(sim, -np.inf)
    pos = np.concatenate([np.arange(b, n), np.arange(0, b)])

    shifted = sim - sim.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    probs = exps / exps.sum(axis=1, keepdims=True)
    logp = shifted - np.log(exps.sum(axis=1, keepdims=True))
    loss = -float(logp[np.arange(n), pos].mean())

    dsim = probs.copy()
    dsim[np.arange(n), pos] -= 1.0
    dsim /= n
    np.fill_diagonal(dsim, 0.0)
    dzn = (dsim + dsim.T) @ zn / temperature
    # Backward through the row normalization.
    dz = (dzn - zn * (dzn * zn).sum(axis=1, keepdims=True)) / norms
    return loss, dz


@dataclass
class SimCLROutput:
    loss: float
    embeddings: np.ndarray  # (2B, proj_dim), unnormalized


class SimCLRModel(Module):
    """ViT encoder + projection head trained with NT-Xent."""

    def __init__(
        self,
        cfg: ViTConfig,
        proj_dim: int = 32,
        proj_hidden: int | None = None,
        temperature: float = 0.2,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
    ):
        super().__init__()
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.cfg = cfg
        self.temperature = temperature
        hidden = proj_hidden if proj_hidden is not None else cfg.width
        self.encoder = VisionTransformer(cfg, rng=rng, dtype=dtype)
        self.proj1 = Linear(cfg.width, hidden, rng=rng, dtype=dtype)
        self.act = GELU()
        self.proj2 = Linear(hidden, proj_dim, rng=rng, dtype=dtype)
        self._dz: np.ndarray | None = None

    def forward(self, view_a: np.ndarray, view_b: np.ndarray) -> SimCLROutput:
        """Contrastive loss over a batch of two augmented views."""
        if view_a.shape != view_b.shape:
            raise ValueError(
                f"views must share a shape, got {view_a.shape} vs {view_b.shape}"
            )
        both = np.concatenate([view_a, view_b], axis=0)
        h = self.encoder.forward_features(both)
        z = self.proj2(self.act(self.proj1(h)))
        loss, dz = nt_xent(z, temperature=self.temperature)
        self._dz = dz
        return SimCLROutput(loss=loss, embeddings=z)

    def backward(self) -> None:
        """Backpropagate the NT-Xent gradient through head and encoder."""
        if self._dz is None:
            raise RuntimeError("backward called before forward")
        dz, self._dz = self._dz, None
        dh = self.proj1.backward(self.act.backward(self.proj2.backward(dz)))
        self.encoder.backward(dh)

    def encode_features(self, imgs: np.ndarray) -> np.ndarray:
        """Frozen features for linear probing (projection head dropped,
        as the SimCLR protocol prescribes)."""
        return self.encoder.forward_features(imgs)
