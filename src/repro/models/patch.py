"""Patchify / unpatchify and the linear patch embedding.

``patchify`` turns ``(B, C, H, W)`` images into ``(B, N, p*p*C)`` flattened
patch rows (row-major patch order, channel-last inside each patch exactly
like the MAE reference's einops rearrange). Both directions are pure
reshape/transpose — views plus one final copy, no Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.models.layers import Linear
from repro.models.module import DEFAULT_DTYPE, Module

__all__ = ["patchify", "unpatchify", "PatchEmbed"]


def patchify(imgs: np.ndarray, patch: int) -> np.ndarray:
    """(B, C, H, W) -> (B, N, patch*patch*C)."""
    b, c, h, w = imgs.shape
    if h % patch or w % patch:
        raise ValueError(f"image {h}x{w} not divisible by patch {patch}")
    gh, gw = h // patch, w // patch
    x = imgs.reshape(b, c, gh, patch, gw, patch)
    # -> (B, gh, gw, patch, patch, C), then flatten patches.
    x = x.transpose(0, 2, 4, 3, 5, 1)
    return x.reshape(b, gh * gw, patch * patch * c)


def unpatchify(patches: np.ndarray, patch: int, in_chans: int = 3) -> np.ndarray:
    """(B, N, patch*patch*C) -> (B, C, H, W); inverse of :func:`patchify`."""
    b, n, d = patches.shape
    if d != patch * patch * in_chans:
        raise ValueError(
            f"patch dim {d} != patch*patch*chans = {patch * patch * in_chans}"
        )
    g = int(round(np.sqrt(n)))
    if g * g != n:
        raise ValueError(f"patch count {n} is not a perfect square")
    x = patches.reshape(b, g, g, patch, patch, in_chans)
    x = x.transpose(0, 5, 1, 3, 2, 4)
    return x.reshape(b, in_chans, g * patch, g * patch)


class PatchEmbed(Module):
    """Patchify + linear projection to the model width."""

    def __init__(
        self,
        patch: int,
        in_chans: int,
        width: int,
        rng: np.random.Generator | None = None,
        dtype=DEFAULT_DTYPE,
    ):
        super().__init__()
        self.patch = patch
        self.in_chans = in_chans
        self.proj = Linear(patch * patch * in_chans, width, rng=rng, dtype=dtype)

    def forward(self, imgs: np.ndarray) -> np.ndarray:
        """Patchify and project to the model width."""
        return self.proj(patchify(imgs, self.patch))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backward to image space via unpatchify."""
        dpatches = self.proj.backward(dout)
        return unpatchify(dpatches, self.patch, self.in_chans)
