"""Weight initialization.

Follows the official MAE code: xavier-uniform for linear weights
(treating the weight as 2-D), zeros for biases, ones/zeros for LayerNorm,
and a 0.02-std truncated normal for class / mask tokens.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "trunc_normal", "zeros", "ones"]


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int, dtype=np.float64
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive, got ({fan_in}, {fan_out})")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(dtype)


def trunc_normal(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    std: float = 0.02,
    bound_stds: float = 2.0,
    dtype=np.float64,
) -> np.ndarray:
    """Truncated normal: resample draws outside ``bound_stds`` sigmas."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    out = rng.normal(0.0, std, size=shape)
    bound = bound_stds * std
    bad = np.abs(out) > bound
    # Vectorized rejection sampling; ~4.6% rejected per round, converges fast.
    while bad.any():
        out[bad] = rng.normal(0.0, std, size=int(bad.sum()))
        bad = np.abs(out) > bound
    return out.astype(dtype)


def zeros(shape: tuple[int, ...] | int, dtype=np.float64) -> np.ndarray:
    """Zero-initialized array."""
    return np.zeros(shape, dtype=dtype)


def ones(shape: tuple[int, ...] | int, dtype=np.float64) -> np.ndarray:
    """One-initialized array."""
    return np.ones(shape, dtype=dtype)
