"""Few-shot probing across model scales (paper future work, implemented).

The paper's conclusion proposes studying "configurations such as
few-shot learning to unveil potential properties emerging as we scale".
This experiment runs K-shot linear probes (K in {1, 2, 5, 10}) for every
proxy model on one shifted-domain dataset, asking whether the
scale-quality trend survives extreme label scarcity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import SplitDataset
from repro.eval.few_shot import FewShotResult, few_shot_probe
from repro.experiments.downstream import (
    DownstreamRecipe,
    PretrainedModel,
    pretrain_suite,
)
from repro.experiments.report import render_series
from repro.experiments.table3 import build_probe_datasets

__all__ = ["FewShotExperiment", "run_fewshot", "render_fewshot", "DEFAULT_SHOTS"]

DEFAULT_SHOTS = [1, 2, 5, 10]
DEFAULT_DATASET = "aid"


@dataclass
class FewShotExperiment:
    dataset: str
    shots: list[int]
    results: dict[str, FewShotResult]  # model name -> per-K accuracies

    def top1(self, model: str) -> list[float]:
        """Per-shot-count top-1 accuracies for ``model``."""
        return self.results[model].top1


def run_fewshot(
    suite: dict[str, PretrainedModel] | None = None,
    dataset: str = DEFAULT_DATASET,
    shots: list[int] | None = None,
    recipe: DownstreamRecipe | None = None,
    epochs: int = 20,
    seed: int = 0,
    data: SplitDataset | None = None,
) -> FewShotExperiment:
    """Run K-shot probes for every suite model on one dataset."""
    shots = shots if shots is not None else list(DEFAULT_SHOTS)
    if suite is None:
        suite = pretrain_suite(recipe)
    if data is None:
        data = build_probe_datasets(seed=seed)[dataset]
    results = {
        name: few_shot_probe(
            pm.model, data, shots=shots, epochs=epochs, seed=seed,
            model_name=pm.paper_name,
        )
        for name, pm in suite.items()
    }
    return FewShotExperiment(dataset=dataset, shots=sorted(shots), results=results)


def render_fewshot(exp: FewShotExperiment) -> str:
    """Render the few-shot experiment as a text table."""
    body = render_series(
        "shots/class",
        exp.shots,
        {m: [round(100 * v, 1) for v in r.top1] for m, r in exp.results.items()},
        title=f"Few-shot probing on [{exp.dataset}]: top-1 (%) vs shots",
    )
    return (
        f"{body}\n(extension of the paper's future-work direction: does "
        "the scale benefit survive label scarcity?)"
    )
