"""Table III — linear-probe top-1 accuracy across datasets and sizes.

Probes the MAE-pretrained proxy suite on all four dataset analogues with
the paper's protocol (LARS, base LR 0.1, no weight decay, identical
hyper-parameters everywhere), plus the paper's extra row: the Base model
pretrained 4x longer (the "400 epochs vs 100 epochs" comparison).

Expected shapes (paper Section V-C):

- top-1 improves monotonically with model scale on every dataset;
- the Base->3B gain is large (paper: >30 points; proxy scale: >12);
- Base pretrained 4x longer beats Base at 1x on every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.datasets import DATASET_SPECS, SplitDataset, build_dataset
from repro.data.transforms import normalize_images
from repro.eval.linear_probe import LinearProbeResult, linear_probe
from repro.experiments.downstream import (
    DownstreamRecipe,
    PretrainedModel,
    pretrain_suite,
)
from repro.experiments.report import render_table

__all__ = [
    "Table3Result",
    "run_table3",
    "render_table3",
    "build_probe_datasets",
    "probe_suite",
    "PROBE_EPOCHS",
]

PROBE_EPOCHS = 30
DATASETS = list(DATASET_SPECS)
LONG_PRETRAIN_FACTOR = 4  # the paper's 400-vs-100-epoch Base comparison


def build_probe_datasets(
    img_size: int = 32, seed: int = 0
) -> dict[str, SplitDataset]:
    """All four probe datasets, channel-normalized."""
    out = {}
    for name in DATASETS:
        data = build_dataset(name, img_size=img_size, seed=seed)
        data.train.images = normalize_images(data.train.images)
        data.test.images = normalize_images(data.test.images)
        out[name] = data
    return out


def probe_suite(
    suite: dict[str, PretrainedModel],
    datasets: dict[str, SplitDataset],
    epochs: int = PROBE_EPOCHS,
    seed: int = 0,
) -> dict[tuple[str, str], LinearProbeResult]:
    """Probe every (model, dataset) pair; keys are (model, dataset) names."""
    results = {}
    for model_name, pm in suite.items():
        for ds_name, data in datasets.items():
            results[(model_name, ds_name)] = linear_probe(
                pm.model,
                data,
                epochs=epochs,
                seed=seed,
                model_name=pm.paper_name,
            )
    return results


@dataclass
class Table3Result:
    probes: dict[tuple[str, str], LinearProbeResult]
    long_base: dict[tuple[str, str], LinearProbeResult]
    model_order: list[str]
    datasets: list[str]

    def top1(self, model: str, dataset: str) -> float:
        """Final probe top-1 of (model, dataset)."""
        return self.probes[(model, dataset)].final_top1

    def base_to_largest_gain(self, dataset: str) -> float:
        """Top-1 gain from the smallest to the largest model on ``dataset``."""
        return self.top1(self.model_order[-1], dataset) - self.top1(
            self.model_order[0], dataset
        )


def run_table3(
    recipe: DownstreamRecipe | None = None,
    epochs: int = PROBE_EPOCHS,
    cache_dir: str | None = None,
) -> Table3Result:
    """Pretrain/load the suite (plus the 4x-pretrained Base) and probe everything."""
    recipe = recipe if recipe is not None else DownstreamRecipe()
    kwargs = {} if cache_dir is None else {"cache_dir": cache_dir}
    suite = pretrain_suite(recipe, **kwargs)
    datasets = build_probe_datasets(img_size=recipe.img_size, seed=recipe.seed)
    probes = probe_suite(suite, datasets, epochs=epochs, seed=recipe.seed)
    # The "pretrained 4x longer" Base row.
    long_recipe = replace(
        recipe,
        steps=recipe.steps * LONG_PRETRAIN_FACTOR,
        model_names=("proxy-base",),
    )
    long_suite = pretrain_suite(long_recipe, **kwargs)
    long_probes = probe_suite(long_suite, datasets, epochs=epochs, seed=recipe.seed)
    return Table3Result(
        probes=probes,
        long_base=long_probes,
        model_order=list(recipe.model_names),
        datasets=list(datasets),
    )


def render_table3(result: Table3Result | None = None) -> str:
    """Render Table III plus the base-to-largest gains."""
    result = result if result is not None else run_table3()
    rows = []
    long_row = ["proxy-base (4x pretrain)"]
    for ds in result.datasets:
        long_row.append(round(100 * result.long_base[("proxy-base", ds)].final_top1, 2))
    rows.append(long_row)
    for model in result.model_order:
        rows.append(
            [model]
            + [round(100 * result.top1(model, ds), 2) for ds in result.datasets]
        )
    body = render_table(
        headers=["model", *result.datasets],
        rows=rows,
        title="Table III: linear-probe top-1 accuracy (%)",
        precision=2,
    )
    gains = ", ".join(
        f"{ds}=+{100 * result.base_to_largest_gain(ds):.1f}"
        for ds in result.datasets
    )
    return (
        f"{body}\nbase -> largest gain (points): {gains}\n"
        "(paper: >30-point gains from ViT-Base to ViT-3B on all datasets)"
    )
