"""Mesh perf reconciliation and Frontier-scale crossover curves.

Two halves, one discipline. First, *reconciliation*: every mesh row of
:mod:`repro.experiments.mesh_axes` is re-run and its measured per-axis
wire traffic (``RunReport.axis_bytes``/``axis_calls``) is compared
against the closed-form prediction from
:func:`repro.perf.mesh_model.predict_mesh_traffic`. SimComm is exact
data movement, so the tensor- and data-axis predictions must match the
telemetry **to the byte and to the call**; the pipeline axis is allowed
the documented :data:`PP_TOLERANCE` (the analytic model books boundary
activations off the op partition, the engine measures executed sends).

Second, *extrapolation*: once the model is reconciled at proxy scale,
the mesh-aware :class:`~repro.perf.simulator.TrainStepSimulator` sweeps
the same axis compositions out to Frontier-scale worlds the test
machine cannot reach, producing fig1/fig2-style throughput crossover
curves — which axis composition wins at which world size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import get_mae_config
from repro.core.sharding import ShardingStrategy
from repro.experiments.mesh_axes import (
    BATCH,
    CONFIGS,
    MICRO_SLOTS,
    PROXY,
    STEPS,
    run_mesh_axes,
)
from repro.experiments.report import render_table
from repro.hardware.frontier import frontier_machine
from repro.mesh.spec import MeshSpec
from repro.perf.mesh_model import predict_mesh_traffic
from repro.perf.simulator import PerfParams, TrainStepSimulator
from repro.utils.units import GIB, MIB

__all__ = [
    "AxisReconciliation",
    "CrossoverPoint",
    "PP_TOLERANCE",
    "EXACT_AXES",
    "run_mesh_reconciliation",
    "run_mesh_crossover",
    "render_mesh_crossover",
    "CROSSOVER_NODE_GRID",
    "CROSSOVER_MESHES",
]

#: Axes whose predictions must match measured telemetry exactly —
#: SimComm books exact data movement, so any drift is a bug.
EXACT_AXES = ("tp", "dp")
#: Relative tolerance on the pipeline axis (bytes and calls): the
#: analytic model derives boundary payloads from the closed-form op
#: partition while the engine measures the sends it actually executed.
PP_TOLERANCE = 0.02


@dataclass(frozen=True)
class AxisReconciliation:
    """Predicted-vs-measured traffic for one (mesh, axis) pair."""

    label: str
    axis: str
    predicted_bytes: float
    measured_bytes: int
    predicted_calls: int
    measured_calls: int
    tolerance: float

    @property
    def bytes_ok(self) -> bool:
        """Whether predicted bytes land within this axis's tolerance."""
        if self.tolerance == 0.0:
            return self.predicted_bytes == self.measured_bytes
        scale = max(abs(self.measured_bytes), 1.0)
        return abs(self.predicted_bytes - self.measured_bytes) <= self.tolerance * scale

    @property
    def calls_ok(self) -> bool:
        """Whether predicted call counts land within tolerance."""
        if self.tolerance == 0.0:
            return self.predicted_calls == self.measured_calls
        scale = max(abs(self.measured_calls), 1.0)
        return abs(self.predicted_calls - self.measured_calls) <= self.tolerance * scale

    @property
    def ok(self) -> bool:
        """Bytes and calls both reconcile."""
        return self.bytes_ok and self.calls_ok


def run_mesh_reconciliation(steps: int = STEPS) -> list[AxisReconciliation]:
    """Reconcile predictions against measured traffic for every CONFIGS row.

    Returns three rows (tp/pp/dp) per mesh configuration, in CONFIGS
    order.
    """
    measured = run_mesh_axes(steps)
    rows: list[AxisReconciliation] = []
    for (label, spec, strategy), point in zip(CONFIGS, measured):
        pred = predict_mesh_traffic(
            PROXY, spec, strategy, steps=steps, batch=BATCH, micro_slots=MICRO_SLOTS
        )
        for axis in ("tp", "pp", "dp"):
            traffic = pred.axis(axis)
            rows.append(
                AxisReconciliation(
                    label=label,
                    axis=axis,
                    predicted_bytes=traffic.bytes,
                    measured_bytes=getattr(point, f"{axis}_bytes"),
                    predicted_calls=traffic.calls,
                    measured_calls=getattr(point, f"{axis}_calls"),
                    tolerance=0.0 if axis in EXACT_AXES else PP_TOLERANCE,
                )
            )
    return rows


# -- Frontier-scale extrapolation ------------------------------------------

#: Node counts of the predicted sweep (x8 GCDs each): well past what the
#: test machine executes, into the regime the paper's figures live in.
CROSSOVER_NODE_GRID = [4, 16, 64, 256, 1024]
#: Axis compositions swept at every world size ``w`` (in GCDs). The dp
#: residual axis absorbs the rest of the world.
CROSSOVER_MESHES = [
    ("dp", lambda w: MeshSpec(dp=w)),
    ("tp8 x dp", lambda w: MeshSpec(tp=8, dp=w // 8)),
    ("pp8 x dp", lambda w: MeshSpec(pp=8, dp=w // 8, schedule="1f1b")),
    ("pp4 x tp8 x dp", lambda w: MeshSpec(pp=4, tp=8, dp=w // 32, schedule="1f1b")),
]
CROSSOVER_VARIANT = "vit-3b"
CROSSOVER_LOCAL_BATCH = 32
CROSSOVER_MICROS = 8


@dataclass(frozen=True)
class CrossoverPoint:
    """One predicted (mesh composition, world size) operating point."""

    mesh: str
    nodes: int
    world: int
    shape: str
    ips: float
    step_time_s: float
    bubble_fraction: float
    tp_comm_s: float
    pp_comm_s: float
    dp_comm_s: float
    comm_fraction: float
    memory_gib: float


def run_mesh_crossover(
    node_grid: list[int] | None = None,
) -> list[CrossoverPoint]:
    """Sweep the predicted mesh compositions across Frontier-scale worlds."""
    nodes_list = node_grid if node_grid is not None else CROSSOVER_NODE_GRID
    model = get_mae_config(CROSSOVER_VARIANT)
    points: list[CrossoverPoint] = []
    for label, build in CROSSOVER_MESHES:
        for nodes in nodes_list:
            machine = frontier_machine(nodes)
            world = machine.n_gpus
            spec = build(world)
            sim = TrainStepSimulator(
                model=model,
                machine=machine,
                strategy=ShardingStrategy.FULL_SHARD,
                params=PerfParams(
                    local_batch=CROSSOVER_LOCAL_BATCH,
                    mesh=spec,
                    pipeline_micros=CROSSOVER_MICROS,
                ),
            )
            b = sim.simulate()
            axes = b.axis_comm_seconds
            points.append(
                CrossoverPoint(
                    mesh=label,
                    nodes=nodes,
                    world=world,
                    shape=f"{spec.pp}x{spec.dp}x{spec.tp}",
                    ips=b.ips,
                    step_time_s=b.step_time_s,
                    bubble_fraction=b.bubble_fraction,
                    tp_comm_s=axes.get("tp", 0.0),
                    pp_comm_s=axes.get("pp", 0.0),
                    dp_comm_s=axes.get("dp", 0.0),
                    comm_fraction=b.comm_fraction,
                    memory_gib=b.memory.total / GIB,
                )
            )
    return points


# -- rendering -------------------------------------------------------------


def _render_reconciliation(rows: list[AxisReconciliation]) -> str:
    body = render_table(
        ["mesh", "axis", "pred MiB", "meas MiB", "pred #", "meas #", "tol", "ok"],
        [
            [
                r.label,
                r.axis,
                round(r.predicted_bytes / MIB, 6),
                round(r.measured_bytes / MIB, 6),
                r.predicted_calls,
                r.measured_calls,
                r.tolerance,
                "yes" if r.ok else "NO",
            ]
            for r in rows
        ],
        title=(
            "Predicted vs measured per-axis wire traffic "
            f"(tp/dp exact, pp within {PP_TOLERANCE:.0%})"
        ),
        precision=6,
    )
    bad = [r for r in rows if not r.ok]
    footer = (
        "all axes reconcile: the analytic mesh model matches the executed bytes"
        if not bad
        else "RECONCILIATION FAILED: "
        + ", ".join(f"{r.label}/{r.axis}" for r in bad)
    )
    return body + "\n" + footer


def _render_crossover(points: list[CrossoverPoint]) -> str:
    from repro.experiments.asciiplot import line_chart

    body = render_table(
        ["mesh", "nodes", "pp x dp x tp", "ips", "step s", "bubble",
         "tp s", "pp s", "dp s", "comm %", "GiB/gcd"],
        [
            [
                p.mesh,
                p.nodes,
                p.shape,
                round(p.ips, 1),
                round(p.step_time_s, 4),
                round(p.bubble_fraction, 3),
                round(p.tp_comm_s, 4),
                round(p.pp_comm_s, 4),
                round(p.dp_comm_s, 4),
                round(100 * p.comm_fraction, 1),
                round(p.memory_gib, 2),
            ]
            for p in points
        ],
        title=(
            f"Predicted mesh crossover, MAE {CROSSOVER_VARIANT}, FULL_SHARD dp, "
            f"local batch {CROSSOVER_LOCAL_BATCH}, {CROSSOVER_MICROS} micros"
        ),
        precision=4,
    )
    nodes = sorted({p.nodes for p in points})
    curves = {
        label: [
            next(p.ips for p in points if p.mesh == label and p.nodes == n)
            for n in nodes
        ]
        for label, _ in CROSSOVER_MESHES
    }
    chart = line_chart(
        nodes,
        curves,
        title="predicted ips vs nodes by mesh composition (log-log)",
        logx=True,
        logy=True,
    )
    return body + "\n\n" + chart


def render_mesh_crossover(steps: int = STEPS) -> str:
    """Reconciliation table + Frontier-scale predicted crossover curves."""
    recon = run_mesh_reconciliation(steps)
    return (
        _render_reconciliation(recon)
        + "\n\n"
        + _render_crossover(run_mesh_crossover())
    )
