"""Fig. 5 — MAE pretraining loss vs step for the four model sizes.

Pretrains (or loads) the proxy suite with identical hyper-parameters and
reports per-epoch mean losses. Expected shape: larger models reach lower
loss, separation visible through training (paper shows ViT-Huge/1B/3B
clearly below ViT-Base).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.downstream import (
    DownstreamRecipe,
    PretrainedModel,
    pretrain_suite,
)
from repro.experiments.report import render_series

__all__ = ["Fig5Result", "run_fig5", "render_fig5"]


@dataclass
class Fig5Result:
    suite: dict[str, PretrainedModel]

    def loss_curves(self, smooth: int = 10) -> dict[str, list[float]]:
        """Per-model smoothed loss (non-overlapping window means)."""
        out = {}
        for name, pm in self.suite.items():
            arr = np.asarray(pm.losses)
            n = len(arr) // smooth
            out[pm.paper_name] = [
                float(arr[i * smooth : (i + 1) * smooth].mean()) for i in range(n)
            ]
        return out

    def final_losses(self, tail: int = 20) -> dict[str, float]:
        """Mean loss over the last ``tail`` steps, per model."""
        return {
            pm.paper_name: float(np.mean(pm.losses[-tail:]))
            for pm in self.suite.values()
        }

    def early_losses(self, window: slice = slice(20, 60)) -> dict[str, float]:
        """Mean loss over a mid-training window, per model."""
        out = {}
        for pm in self.suite.values():
            segment = pm.losses[window]
            if not segment:  # short runs: fall back to the whole curve
                segment = pm.losses
            out[pm.paper_name] = float(np.mean(segment))
        return out


def run_fig5(
    recipe: DownstreamRecipe | None = None, cache_dir: str | None = None
) -> Fig5Result:
    """Pretrain (or load) the suite and package its loss curves."""
    kwargs = {} if cache_dir is None else {"cache_dir": cache_dir}
    return Fig5Result(suite=pretrain_suite(recipe, **kwargs))


def render_fig5(result: Fig5Result | None = None) -> str:
    """Render Fig. 5's loss table plus mid/final loss summaries."""
    result = result if result is not None else run_fig5()
    curves = result.loss_curves()
    n = min(len(v) for v in curves.values())
    body = render_series(
        "window",
        list(range(n)),
        {k: v[:n] for k, v in curves.items()},
        title="Fig 5: MAE pretraining loss (10-step window means)",
        precision=4,
    )
    finals = ", ".join(f"{k}={v:.4f}" for k, v in result.final_losses().items())
    earlies = ", ".join(f"{k}={v:.4f}" for k, v in result.early_losses().items())
    return (
        f"{body}\nmid-training loss: {earlies}\nfinal loss: {finals}\n"
        "(paper: larger models reach lower pretraining loss)"
    )
