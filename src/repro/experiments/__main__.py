"""Command-line experiment runner.

Regenerate any paper artifact directly::

    python -m repro.experiments table1
    python -m repro.experiments fig3
    python -m repro.experiments all        # everything but the slow ones
    python -m repro.experiments fig5       # pretrains (cached) proxy suite
"""

from __future__ import annotations

import sys
import time

_FAST = [
    "table1", "table2", "fig1", "fig2", "fig3", "fig4", "ablations",
    "mesh", "mesh-crossover", "traffic",
]
_SLOW = [
    "fig5", "table3", "fig6",
    "fewshot", "adaptation", "ssl", "segmentation",
]


def _echo(text: str) -> None:
    """Write one line to stdout (the CLI's user-facing output channel)."""
    sys.stdout.write(text + "\n")


def _render(name: str) -> str:
    # Imports deferred so `--help` stays instant.
    if name == "table1":
        from repro.experiments.table1 import render_table1

        return render_table1()
    if name == "table2":
        from repro.experiments.table2 import render_table2

        return render_table2()
    if name == "fig1":
        from repro.experiments.fig1 import render_fig1

        return render_fig1()
    if name == "fig2":
        from repro.experiments.fig2 import render_fig2

        return render_fig2()
    if name == "fig3":
        from repro.experiments.fig3 import render_fig3

        return render_fig3()
    if name == "fig4":
        from repro.experiments.fig4 import render_fig4

        return render_fig4()
    if name == "fig5":
        from repro.experiments.fig5 import render_fig5

        return render_fig5()
    if name == "table3":
        from repro.experiments.table3 import render_table3

        return render_table3()
    if name == "fig6":
        from repro.experiments.fig6 import render_fig6

        return render_fig6()
    if name == "ablations":
        from repro.experiments.ablations import (
            render_bucket_sweep,
            render_contention_sweep,
            render_shard_group_sweep,
        )

        return "\n\n".join(
            [
                render_bucket_sweep(),
                render_shard_group_sweep(),
                render_contention_sweep(),
            ]
        )
    if name == "mesh":
        from repro.experiments.mesh_axes import render_mesh_axes

        return render_mesh_axes()
    if name == "mesh-crossover":
        from repro.experiments.mesh_crossover import render_mesh_crossover

        return render_mesh_crossover()
    if name == "traffic":
        from repro.experiments.traffic_exp import render_traffic

        return render_traffic()
    if name == "fewshot":
        from repro.experiments.fewshot import render_fewshot, run_fewshot

        return render_fewshot(run_fewshot())
    if name == "adaptation":
        from repro.experiments.adaptation import render_adaptation, run_adaptation

        return render_adaptation(run_adaptation())
    if name == "ssl":
        from repro.experiments.ssl_compare import (
            render_ssl_compare,
            run_ssl_compare,
        )

        return render_ssl_compare(run_ssl_compare())
    if name == "segmentation":
        from repro.experiments.segmentation_exp import (
            render_segmentation,
            run_segmentation,
        )

        return render_segmentation(run_segmentation())
    raise KeyError(name)


def main(argv: list[str]) -> int:
    """Run the named experiments; returns a process exit code."""
    known = _FAST + _SLOW
    if not argv or argv[0] in ("-h", "--help"):
        _echo(__doc__)
        _echo(f"experiments: {', '.join(known)}, all (= fast set)")
        return 0
    targets = _FAST if argv == ["all"] else argv
    unknown = [t for t in targets if t not in known]
    if unknown:
        _echo(f"unknown experiment(s): {unknown}; known: {known}")
        return 2
    for name in targets:
        t0 = time.perf_counter()
        body = _render(name)
        dt = time.perf_counter() - t0
        bar = "=" * 78
        _echo(f"{bar}\n{name}  ({dt:.1f}s)\n{bar}\n{body}\n")
    return 0


def cli() -> None:
    """Console-script entry point (``repro-experiments``)."""
    raise SystemExit(main(sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
