"""MAE vs contrastive pretraining (the paper's Section II choice, tested).

The paper adopts masked autoencoding over contrastive learning for its
geospatial FMs. This experiment pretrains the same proxy encoder with
both objectives on the same corpus and compute budget, adds a
random-initialization control, and linear-probes all three — grounding
the design choice in a measurement.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.comm.world import World
from repro.core.checkpoints import checkpoint_exists, load_checkpoint, save_checkpoint
from repro.core.config import get_mae_config, get_vit_config
from repro.core.fsdp import FSDPEngine
from repro.core.sharding import ShardingStrategy
from repro.core.simclr_trainer import SimCLRPretrainer
from repro.data.datasets import SplitDataset, build_pretraining_corpus
from repro.data.transforms import normalize_images
from repro.eval.features import extract_features
from repro.eval.linear_probe import probe_features
from repro.experiments.downstream import (
    DEFAULT_CACHE_DIR,
    DownstreamRecipe,
    pretrain_suite,
)
from repro.experiments.report import render_table
from repro.experiments.table3 import build_probe_datasets
from repro.models.mae import MaskedAutoencoder
from repro.models.simclr import SimCLRModel
from repro.optim.adamw import AdamW

__all__ = ["SslCompareResult", "run_ssl_compare", "render_ssl_compare"]

MODEL = "proxy-base"
DATASETS = ("millionaid", "ucm")


@dataclass
class SslCompareResult:
    datasets: list[str]
    top1: dict[tuple[str, str], float]  # (method, dataset) -> top-1
    methods: list[str]

    def get(self, method: str, dataset: str) -> float:
        """Top-1 accuracy of (pretraining method, dataset)."""
        return self.top1[(method, dataset)]


def _pretrain_simclr(
    recipe: DownstreamRecipe, cache_dir: str | None
) -> SimCLRModel:
    cfg = get_vit_config(MODEL)
    model = SimCLRModel(cfg, rng=np.random.default_rng(recipe.seed + 1))
    ckpt = (
        os.path.join(cache_dir, f"simclr-{recipe.cache_key(MODEL)}")
        if cache_dir
        else None
    )
    if ckpt and checkpoint_exists(ckpt):
        load_checkpoint(model, ckpt)
        return model
    corpus = normalize_images(
        build_pretraining_corpus(
            n_images=recipe.corpus_images, img_size=recipe.img_size,
            seed=recipe.seed,
        ).images
    )
    engine = FSDPEngine(
        model,
        World(1, ranks_per_node=1),
        ShardingStrategy.NO_SHARD,
        optimizer_factory=lambda p: AdamW(p, lr=recipe.base_lr),
    )
    SimCLRPretrainer(
        engine, corpus, global_batch=recipe.global_batch, seed=recipe.seed
    ).run(recipe.steps)
    if ckpt:
        save_checkpoint(model, ckpt, meta={"method": "simclr"})
    return model


def _probe(encoder, data: SplitDataset, seed: int) -> float:
    ftr = extract_features(encoder, data.train.images)
    fte = extract_features(encoder, data.test.images)
    return probe_features(
        ftr, data.train.labels, fte, data.test.labels,
        n_classes=data.spec.n_classes, epochs=30, seed=seed,
    ).final_top1


def run_ssl_compare(
    recipe: DownstreamRecipe | None = None,
    datasets: tuple[str, ...] = DATASETS,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    probe_data: dict[str, SplitDataset] | None = None,
) -> SslCompareResult:
    """Pretrain MAE and SimCLR at matched budget; probe both plus a random-init control."""
    recipe = recipe if recipe is not None else DownstreamRecipe()
    if probe_data is None:
        probe_data = build_probe_datasets(
            img_size=recipe.img_size, seed=recipe.seed
        )
    mae = pretrain_suite(recipe, cache_dir=cache_dir, verbose=False)[MODEL].model
    simclr = _pretrain_simclr(recipe, cache_dir)
    random_init = MaskedAutoencoder(
        get_mae_config(MODEL), rng=np.random.default_rng(recipe.seed + 1)
    )
    methods = {"mae": mae, "simclr": simclr, "random-init": random_init}
    top1 = {
        (method, ds): _probe(encoder, probe_data[ds], recipe.seed)
        for method, encoder in methods.items()
        for ds in datasets
    }
    return SslCompareResult(
        datasets=list(datasets), top1=top1, methods=list(methods)
    )


def render_ssl_compare(result: SslCompareResult) -> str:
    """Render the SSL comparison as a text table."""
    body = render_table(
        ["pretraining", *result.datasets],
        [
            [m] + [round(100 * result.get(m, d), 1) for d in result.datasets]
            for m in result.methods
        ],
        title="SSL objective comparison: linear-probe top-1 (%), same "
        "encoder/corpus/budget",
        precision=1,
    )
    return (
        f"{body}\n(the paper's Section II design choice measured: both SSL "
        "objectives beat random features; the ordering between them is "
        "the interesting part)"
    )
