"""Fig. 3 — weak scaling of the four ViT models that fit on one GPU.

For ViT-Base / Huge / 1B / 3B, sweeps DDP, NO_SHARD, HYBRID_1GPU,
HYBRID_2GPUs and FULL_SHARD over 1..64 nodes (local batch 32) and
collects per-GPU memory for the two memory panels.

Expected shapes (paper Section IV-C):

- FULL_SHARD underperforms at scale for every size, flattening earliest
  for the smallest model;
- HYBRID_1GPU, HYBRID_2GPUs and NO_SHARD all beat DDP, with the
  DDP-vs-FSDP gap growing with model size;
- HYBRID_1GPU is the best choice for every model that fits on one GPU;
- memory: DDP/NO_SHARD/HYBRID constant in node count (ViT-3B > 60 GB;
  HYBRID_2GPUs roughly half), FULL_SHARD falling with world size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ViTConfig, get_vit_config
from repro.core.scaling import ScalingSeries, run_strategy_grid
from repro.experiments.fig1 import DEFAULT_NODE_GRID
from repro.experiments.report import render_series
from repro.utils.units import GIB

__all__ = ["Fig3Result", "run_fig3", "render_fig3", "MODELS", "STRATEGIES"]

MODELS = ["vit-base", "vit-huge", "vit-1b", "vit-3b"]
STRATEGIES = ["DDP", "NO_SHARD", "HYBRID_1GPU", "HYBRID_2GPUs", "FULL_SHARD"]


@dataclass
class Fig3Result:
    node_counts: list[int]
    grids: dict[str, dict[str, ScalingSeries]]  # model -> strategy -> series

    def ips(self, model: str, strategy: str) -> list[float]:
        """Throughput series of (model, strategy)."""
        return self.grids[model][strategy].ips

    def memory_gib(self, model: str, strategy: str) -> list[float]:
        """Per-GPU memory (GiB) series of (model, strategy)."""
        return [
            p.memory.total / GIB for p in self.grids[model][strategy].points
        ]


def run_fig3(
    node_counts: list[int] | None = None, models: list[str] | None = None
) -> Fig3Result:
    """Run the Fig. 3 grids (four models x five strategies)."""
    nodes = node_counts if node_counts is not None else DEFAULT_NODE_GRID
    names = models if models is not None else MODELS
    grids = {}
    for name in names:
        cfg: ViTConfig = get_vit_config(name)
        grids[name] = run_strategy_grid(cfg, STRATEGIES, nodes)
    return Fig3Result(node_counts=nodes, grids=grids)


def render_fig3(result: Fig3Result | None = None) -> str:
    """Render Fig. 3's throughput and memory panels."""
    from repro.experiments.asciiplot import line_chart

    result = result if result is not None else run_fig3()
    blocks = []
    for model, grid in result.grids.items():
        series = {label: s.ips for label, s in grid.items()}
        series["ideal(HYBRID_1GPU)"] = grid["HYBRID_1GPU"].ideal_ips()
        blocks.append(
            render_series(
                "nodes",
                result.node_counts,
                series,
                title=f"Fig 3 [{model}]: weak scaling, local batch 32 (ips)",
            )
        )
        if len(result.node_counts) >= 2:
            blocks.append(
                line_chart(
                    result.node_counts,
                    series,
                    title=f"[{model}] ips vs nodes (log-log)",
                    logx=True,
                    logy=True,
                )
            )
        mem = {
            label: [round(v, 2) for v in result.memory_gib(model, label)]
            for label in STRATEGIES
        }
        blocks.append(
            render_series(
                "nodes",
                result.node_counts,
                mem,
                title=f"Fig 3 [{model}]: per-GPU memory (GiB)",
                precision=2,
            )
        )
    return "\n\n".join(blocks)
