"""Table I — ViT architecture inventory and parameter accounting.

Renders the paper's Table I next to our first-principles parameter
counts. Every variant matches the paper within ~2% except ViT-5B, whose
published (width=1792, depth=56, mlp=15360) combination yields ~3.8B
parameters by any standard transformer accounting — an internal
inconsistency of the paper that this table surfaces explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import VIT_VARIANTS, ViTConfig, count_vit_params
from repro.experiments.report import render_table

__all__ = ["Table1Row", "run_table1", "render_table1"]


@dataclass(frozen=True)
class Table1Row:
    cfg: ViTConfig
    computed_params_m: float

    @property
    def paper_params_m(self) -> float:
        """Parameter count (millions) the paper reports."""
        assert self.cfg.paper_params_m is not None
        return self.cfg.paper_params_m

    @property
    def relative_error(self) -> float:
        """Computed/paper parameter-count relative error."""
        return self.computed_params_m / self.paper_params_m - 1.0


def run_table1() -> list[Table1Row]:
    """Compute parameter counts for every Table I variant."""
    return [
        Table1Row(cfg=cfg, computed_params_m=count_vit_params(cfg) / 1e6)
        for cfg in VIT_VARIANTS.values()
    ]


def render_table1(rows: list[Table1Row] | None = None) -> str:
    """Render Table I with the paper-vs-computed comparison."""
    rows = rows if rows is not None else run_table1()
    table = render_table(
        headers=[
            "Model", "Width", "Depth", "MLP", "Heads",
            "Paper [M]", "Computed [M]", "err %",
        ],
        rows=[
            [
                r.cfg.name, r.cfg.width, r.cfg.depth, r.cfg.mlp, r.cfg.heads,
                r.paper_params_m, round(r.computed_params_m, 1),
                round(100 * r.relative_error, 1),
            ]
            for r in rows
        ],
        title="Table I: ViT variants (paper-reported vs computed parameters)",
        precision=1,
    )
    note = (
        "note: vit-5b's published dimensions are internally inconsistent "
        "(see DESIGN.md); all other variants match within ~2%."
    )
    return f"{table}\n{note}"
