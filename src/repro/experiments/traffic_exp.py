"""Open-loop serving experiment: plan, serve, reconcile, extrapolate.

Three parts, one discipline (the same one as
:mod:`repro.experiments.mesh_crossover`):

1. *Planned fleet, measured run* — a multi-tenant diurnal+flash
   workload is forecast, :func:`repro.serve.plan_capacity` prices a
   heterogeneous fleet for its peak, the planned fleet serves the
   seeded open-loop traffic on the virtual clock, and
   :func:`repro.serve.reconcile_plan` compares predicted attainment /
   cost / utilization against the measured run.
2. *Autoscaled run* — the same workload served by an SLO-driven
   :class:`~repro.serve.Autoscaler` instead of a fixed fleet: the
   fleet grows through the flash crowd and drains after, and the run
   reports measured spend next to the static plan's.
3. *Million-user extrapolation* — once the planner is reconciled at
   proxy scale, it prices fleets for virtual-user populations far past
   what the test machine can materialize (planning is closed-form; no
   events are generated).
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.serve import (
    AdmissionController,
    Autoscaler,
    AutoscalePolicy,
    CapacityPlan,
    FixedServiceModel,
    InferenceServer,
    OpenLoopResult,
    PlanReconciliation,
    RateProfile,
    ReplicaType,
    SyntheticEncoder,
    TenantSpec,
    TenantTraffic,
    VirtualClock,
    plan_capacity,
    reconcile_plan,
    run_open_loop,
)

__all__ = [
    "HORIZON_S",
    "SEED",
    "SLO_S",
    "proxy_fleet",
    "tenant_traffics",
    "run_traffic_plan",
    "run_traffic_autoscale",
    "run_user_extrapolation",
    "render_traffic",
]

HORIZON_S = 8.0
SEED = 17
SLO_S = 0.25
BATCH = 8

#: Virtual-user populations priced in the extrapolation sweep. A user
#: issues ``USER_RATE_IPS`` requests/s on average; populations are never
#: materialized — only their aggregate rate is planned for.
USER_GRID = [5_000_000, 40_000_000, 160_000_000, 640_000_000]
USER_RATE_IPS = 2e-3


def proxy_fleet() -> list[ReplicaType]:
    """Two priced replica types with a real cost/throughput trade.

    The fast part is cheaper *per image* (0.005 vs 0.0067 $/h per
    img/s) but over-provisions small loads — the same shape of decision
    the priced MI250X fleet poses at catalog scale.
    """
    return [
        ReplicaType("fast", FixedServiceModel(400.0), 2.0),
        ReplicaType("slow", FixedServiceModel(150.0), 1.0),
    ]


def tenant_traffics() -> list[TenantTraffic]:
    """Three tenants: diurnal production, flash-crowd free tier, batch."""
    return [
        TenantTraffic(
            TenantSpec("prod", weight=4.0, priority=0),
            RateProfile(
                base_rate_ips=90.0, diurnal_amplitude=0.3, diurnal_period_s=HORIZON_S
            ),
            deadline_s=1.0,
            image_shape=(1, 2, 2),
        ),
        TenantTraffic(
            TenantSpec("free", weight=1.0, priority=0, rate_limit=60.0),
            RateProfile(
                base_rate_ips=30.0,
                flash_at_s=3.0,
                flash_magnitude=5.0,
                flash_ramp_s=0.5,
                flash_hold_s=1.5,
            ),
            deadline_s=1.0,
            image_shape=(1, 2, 2),
        ),
        TenantTraffic(
            TenantSpec("batch", weight=1.0, priority=1),
            RateProfile(base_rate_ips=25.0),
            process="pareto",
            image_shape=(1, 2, 2),
        ),
    ]


def _forecast_peak(traffics: list[TenantTraffic]) -> float:
    """Admitted peak: the free tier's flash is clipped by its bucket."""
    peak = 0.0
    for t in traffics:
        rate = t.profile.max_rate()
        if t.spec.rate_limit is not None:
            rate = min(rate, t.spec.rate_limit)
        peak += rate
    return peak


def _server(services, prices, traffics, autoscaler=None) -> InferenceServer:
    return InferenceServer(
        SyntheticEncoder(),
        services=services,
        replica_prices=prices,
        max_batch_size=BATCH,
        queue_capacity=1024,
        clock=VirtualClock(),
        admission=AdmissionController([t.spec for t in traffics], capacity=1024),
        autoscaler=autoscaler,
    )


def run_traffic_plan() -> tuple[CapacityPlan, OpenLoopResult, PlanReconciliation]:
    """Plan a fleet for the forecast peak, serve, and reconcile."""
    traffics = tenant_traffics()
    plan = plan_capacity(
        proxy_fleet(),
        peak_rate_ips=_forecast_peak(traffics),
        batch_size=BATCH,
        slo_s=SLO_S,
    )
    server = _server(plan.services(), plan.prices(), traffics)
    result = run_open_loop(
        server, traffics, horizon_s=HORIZON_S, seed=SEED, slo_s=plan.slo_s
    )
    return plan, result, reconcile_plan(plan, result)


def run_traffic_autoscale() -> tuple[OpenLoopResult, Autoscaler]:
    """Serve the same workload with an elastic fleet instead of a plan."""
    traffics = tenant_traffics()
    autoscaler = Autoscaler(
        AutoscalePolicy(
            min_replicas=1,
            max_replicas=6,
            interval_s=0.25,
            slo_s=SLO_S,
            high_backlog=6.0,
            warmup_s=0.25,
        ),
        lambda: FixedServiceModel(150.0),
        usd_per_hour=1.0,
    )
    server = _server(
        [FixedServiceModel(150.0)], [1.0], traffics, autoscaler=autoscaler
    )
    result = run_open_loop(
        server, traffics, horizon_s=HORIZON_S, seed=SEED, slo_s=SLO_S
    )
    return result, autoscaler


def run_user_extrapolation() -> list[tuple[int, float, CapacityPlan]]:
    """Price MI250X-catalog fleets for million-user populations.

    Closed-form only: ``plan_capacity`` never materializes a single
    request, so the sweep reaches populations whose event streams would
    never fit in memory.
    """
    from repro.core.config import get_vit_config

    types = ReplicaType.catalog(get_vit_config("proxy-base"))
    rows = []
    for users in USER_GRID:
        profile = RateProfile(
            virtual_users=users,
            rate_per_user_ips=USER_RATE_IPS,
            diurnal_amplitude=0.4,
        )
        plan = plan_capacity(
            types,
            peak_rate_ips=profile.max_rate(),
            batch_size=64,
            slo_s=SLO_S,
            max_replicas=512,
        )
        rows.append((users, profile.max_rate(), plan))
    return rows


# -- rendering -------------------------------------------------------------


def _render_plan(
    plan: CapacityPlan, result: OpenLoopResult, recon: PlanReconciliation
) -> str:
    per_tenant = render_table(
        ["tenant", "attainment"],
        [
            [name, round(att, 4)]
            for name, att in sorted(result.attainment_by_tenant.items())
        ],
        title="Per-tenant SLO attainment (planned fleet)",
        precision=4,
    )
    summary = render_table(
        ["fleet", "offered", "served", "rejected", "timeout",
         "attainment", "admitted", "$/h pred", "$/h meas"],
        [[
            plan.describe(),
            result.offered,
            result.served,
            result.rejected,
            result.timed_out,
            round(result.attainment, 4),
            round(result.admitted_attainment, 4),
            round(plan.predicted_cost_per_hour, 3),
            round(result.measured_cost_per_hour, 3),
        ]],
        title=(
            f"Planned fleet over {HORIZON_S:.0f}s of diurnal+flash traffic "
            f"(seed {SEED}, SLO {SLO_S * 1e3:.0f} ms)"
        ),
        precision=4,
    )
    return summary + "\n\n" + per_tenant + "\n\n" + recon.render()


def _render_autoscale(result: OpenLoopResult, autoscaler: Autoscaler) -> str:
    summary = render_table(
        ["replicas mean", "replicas max", "scale events", "attainment",
         "$ measured"],
        [[
            round(result.mean_replicas, 2),
            result.max_replicas,
            result.scale_events,
            round(result.attainment, 4),
            round(result.measured_cost_usd, 4),
        ]],
        title="Autoscaled fleet over the same workload",
        precision=4,
    )
    timeline = render_table(
        ["t [s]", "action", "fleet", "backlog", "p99 [ms]"],
        [
            [round(e.t_s, 2), e.action, e.n_replicas, round(e.backlog, 1),
             round(e.p99_s * 1e3, 1)]
            for e in autoscaler.events
        ],
        title="Scale decisions",
        precision=2,
    )
    return summary + "\n\n" + timeline


def _render_extrapolation(rows) -> str:
    return render_table(
        ["virtual users", "peak img/s", "fleet", "replicas", "$/h",
         "utilization"],
        [
            [
                f"{users:,}",
                round(peak, 1),
                plan.describe(),
                plan.n_replicas,
                round(plan.predicted_cost_per_hour, 2),
                round(plan.predicted_utilization, 3),
            ]
            for users, peak, plan in rows
        ],
        title=(
            "Planned MI250X-catalog fleets for virtual-user populations "
            f"({USER_RATE_IPS:g} img/s per user; closed-form, no events "
            "materialized)"
        ),
        precision=3,
    )


def render_traffic() -> str:
    """Planned-vs-measured serving report plus the million-user sweep."""
    plan, result, recon = run_traffic_plan()
    auto_result, autoscaler = run_traffic_autoscale()
    return (
        _render_plan(plan, result, recon)
        + "\n\n"
        + _render_autoscale(auto_result, autoscaler)
        + "\n\n"
        + _render_extrapolation(run_user_extrapolation())
    )
