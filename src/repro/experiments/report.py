"""Plain-text rendering of experiment results.

Every experiment module renders its results as the rows/series the
paper's corresponding table or figure reports, so benchmark output can be
compared against the paper side by side.
"""

from __future__ import annotations

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(
    headers: list[str], rows: list[list], title: str = "", precision: int = 2
) -> str:
    """Fixed-width ASCII table."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    for r in cells:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend("  ".join(c.rjust(w) for c, w in zip(r, widths)) for r in cells)
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: list,
    series: dict[str, list[float]],
    title: str = "",
    precision: int = 1,
) -> str:
    """A figure's data as a table: one x column, one column per curve."""
    headers = [x_label, *series.keys()]
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x values"
            )
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title, precision=precision)


def render_kv(pairs: dict, title: str = "") -> str:
    """Key/value block."""
    width = max(len(str(k)) for k in pairs) if pairs else 0
    lines = [title] if title else []
    lines.extend(f"{str(k).rjust(width)}: {v}" for k, v in pairs.items())
    return "\n".join(lines)
