"""Experiment drivers: one module per paper table / figure.

Each module exposes ``run_*`` returning structured results and a
``render`` producing the paper-comparable text report. The benchmark
harness under ``benchmarks/`` is a thin wrapper over these.

=========  ==========================================================
module     reproduces
=========  ==========================================================
table1     Table I  — ViT architecture inventory & parameter counts
fig1       Fig. 1   — MAE ViT-3B weak scaling (io/syn/no-comm/real)
fig2       Fig. 2   — ViT-5B sharding x prefetch x limit_all_gathers
fig3       Fig. 3   — weak scaling, models that fit on one GPU
fig4       Fig. 4   — weak scaling, 5B/15B + memory + power traces
table2     Table II — dataset inventory (analogues + paper originals)
fig5       Fig. 5   — MAE pretraining loss vs step, four model sizes
table3     Table III— linear-probe top-1 across datasets and sizes
fig6       Fig. 6   — probe top-1/top-5 vs probing epoch
=========  ==========================================================
"""

from repro.experiments import report
from repro.experiments.downstream import (
    DownstreamRecipe,
    PretrainedModel,
    pretrain_suite,
)

__all__ = ["report", "DownstreamRecipe", "PretrainedModel", "pretrain_suite"]

# Experiment modules (imported lazily by the CLI and benches):
#   table1, table2, fig1..fig6 — the paper's artifacts
#   ablations, fewshot, adaptation, ssl_compare, segmentation_exp — extensions
#   mesh_axes — per-axis comm breakdown across TP/PP/DP mesh compositions
