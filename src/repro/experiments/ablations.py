"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these probe the *mechanisms* behind its
findings:

- :func:`ddp_bucket_sweep` — how DDP's fixed bucket size creates the
  model-size-dependent gap of Fig. 3 (sweep the cap, watch call count
  and throughput);
- :func:`shard_group_sweep` — throughput and memory across every
  HYBRID_<n>GPUs shard-group size for one model/scale (the Fig. 4
  trade-off isolated);
- :func:`contention_sweep` — sensitivity of the Fig. 1 communication
  share to the compute/communication contention factor (the headline
  calibration knob).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import ViTConfig, get_mae_config, get_vit_config
from repro.core.sharding import ShardingStrategy
from repro.experiments.report import render_table
from repro.hardware.frontier import frontier_machine
from repro.perf.schedule import ScheduleParams
from repro.perf.simulator import PerfParams, TrainStepSimulator

__all__ = [
    "BucketPoint",
    "ddp_bucket_sweep",
    "render_bucket_sweep",
    "ShardGroupPoint",
    "shard_group_sweep",
    "render_shard_group_sweep",
    "contention_sweep",
    "render_contention_sweep",
]


@dataclass(frozen=True)
class BucketPoint:
    cap_mb: int
    comm_calls: int
    ips: float


def ddp_bucket_sweep(
    model_name: str = "vit-3b",
    n_nodes: int = 32,
    caps_mb: tuple[int, ...] = (5, 25, 100, 400, 1600),
) -> list[BucketPoint]:
    """Sweep DDP bucket caps; returns (cap, calls, ips) points."""
    cfg: ViTConfig = get_vit_config(model_name)
    machine = frontier_machine(n_nodes)
    out = []
    for cap in caps_mb:
        params = PerfParams(
            schedule=ScheduleParams(ddp_bucket_cap_bytes=cap * 1024 * 1024)
        )
        sim = TrainStepSimulator(cfg, machine, ShardingStrategy.DDP, params=params)
        sched = sim.build_schedule()
        out.append(
            BucketPoint(cap_mb=cap, comm_calls=sched.comm_calls, ips=sim.simulate().ips)
        )
    return out


def render_bucket_sweep(points: list[BucketPoint] | None = None, **kwargs) -> str:
    """Render the DDP bucket sweep as a text table."""
    points = points if points is not None else ddp_bucket_sweep(**kwargs)
    body = render_table(
        ["bucket cap [MB]", "all-reduce calls", "ips"],
        [[p.cap_mb, p.comm_calls, round(p.ips, 1)] for p in points],
        title="Ablation: DDP bucket size (ViT-3B, 32 nodes)",
        precision=1,
    )
    return (
        f"{body}\nPyTorch's default 25 MB cap is far from optimal for "
        "billion-parameter models — the mechanism behind Fig. 3's "
        "growing DDP-vs-FSDP gap."
    )


@dataclass(frozen=True)
class ShardGroupPoint:
    shard_size: int
    ips: float
    memory_gib: float
    comm_calls: int


def shard_group_sweep(
    model_name: str = "vit-5b",
    n_nodes: int = 32,
    shard_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> list[ShardGroupPoint]:
    """Sweep HYBRID shard-group sizes; returns per-size points."""
    cfg = get_vit_config(model_name)
    machine = frontier_machine(n_nodes)
    out = []
    for s in shard_sizes:
        if machine.world().size % s:
            continue
        sim = TrainStepSimulator(
            cfg, machine, ShardingStrategy.HYBRID_SHARD, shard_size=s
        )
        bd = sim.simulate()
        out.append(
            ShardGroupPoint(
                shard_size=s,
                ips=bd.ips,
                memory_gib=bd.memory.total / 2**30,
                comm_calls=bd.comm_calls,
            )
        )
    return out


def render_shard_group_sweep(
    points: list[ShardGroupPoint] | None = None, **kwargs
) -> str:
    """Render the shard-group sweep as a text table."""
    points = points if points is not None else shard_group_sweep(**kwargs)
    return render_table(
        ["shard group", "ips", "per-GPU GiB", "collective calls"],
        [
            [p.shard_size, round(p.ips, 1), round(p.memory_gib, 1), p.comm_calls]
            for p in points
        ],
        title="Ablation: HYBRID shard-group size (ViT-5B, 32 nodes)",
        precision=1,
    )


def contention_sweep(
    kappas: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
    n_nodes: int = 64,
) -> list[tuple[float, float]]:
    """(kappa, exposed-communication fraction) for the Fig. 1 workload."""
    mae = get_mae_config("vit-3b", img_size=504)
    machine = frontier_machine(n_nodes)
    out = []
    for kappa in kappas:
        params = PerfParams(
            schedule=replace(ScheduleParams(), comm_compute_contention=kappa)
        )
        bd = TrainStepSimulator(
            mae, machine, ShardingStrategy.NO_SHARD, params=params
        ).simulate()
        out.append((kappa, bd.comm_fraction))
    return out


def render_contention_sweep(points=None, **kwargs) -> str:
    """Render the contention sweep as a text table."""
    points = points if points is not None else contention_sweep(**kwargs)
    body = render_table(
        ["contention kappa", "exposed comm share"],
        [[k, f"{100 * f:.1f}%"] for k, f in points],
        title="Ablation: overlap contention vs Fig. 1 communication share",
    )
    return (
        f"{body}\nthe paper's measured ~22% at 64 nodes pins kappa near "
        "0.9 — communication on the MI250X is almost fully exposed."
    )
