"""Terminal line charts for figure output.

The benchmark reports render each paper figure both as a data table and
as an ASCII chart so the *shape* (crossovers, flattening, separation) is
visible directly in the bench log without a plotting stack.
"""

from __future__ import annotations

import math

__all__ = ["line_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    x_values: list[float],
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render curves sharing an x axis into a character grid.

    Each series gets a marker from ``oxy+*...``; the legend maps markers
    back to names. Log axes suit weak-scaling plots (node counts double).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be readable")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} xs"
            )
    if len(x_values) < 2:
        raise ValueError("need at least two x values")

    def tx(v: float) -> float:
        if logx:
            if v <= 0:
                raise ValueError("log x-axis requires positive values")
            return math.log10(v)
        return v

    def ty(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("log y-axis requires positive values")
            return math.log10(v)
        return v

    xs = [tx(v) for v in x_values]
    all_y = [ty(v) for ys in series.values() for v in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        for xv, yv in zip(xs, (ty(v) for v in ys)):
            col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10**y_hi if logy else y_hi:.4g}"
    bot_label = f"{10**y_lo if logy else y_lo:.4g}"
    pad = max(len(top_label), len(bot_label))
    for i, row in enumerate(grid):
        label = top_label if i == 0 else (bot_label if i == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    left = f"{x_values[0]:.4g}"
    right = f"{x_values[-1]:.4g}"
    gap = width - len(left) - len(right)
    lines.append(" " * (pad + 2) + left + " " * max(1, gap) + right)
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]}={name}" for k, name in enumerate(series)
    )
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)
