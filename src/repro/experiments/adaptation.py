"""The downstream-adaptation spectrum (paper Section II made concrete).

For one dataset, compares the adaptation configurations the paper
describes — supervised from scratch, linear probing, partial fine-tuning
(backbone half frozen), and full fine-tuning — on MAE-pretrained
encoders of two sizes. Expected orderings (the premise of the whole FM
program): pretraining beats from-scratch at these label budgets, and
fine-tuning beats probing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import SplitDataset
from repro.eval.finetune import FinetuneResult, finetune
from repro.eval.linear_probe import LinearProbeResult, linear_probe
from repro.experiments.downstream import PretrainedModel, pretrain_suite
from repro.experiments.report import render_table
from repro.experiments.table3 import build_probe_datasets

__all__ = ["AdaptationResult", "run_adaptation", "render_adaptation"]

DEFAULT_MODELS = ("proxy-base", "proxy-3b")
DEFAULT_DATASET = "ucm"


@dataclass
class AdaptationResult:
    dataset: str
    rows: dict[tuple[str, str], float]  # (model, protocol) -> top-1
    protocols: list[str]
    models: list[str]
    probe_detail: dict[str, LinearProbeResult]
    finetune_detail: dict[tuple[str, str], FinetuneResult]

    def top1(self, model: str, protocol: str) -> float:
        """Top-1 accuracy of (model, protocol)."""
        return self.rows[(model, protocol)]


def run_adaptation(
    suite: dict[str, PretrainedModel] | None = None,
    dataset: str = DEFAULT_DATASET,
    models: tuple[str, ...] = DEFAULT_MODELS,
    epochs: int = 10,
    probe_epochs: int = 30,
    seed: int = 0,
    data: SplitDataset | None = None,
) -> AdaptationResult:
    """Run every adaptation protocol for each model on one dataset."""
    if suite is None:
        suite = pretrain_suite()
    if data is None:
        data = build_probe_datasets(seed=seed)[dataset]
    protocols = ["scratch", "probe", "finetune-half", "finetune-full"]
    rows: dict[tuple[str, str], float] = {}
    probe_detail: dict[str, LinearProbeResult] = {}
    ft_detail: dict[tuple[str, str], FinetuneResult] = {}
    for name in models:
        pm = suite[name]
        depth = pm.model.cfg.encoder.depth
        scratch = finetune(
            pm.model, data, epochs=epochs, from_scratch=True, seed=seed,
            model_name=pm.paper_name,
        )
        ft_detail[(name, "scratch")] = scratch
        rows[(name, "scratch")] = scratch.final_top1

        probe = linear_probe(
            pm.model, data, epochs=probe_epochs, seed=seed,
            model_name=pm.paper_name,
        )
        probe_detail[name] = probe
        rows[(name, "probe")] = probe.final_top1

        half = finetune(
            pm.model, data, epochs=epochs, freeze_blocks=depth // 2,
            seed=seed, model_name=pm.paper_name,
        )
        ft_detail[(name, "finetune-half")] = half
        rows[(name, "finetune-half")] = half.final_top1

        full = finetune(
            pm.model, data, epochs=epochs, seed=seed, model_name=pm.paper_name
        )
        ft_detail[(name, "finetune-full")] = full
        rows[(name, "finetune-full")] = full.final_top1
    return AdaptationResult(
        dataset=dataset,
        rows=rows,
        protocols=protocols,
        models=list(models),
        probe_detail=probe_detail,
        finetune_detail=ft_detail,
    )


def render_adaptation(result: AdaptationResult) -> str:
    """Render the adaptation spectrum as a text table."""
    body = render_table(
        ["model", *result.protocols],
        [
            [m] + [round(100 * result.top1(m, p), 1) for p in result.protocols]
            for m in result.models
        ],
        title=(
            f"Adaptation spectrum on [{result.dataset}]: top-1 (%) by protocol"
        ),
        precision=1,
    )
    return (
        f"{body}\n(the paper's Section II spectrum: scratch < probe <= "
        "fine-tuning, with pretrained initialization carrying the gain)"
    )
