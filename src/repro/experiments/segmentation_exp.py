"""Segmentation probing across model scales (paper future work).

Does the scale-quality trend the paper demonstrates for classification
carry to dense prediction? Probes patch tokens of every proxy model on
the composite-scene segmentation task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.segmentation import SegmentationDataset, build_segmentation_dataset
from repro.eval.segmentation import SegProbeResult, segmentation_probe
from repro.experiments.downstream import PretrainedModel, pretrain_suite
from repro.experiments.report import render_table

__all__ = ["SegExperiment", "run_segmentation", "render_segmentation"]


@dataclass
class SegExperiment:
    results: dict[str, SegProbeResult]
    model_order: list[str]

    def miou(self, model: str) -> float:
        """Final mIoU for ``model``."""
        return self.results[model].final_miou


def run_segmentation(
    suite: dict[str, PretrainedModel] | None = None,
    n_train: int = 160,
    n_test: int = 80,
    img_size: int = 32,
    epochs: int = 20,
    seed: int = 0,
    train: SegmentationDataset | None = None,
    test: SegmentationDataset | None = None,
) -> SegExperiment:
    """Probe every suite model on the segmentation task."""
    if suite is None:
        suite = pretrain_suite()
    if train is None:
        train = build_segmentation_dataset(
            n_images=n_train, img_size=img_size, seed=seed
        )
    if test is None:
        test = build_segmentation_dataset(
            n_images=n_test, img_size=img_size, seed=seed + 1
        )
    results = {
        name: segmentation_probe(
            pm.model, train, test, epochs=epochs, seed=seed,
            model_name=pm.paper_name,
        )
        for name, pm in suite.items()
    }
    return SegExperiment(results=results, model_order=list(suite))


def render_segmentation(exp: SegExperiment) -> str:
    """Render the segmentation experiment as a text table."""
    body = render_table(
        ["model", "mIoU (%)", "patch acc (%)"],
        [
            [
                m,
                round(100 * exp.results[m].final_miou, 1),
                round(100 * exp.results[m].final_patch_acc, 1),
            ]
            for m in exp.model_order
        ],
        title="Segmentation probing (frozen patch tokens, linear head)",
        precision=1,
    )
    return (
        f"{body}\n(paper future work: dense prediction across model scales)"
    )
