"""Fig. 6 — probe top-1/top-5 accuracy vs probing epoch.

Runs the same probes as Table III but reports the full per-epoch curves
for every (model, dataset) pair.

Expected shapes (paper Section V-C): the size ordering in top-1 is
already visible early in probing for the shifted-domain datasets
(UCM/AID/NWPU analogues); top-5 improves more slowly; the MillionAID
probe — whose samples share the pretraining distribution — separates
later in training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.linear_probe import LinearProbeResult
from repro.experiments.downstream import DownstreamRecipe, pretrain_suite
from repro.experiments.report import render_series
from repro.experiments.table3 import PROBE_EPOCHS, build_probe_datasets, probe_suite

__all__ = ["Fig6Result", "run_fig6", "render_fig6"]


@dataclass
class Fig6Result:
    probes: dict[tuple[str, str], LinearProbeResult]
    model_order: list[str]
    datasets: list[str]
    epochs: int

    def curve(self, model: str, dataset: str, k: int = 1) -> list[float]:
        """Per-epoch top-k accuracies of (model, dataset)."""
        r = self.probes[(model, dataset)]
        return r.top1 if k == 1 else r.top5

    def epoch_of_separation(self, dataset: str) -> int | None:
        """First epoch at which the largest model's top-1 leads the
        smallest's and keeps leading to the end (None if never)."""
        small = self.curve(self.model_order[0], dataset)
        large = self.curve(self.model_order[-1], dataset)
        for e in range(len(small)):
            if all(lg > sm for lg, sm in zip(large[e:], small[e:])):
                return e
        return None


def run_fig6(
    recipe: DownstreamRecipe | None = None,
    epochs: int = PROBE_EPOCHS,
    cache_dir: str | None = None,
) -> Fig6Result:
    """Probe the suite and collect per-epoch accuracy curves."""
    recipe = recipe if recipe is not None else DownstreamRecipe()
    kwargs = {} if cache_dir is None else {"cache_dir": cache_dir}
    suite = pretrain_suite(recipe, **kwargs)
    datasets = build_probe_datasets(img_size=recipe.img_size, seed=recipe.seed)
    probes = probe_suite(suite, datasets, epochs=epochs, seed=recipe.seed)
    return Fig6Result(
        probes=probes,
        model_order=list(recipe.model_names),
        datasets=list(datasets),
        epochs=epochs,
    )


def render_fig6(result: Fig6Result | None = None) -> str:
    """Render Fig. 6's per-dataset accuracy-vs-epoch tables."""
    result = result if result is not None else run_fig6()
    blocks = []
    epochs = list(range(1, result.epochs + 1))
    for ds in result.datasets:
        for k in (1, 5):
            series = {
                m: [round(100 * v, 1) for v in result.curve(m, ds, k)]
                for m in result.model_order
            }
            blocks.append(
                render_series(
                    "epoch",
                    epochs,
                    series,
                    title=f"Fig 6 [{ds}] top-{k} accuracy (%) vs probe epoch",
                )
            )
        sep = result.epoch_of_separation(ds)
        blocks.append(
            f"[{ds}] smallest-vs-largest separation persists from epoch: {sep}"
        )
    return "\n\n".join(blocks)
