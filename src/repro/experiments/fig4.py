"""Fig. 4 — weak scaling of the models that do NOT fit on one GPU.

ViT-5B (fits on 2 GPUs) and ViT-15B (needs 4) under HYBRID_{2,4,8,16},
FULL_SHARD and SHARD_GRAD_OP; memory panels; the rocm-smi-style
power/memory/utilization trace for the 5B on 32 nodes; and the
SHARD_GRAD_OP vs FULL_SHARD throughput comparison the paper quotes
(1509 vs 1307 ips).

Expected shapes (paper Section IV-D):

- FULL_SHARD scales better for these models than it did in Fig. 3;
- ViT-15B: SHARD_GRAD_OP scales best of all strategies;
- SHARD_GRAD_OP > FULL_SHARD throughput, with correspondingly higher
  power; utilization ~100% for all strategies.

Documented deviations (see EXPERIMENTS.md): the paper claims
HYBRID_8/16GPUs outperform HYBRID_2/4GPUs for the 5B; our model
reproduces HYBRID_8 > HYBRID_2 (memory-pressure reallocation) but keeps
HYBRID_4 competitive and HYBRID_16 behind, because a 16-wide shard group
must all-gather across the node boundary every unit — the paper's own
explanation ("distributing the compute") does not apply to FSDP, whose
data-parallel compute is replicated, not distributed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import get_vit_config
from repro.core.scaling import ScalingSeries, run_strategy_grid
from repro.core.sharding import ShardingStrategy, parse_strategy
from repro.experiments.report import render_kv, render_series
from repro.hardware.frontier import frontier_machine
from repro.hardware.power import PowerTrace
from repro.perf.simulator import TrainStepSimulator
from repro.utils.units import GIB

__all__ = ["Fig4Result", "run_fig4", "render_fig4", "STRATEGIES_5B", "STRATEGIES_15B"]

STRATEGIES_5B = [
    "HYBRID_2GPUs", "HYBRID_4GPUs", "HYBRID_8GPUs", "HYBRID_16GPUs",
    "FULL_SHARD", "SHARD_GRAD_OP",
]
STRATEGIES_15B = [
    "HYBRID_4GPUs", "HYBRID_8GPUs", "HYBRID_16GPUs",
    "FULL_SHARD", "SHARD_GRAD_OP",
]
#: Minimum nodes: the 5B needs >= 2 GPUs, the 15B >= 4 -> both fit on one
#: node; the paper scales from small node counts upward.
NODE_GRID_5B = [2, 4, 8, 16, 32, 64]
NODE_GRID_15B = [4, 8, 16, 32, 64]
POWER_TRACE_NODES = 32
POWER_TRACE_STRATEGIES = ["HYBRID_2GPUs", "FULL_SHARD", "SHARD_GRAD_OP"]


@dataclass
class Fig4Result:
    grid_5b: dict[str, ScalingSeries]
    grid_15b: dict[str, ScalingSeries]
    nodes_5b: list[int]
    nodes_15b: list[int]
    power_traces: dict[str, PowerTrace]
    sgo_ips_32n: float
    full_ips_32n: float

    @property
    def sgo_over_full(self) -> float:
        """Paper quotes 1509 / 1307 = 1.155 for the 5B at 32 nodes."""
        return self.sgo_ips_32n / self.full_ips_32n


def run_fig4(
    nodes_5b: list[int] | None = None, nodes_15b: list[int] | None = None
) -> Fig4Result:
    """Run the Fig. 4 grids (5B/15B), power traces, and SGO/FULL ratio."""
    n5 = nodes_5b if nodes_5b is not None else NODE_GRID_5B
    n15 = nodes_15b if nodes_15b is not None else NODE_GRID_15B
    cfg5 = get_vit_config("vit-5b")
    cfg15 = get_vit_config("vit-15b")
    grid5 = run_strategy_grid(cfg5, STRATEGIES_5B, n5)
    grid15 = run_strategy_grid(cfg15, STRATEGIES_15B, n15)

    machine = frontier_machine(POWER_TRACE_NODES)
    traces = {}
    for label in POWER_TRACE_STRATEGIES:
        strategy, shard_size = parse_strategy(label)
        sim = TrainStepSimulator(cfg5, machine, strategy, shard_size=shard_size)
        traces[label] = sim.power_trace(label=label)

    sgo = TrainStepSimulator(
        cfg5, machine, ShardingStrategy.SHARD_GRAD_OP
    ).simulate().ips
    full = TrainStepSimulator(
        cfg5, machine, ShardingStrategy.FULL_SHARD
    ).simulate().ips
    return Fig4Result(
        grid_5b=grid5,
        grid_15b=grid15,
        nodes_5b=n5,
        nodes_15b=n15,
        power_traces=traces,
        sgo_ips_32n=sgo,
        full_ips_32n=full,
    )


def render_fig4(result: Fig4Result | None = None) -> str:
    """Render Fig. 4's panels and the rocm-smi trace summary."""
    result = result if result is not None else run_fig4()
    blocks = []
    for name, grid, nodes in (
        ("vit-5b", result.grid_5b, result.nodes_5b),
        ("vit-15b", result.grid_15b, result.nodes_15b),
    ):
        blocks.append(
            render_series(
                "nodes",
                nodes,
                {label: s.ips for label, s in grid.items()},
                title=f"Fig 4 [{name}]: weak scaling, local batch 32 (ips)",
            )
        )
        blocks.append(
            render_series(
                "nodes",
                nodes,
                {
                    label: [round(p.memory.total / GIB, 2) for p in s.points]
                    for label, s in grid.items()
                },
                title=f"Fig 4 [{name}]: per-GPU memory (GiB)",
                precision=2,
            )
        )
    blocks.append(
        render_kv(
            {
                label: (
                    f"power={t.mean_power:.0f} W  "
                    f"util={t.mean_utilization:.0f}%  "
                    f"mem={t.memory_bytes[0] / GIB:.1f} GiB"
                )
                for label, t in result.power_traces.items()
            },
            title=f"Fig 4 [vit-5b @ {POWER_TRACE_NODES} nodes]: rocm-smi trace summary",
        )
    )
    blocks.append(
        f"SHARD_GRAD_OP vs FULL_SHARD at {POWER_TRACE_NODES} nodes: "
        f"{result.sgo_ips_32n:.0f} vs {result.full_ips_32n:.0f} ips "
        f"(x{result.sgo_over_full:.3f}; paper: 1509 vs 1307 = x1.155)"
    )
    return "\n\n".join(blocks)
