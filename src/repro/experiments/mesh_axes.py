"""Mesh-axis communication breakdown — the TP/PP columns.

The paper's scaling figures stop at data-parallel strategies; its
follow-ons (3-D megatron-style tensor x pipeline x data parallelism on
Frontier) hinge on where each added axis spends its wire bytes. This
driver trains one proxy MAE under every single-axis mesh and the full
TP x PP x DP composition, reads the per-axis traffic back from the
telemetry bus (``comm.<op>`` spans tagged ``axis=``), and tabulates the
crossover: which axis dominates communication at which composition.

Because every mesh is fp32 bit-identical to the single-rank oracle (the
differential suites), the loss column doubles as a correctness readout:
all rows must print the same number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.world import World
from repro.core.config import MAEConfig, ViTConfig
from repro.core.engine import EngineConfig, make_engine
from repro.core.trainer import _mae_step_fn
from repro.experiments.report import render_table
from repro.mesh.spec import MeshSpec
from repro.models.mae import MaskedAutoencoder
from repro.telemetry import RecordingSink, RunReport, TelemetryBus
from repro.utils.units import MIB

__all__ = [
    "MeshAxisPoint",
    "MicroSlotError",
    "MICRO_SLOTS",
    "run_mesh_axes",
    "render_mesh_axes",
]

#: Proxy model for the axis sweep: 4 heads so tp in {2, 4} divides, 7
#: pipeline ops so pp up to 7 partitions.
PROXY = MAEConfig(
    encoder=ViTConfig(
        name="mesh-proxy", width=32, depth=2, mlp=64, heads=4, patch=8, img_size=16
    ),
    dec_width=32,
    dec_depth=2,
    dec_heads=4,
    mask_ratio=0.5,
)

#: The sweep: label, mesh, dp strategy.
CONFIGS = [
    ("dp4 / ddp", MeshSpec(dp=4), "ddp"),
    ("dp4 / fsdp", MeshSpec(dp=4), "full_shard"),
    ("tp4", MeshSpec(tp=4), "ddp"),
    ("pp4 gpipe", MeshSpec(pp=4, schedule="gpipe"), "ddp"),
    ("pp4 1f1b", MeshSpec(pp=4, schedule="1f1b"), "ddp"),
    ("pp2xdp2xtp2", MeshSpec(pp=2, dp=2, tp=2, schedule="1f1b"), "full_shard"),
]

STEPS = 2
BATCH = 2
#: Microbatch slots every configuration consumes per step. dp splits
#: them across replicas and grad accumulation fills the rest, so
#: ``MICRO_SLOTS % dp == 0`` is a hard contract of the sweep.
MICRO_SLOTS = 4


class MicroSlotError(ValueError):
    """A mesh's dp degree does not evenly divide the micro slots.

    Raised instead of silently floor-dividing: dropping micros would
    train on less data and break the bit-identical-loss contract.
    """


@dataclass(frozen=True)
class MeshAxisPoint:
    """Per-axis communication totals for one mesh configuration.

    ``*_bytes``/``*_calls`` are the exact measured telemetry totals the
    reconciliation harness compares against; ``*_mib`` are the rendered
    columns.
    """

    label: str
    shape: str
    strategy: str
    tp_mib: float
    pp_mib: float
    dp_mib: float
    tp_calls: int
    pp_calls: int
    dp_calls: int
    loss: float
    tp_bytes: int = 0
    pp_bytes: int = 0
    dp_bytes: int = 0


def _micros(n: int, seed: int) -> list:
    enc = PROXY.encoder
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        imgs = rng.standard_normal(
            (BATCH, enc.in_chans, enc.img_size, enc.img_size)
        ).astype(np.float64)
        noise = rng.random((BATCH, enc.n_patches))
        out.append((imgs, noise))
    return out


def run_mesh_axes(steps: int = STEPS) -> list[MeshAxisPoint]:
    """Train the proxy MAE under each mesh; read traffic off the bus.

    Every configuration consumes the same four microbatches per step
    (mesh engines split micros along dp only; k fills the rest), so the
    final losses — and the underlying fp32 trajectories — agree
    bit-for-bit across rows.
    """
    points = []
    for label, spec, strategy in CONFIGS:
        bus = TelemetryBus(RecordingSink())
        if MICRO_SLOTS % spec.dp != 0:
            raise MicroSlotError(
                f"mesh {spec.describe()}: dp={spec.dp} does not divide the "
                f"{MICRO_SLOTS} micro slots evenly; every configuration must "
                f"consume exactly {MICRO_SLOTS} microbatches per step "
                "(dp replicas x grad_accum_steps) or the bit-identical-loss "
                "contract breaks"
            )
        k = MICRO_SLOTS // spec.dp
        engine = make_engine(
            MaskedAutoencoder(PROXY, rng=np.random.default_rng(7)),
            strategy,
            world=World(spec.size),
            config=EngineConfig(mesh=spec, grad_accum_steps=k, telemetry=bus),
        )
        try:
            for s in range(steps):
                loss = engine.train_step(_micros(4, seed=50 + s), _mae_step_fn)
        finally:
            engine.close()
        report = RunReport.from_events(bus.sink.events)
        tp_b = report.axis_bytes("tp")
        pp_b = report.axis_bytes("pp")
        dp_b = report.axis_bytes("dp")
        points.append(
            MeshAxisPoint(
                label=label,
                shape=f"{spec.pp}x{spec.dp}x{spec.tp}",
                strategy=strategy,
                tp_mib=tp_b / MIB,
                pp_mib=pp_b / MIB,
                dp_mib=dp_b / MIB,
                tp_calls=report.axis_calls("tp"),
                pp_calls=report.axis_calls("pp"),
                dp_calls=report.axis_calls("dp"),
                loss=loss,
                tp_bytes=int(tp_b),
                pp_bytes=int(pp_b),
                dp_bytes=int(dp_b),
            )
        )
    return points


def render_mesh_axes(steps: int = STEPS) -> str:
    """ASCII table of per-axis wire traffic across mesh compositions."""
    points = run_mesh_axes(steps)
    rows = [
        [
            p.label,
            p.shape,
            p.strategy,
            round(p.tp_mib, 3),
            round(p.pp_mib, 3),
            round(p.dp_mib, 3),
            p.tp_calls,
            p.pp_calls,
            p.dp_calls,
            f"{p.loss:.12f}",
        ]
        for p in points
    ]
    table = render_table(
        ["mesh", "pp x dp x tp", "dp strat", "tp MiB", "pp MiB", "dp MiB",
         "tp#", "pp#", "dp#", "loss (bit-identical)"],
        rows,
        title=f"Per-axis communication, proxy MAE, {steps} steps, 4 micro slots",
        precision=3,
    )
    losses = {f"{p.loss:.17g}" for p in points}
    footer = (
        "all meshes reproduce the oracle trajectory bit-for-bit"
        if len(losses) == 1
        else f"WARNING: losses diverged across meshes: {sorted(losses)}"
    )
    return table + "\n" + footer
