"""Fig. 2 — communication optimizations for the ViT-5B on 8 nodes.

Sweeps three sharding strategies (HYBRID_2GPUs, FULL_SHARD,
SHARD_GRAD_OP) against the backward-prefetch policy (NONE /
BACKWARD_POST / BACKWARD_PRE) and ``limit_all_gathers``, at local batch
32 on 8 Frontier nodes — the paper's exact configuration.

Expected shapes (paper Section IV-B): ``limit_all_gathers`` improves
throughput for most configurations; ``BACKWARD_PRE`` yields the highest
throughput; differences are modest. SHARD_GRAD_OP shows no prefetch
sensitivity because it has no backward re-gather — visible here, implicit
in the paper's flat SGO bars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import get_vit_config
from repro.core.scaling import publish_breakdown
from repro.core.sharding import BackwardPrefetch, ShardingStrategy, parse_strategy
from repro.experiments.report import render_table
from repro.hardware.frontier import frontier_machine
from repro.perf.simulator import PerfParams, TrainStepSimulator
from repro.telemetry import RecordingSink, TelemetryBus, comm_share_from_events
from repro.utils.units import GIB

__all__ = ["Fig2Point", "run_fig2", "render_fig2"]

STRATEGY_LABELS = ["HYBRID_2GPUs", "FULL_SHARD", "SHARD_GRAD_OP"]
N_NODES = 8


@dataclass(frozen=True)
class Fig2Point:
    """One strategy x prefetch x limit_all_gathers configuration.

    ``mem_gib`` is the modeled per-GCD footprint — constant across
    prefetch/limit variants of one strategy, but load-bearing between
    strategies (the paper picks HYBRID_2GPUs for the ViT-5B precisely
    because of this column).
    """

    strategy: str
    prefetch: BackwardPrefetch
    limit_all_gathers: bool
    ips: float
    comm_share: float = 0.0
    mem_gib: float = 0.0


def run_fig2(n_nodes: int = N_NODES) -> list[Fig2Point]:
    """Run the Fig. 2 strategy x prefetch x limit_all_gathers sweep.

    Every configuration is published to a recording telemetry bus as
    ``perf.*`` gauges; each point's communication share is then read
    back from the bus (:func:`repro.telemetry.comm_share_from_events`),
    not re-derived locally.
    """
    cfg = get_vit_config("vit-5b")
    machine = frontier_machine(n_nodes)
    bus = TelemetryBus(RecordingSink())
    points = []
    for label in STRATEGY_LABELS:
        strategy, shard_size = parse_strategy(label)
        for prefetch in BackwardPrefetch:
            for limit in (False, True):
                sim = TrainStepSimulator(
                    cfg,
                    machine,
                    strategy,
                    shard_size=shard_size,
                    params=PerfParams(prefetch=prefetch, limit_all_gathers=limit),
                )
                breakdown = sim.simulate()
                attrs = dict(
                    strategy=label, prefetch=prefetch.value, limit=limit
                )
                publish_breakdown(bus, breakdown, **attrs)
                points.append(
                    Fig2Point(
                        strategy=label,
                        prefetch=prefetch,
                        limit_all_gathers=limit,
                        ips=breakdown.ips,
                        comm_share=comm_share_from_events(
                            bus.sink.events, **attrs
                        ),
                        mem_gib=breakdown.memory.total / GIB,
                    )
                )
    return points


def best_configuration(points: list[Fig2Point]) -> Fig2Point:
    """Highest-throughput point; exact ties (SHARD_GRAD_OP is prefetch-
    insensitive) resolve toward the recommended BACKWARD_PRE + limit."""
    order = list(BackwardPrefetch)
    return max(
        points,
        key=lambda p: (p.ips, order.index(p.prefetch), p.limit_all_gathers),
    )


def render_fig2(points: list[Fig2Point] | None = None) -> str:
    """Render Fig. 2 as a text table plus the best configuration."""
    points = points if points is not None else run_fig2()
    body = render_table(
        headers=[
            "strategy", "prefetch", "limit_all_gathers", "ips", "comm %",
            "mem GiB",
        ],
        rows=[
            [
                p.strategy,
                p.prefetch.value,
                str(p.limit_all_gathers),
                round(p.ips, 1),
                round(100 * p.comm_share, 1),
                round(p.mem_gib, 1),
            ]
            for p in points
        ],
        title=f"Fig 2: ViT-5B on {N_NODES} nodes, local batch 32",
        precision=1,
    )
    best = best_configuration(points)
    return (
        f"{body}\nbest: {best.strategy} / {best.prefetch.value} / "
        f"limit_all_gathers={best.limit_all_gathers} "
        f"(paper: BACKWARD_PRE + limit_all_gathers)"
    )
