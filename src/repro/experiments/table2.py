"""Table II — dataset inventory (paper originals vs our analogues).

Builds every dataset and verifies/reports the realized sizes, class
counts, and training ratios against both the scaled recipe and the
paper's originals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import DATASET_SPECS, SplitDataset, build_dataset
from repro.experiments.report import render_table

__all__ = ["Table2Row", "run_table2", "render_table2"]


@dataclass(frozen=True)
class Table2Row:
    name: str
    classes: int
    train: int
    test: int
    train_ratio: float
    paper_classes: int
    paper_train: int
    paper_test: int
    paper_train_ratio: float


def run_table2(img_size: int = 32, seed: int = 0) -> list[Table2Row]:
    """Build every probe dataset and collect its realized sizes."""
    rows = []
    for name, spec in DATASET_SPECS.items():
        data: SplitDataset = build_dataset(name, img_size=img_size, seed=seed)
        rows.append(
            Table2Row(
                name=name,
                classes=data.train.n_classes,
                train=len(data.train),
                test=len(data.test),
                train_ratio=data.spec.train_ratio,
                paper_classes=spec.paper_classes,
                paper_train=spec.paper_train,
                paper_test=spec.paper_test,
                paper_train_ratio=spec.paper_train_ratio,
            )
        )
    return rows


def render_table2(rows: list[Table2Row] | None = None) -> str:
    """Render Table II (analogue vs paper splits)."""
    rows = rows if rows is not None else run_table2()
    return render_table(
        headers=[
            "dataset", "cls", "train", "test", "TR%",
            "paper cls", "paper train", "paper test", "paper TR%",
        ],
        rows=[
            [
                r.name, r.classes, r.train, r.test, round(100 * r.train_ratio, 1),
                r.paper_classes, r.paper_train, r.paper_test,
                round(100 * r.paper_train_ratio, 1),
            ]
            for r in rows
        ],
        title="Table II: probe datasets (scaled analogues; TR preserved)",
        precision=1,
    )
