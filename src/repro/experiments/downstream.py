"""Shared downstream pipeline: pretrain the proxy suite once, probe many.

Figures 5/6 and Table III all consume the same four MAE-pretrained proxy
models ("proxy-base/huge/1b/3b" standing in for ViT-Base/Huge/1B/3B; see
DESIGN.md). This module pretrains them with one shared recipe —
hyper-parameters identical across sizes, as the paper requires for a
fair scale comparison — and caches checkpoints + loss histories on disk
so every bench process reuses them.

Recipe (the proxy-scale analogue of the paper's Section V-B settings):
AdamW with cosine schedule and 10% warmup, global batch 64, 75% mask
ratio, per-patch-normalized MSE, on the MillionAID-analogue corpus.
The base LR (1e-3) is the paper's 1.5e-4 scaled for the tiny widths;
it is the only knob that differs from the paper's absolute values and
it is shared by all four models.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field

import numpy as np

from repro.comm.world import World
from repro.core.checkpoints import checkpoint_exists, load_checkpoint, save_checkpoint
from repro.core.config import PROXY_VARIANTS, get_mae_config
from repro.core.fsdp import FSDPEngine
from repro.core.sharding import ShardingStrategy
from repro.core.trainer import MAEPretrainer
from repro.data.datasets import build_pretraining_corpus
from repro.data.transforms import normalize_images
from repro.models.mae import MaskedAutoencoder
from repro.optim.adamw import AdamW

__all__ = ["DownstreamRecipe", "PretrainedModel", "pretrain_suite", "DEFAULT_CACHE_DIR"]

logger = logging.getLogger("repro.experiments.downstream")

DEFAULT_CACHE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__)))),
    ".pretrain_cache",
)

#: Mapping from proxy names to the paper model each stands in for.
PAPER_NAME = {
    "proxy-base": "ViT-Base",
    "proxy-huge": "ViT-Huge",
    "proxy-1b": "ViT-1B",
    "proxy-3b": "ViT-3B",
}


@dataclass(frozen=True)
class DownstreamRecipe:
    """Everything that defines one pretraining run of the suite."""

    corpus_images: int = 2048
    img_size: int = 32
    global_batch: int = 64
    steps: int = 800
    base_lr: float = 1e-3
    seed: int = 0
    model_names: tuple[str, ...] = tuple(PROXY_VARIANTS)

    def cache_key(self, model_name: str) -> str:
        """Checkpoint-cache key encoding every recipe field."""
        return (
            f"{model_name}-c{self.corpus_images}-i{self.img_size}"
            f"-b{self.global_batch}-s{self.steps}-lr{self.base_lr}-seed{self.seed}"
        )


@dataclass
class PretrainedModel:
    """One pretrained proxy model plus its training record."""

    name: str
    model: MaskedAutoencoder
    losses: list[float] = field(default_factory=list)
    steps_per_epoch: int = 0

    @property
    def paper_name(self) -> str:
        """The paper model this proxy stands in for."""
        return PAPER_NAME.get(self.name, self.name)


def _pretrain_one(
    name: str, corpus: np.ndarray, recipe: DownstreamRecipe
) -> PretrainedModel:
    cfg = get_mae_config(name)
    model = MaskedAutoencoder(
        cfg, rng=np.random.default_rng(recipe.seed + 1)
    )
    engine = FSDPEngine(
        model,
        World(1, ranks_per_node=1),
        ShardingStrategy.NO_SHARD,
        optimizer_factory=lambda params: AdamW(params, lr=recipe.base_lr),
    )
    trainer = MAEPretrainer(
        engine, corpus, global_batch=recipe.global_batch, seed=recipe.seed
    )
    result = trainer.run(n_steps=recipe.steps)
    return PretrainedModel(
        name=name,
        model=model,
        losses=result.losses,
        steps_per_epoch=trainer.steps_per_epoch,
    )


def pretrain_suite(
    recipe: DownstreamRecipe | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    verbose: bool = True,
) -> dict[str, PretrainedModel]:
    """Pretrain (or load from cache) the whole proxy suite."""
    recipe = recipe if recipe is not None else DownstreamRecipe()
    corpus_raw = build_pretraining_corpus(
        n_images=recipe.corpus_images, img_size=recipe.img_size, seed=recipe.seed
    )
    corpus = normalize_images(corpus_raw.images)
    out: dict[str, PretrainedModel] = {}
    for name in recipe.model_names:
        ckpt = (
            os.path.join(cache_dir, recipe.cache_key(name)) if cache_dir else None
        )
        if ckpt and checkpoint_exists(ckpt):
            cfg = get_mae_config(name)
            model = MaskedAutoencoder(cfg, rng=np.random.default_rng(recipe.seed + 1))
            meta = load_checkpoint(model, ckpt)
            out[name] = PretrainedModel(
                name=name,
                model=model,
                losses=list(meta["losses"]),
                steps_per_epoch=int(meta["steps_per_epoch"]),
            )
            if verbose:
                logger.info("loaded cached %s", name)
            continue
        if verbose:
            logger.info("pretraining %s (%d steps)...", name, recipe.steps)
        pm = _pretrain_one(name, corpus, recipe)
        out[name] = pm
        if ckpt:
            save_checkpoint(
                pm.model,
                ckpt,
                meta={
                    "losses": pm.losses,
                    "steps_per_epoch": pm.steps_per_epoch,
                    "recipe": json.loads(
                        json.dumps(
                            {
                                k: getattr(recipe, k)
                                for k in (
                                    "corpus_images",
                                    "img_size",
                                    "global_batch",
                                    "steps",
                                    "base_lr",
                                    "seed",
                                )
                            }
                        )
                    ),
                },
            )
    return out
