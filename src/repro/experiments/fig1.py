"""Fig. 1 — weak scaling of the MAE ViT-3B pretraining workload.

Reproduces the four curves of the paper's Figure 1 on 1..64 Frontier
nodes with FSDP NO_SHARD and local batch 32: *real* application,
*syn*(thetic data: compute + communication), *syn no comm*, *IO*
(dataloader in isolation), plus the *ideal* linear extrapolation.

Expected shapes (paper Section IV-A):

- IO is faster than syn at every node count and the (absolute) gap grows
  with scale -> the application is never IO-bound;
- syn-no-comm tracks ideal; syn falls away as communication grows,
  reaching ~22% of the step at 64 nodes;
- real sits just below syn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MAEConfig, get_mae_config
from repro.core.scaling import ScalingSeries, run_weak_scaling
from repro.experiments.report import render_series
from repro.telemetry import (
    RecordingSink,
    TelemetryBus,
    TelemetryEvent,
    comm_share_from_events,
)

__all__ = ["Fig1Result", "run_fig1", "render_fig1", "DEFAULT_NODE_GRID"]

DEFAULT_NODE_GRID = [1, 2, 4, 8, 16, 32, 64]

#: 512 px in the paper; patch-14 models need a multiple of 14 -> 504.
MAE_IMG_SIZE = 504


@dataclass
class Fig1Result:
    """The Fig. 1 sweep: config, series, and the published bus events."""

    mae: MAEConfig
    series: ScalingSeries
    events: list[TelemetryEvent] = field(default_factory=list)

    @property
    def node_counts(self) -> list[int]:
        """Node counts of the sweep."""
        return self.series.node_counts

    def curves(self) -> dict[str, list[float]]:
        """The figure's five series keyed by curve name."""
        pts = [p.breakdown for p in self.series.points]
        return {
            "real": [b.ips_real for b in pts],
            "syn": [b.ips for b in pts],
            "syn_no_comm": [b.ips_no_comm for b in pts],
            "io": [b.ips_io for b in pts],
            "ideal": self.series.ideal_ips(),
        }

    def memory_per_gcd(self) -> list[float]:
        """Modeled per-GCD memory footprint (GiB) at each node count.

        Weak scaling at NO_SHARD keeps the footprint flat — nothing is
        sharded — which is why the paper's larger models need the
        sharded strategies (and, at the margin, bf16's thinner
        activations) to fit at all.
        """
        from repro.utils.units import GIB

        return [p.breakdown.memory.total / GIB for p in self.series.points]

    def comm_fractions(self) -> list[float]:
        """Exposed-communication share per node count.

        Computed from the ``perf.*`` gauges the sweep published to the
        telemetry bus (falls back to the breakdowns for results built
        without events); the two sources agree exactly.
        """
        if self.events:
            return [
                comm_share_from_events(self.events, nodes=n)
                for n in self.node_counts
            ]
        return [p.breakdown.comm_fraction for p in self.series.points]


def run_fig1(node_counts: list[int] | None = None) -> Fig1Result:
    """Run the Fig. 1 weak-scaling sweep (MAE ViT-3B, NO_SHARD).

    The sweep runs with a recording telemetry bus attached; the returned
    result carries the raw ``perf.*`` gauge events alongside the series.
    """
    nodes = node_counts if node_counts is not None else DEFAULT_NODE_GRID
    mae = get_mae_config("vit-3b", img_size=MAE_IMG_SIZE)
    bus = TelemetryBus(RecordingSink())
    series = run_weak_scaling(mae, "NO_SHARD", nodes, telemetry=bus)
    return Fig1Result(mae=mae, series=series, events=list(bus.sink.events))


def render_fig1(result: Fig1Result | None = None) -> str:
    """Render Fig. 1 as a table, chart, and communication-share line."""
    from repro.experiments.asciiplot import line_chart

    result = result if result is not None else run_fig1()
    curves = result.curves()
    body = render_series(
        "nodes",
        result.node_counts,
        curves,
        title="Fig 1: MAE ViT-3B weak scaling, NO_SHARD, local batch 32 (ips)",
    )
    chart = line_chart(
        result.node_counts,
        curves,
        title="ips vs nodes (log-log)",
        logx=True,
        logy=True,
    )
    comm = ", ".join(
        f"{n}n={100 * f:.1f}%"
        for n, f in zip(result.node_counts, result.comm_fractions())
    )
    mem = ", ".join(
        f"{n}n={m:.1f}GiB"
        for n, m in zip(result.node_counts, result.memory_per_gcd())
    )
    return (
        f"{body}\n\n{chart}\n\ncommunication share of step: {comm}\n"
        "(paper: ~22% at 64 nodes)\n"
        f"memory footprint per GCD: {mem}"
    )
