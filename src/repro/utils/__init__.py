"""Shared utilities: deterministic RNG management, unit formatting, timers."""

from repro.utils.rng import RngPool, spawn_rng
from repro.utils.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    format_bytes,
    format_count,
    format_time,
)

__all__ = [
    "RngPool",
    "spawn_rng",
    "GB",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "format_bytes",
    "format_count",
    "format_time",
]
