"""Lightweight profiling helpers ("no optimization without measuring").

A :class:`SectionProfiler` accumulates wall time per named section with
negligible overhead; the trainer uses it to split steps into data /
forward-backward / reduction / optimizer time, and tests use it to keep
hot paths honest.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "SectionProfiler"]


class Timer:
    """Context manager measuring one wall-clock span."""

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class SectionProfiler:
    """Accumulates time and call counts per named section."""

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str):
        """Context manager timing one named section."""
        start = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + dt
            self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total(self) -> float:
        """Total seconds across sections."""
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Share of total time per section (empty profiler -> empty)."""
        t = self.total
        if t <= 0:
            return {}
        return {k: v / t for k, v in self.seconds.items()}

    def report(self) -> str:
        """One line per section, largest first."""
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        width = max((len(k) for k in self.seconds), default=0)
        return "\n".join(
            f"{k.rjust(width)}: {v:9.4f} s  x{self.calls[k]}" for k, v in rows
        )

    def reset(self) -> None:
        """Clear all accumulated sections."""
        self.seconds.clear()
        self.calls.clear()
