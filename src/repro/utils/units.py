"""Byte / count / time unit constants and human-readable formatting."""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_count",
    "format_time",
]

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1024
MIB = 1024**2
GIB = 1024**3


def format_bytes(n: float) -> str:
    """Format a byte count using binary units (matches GPU memory reporting)."""
    n = float(n)
    for unit, div in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def format_count(n: float) -> str:
    """Format a large count, e.g. parameter totals (3.07e9 -> '3.07B')."""
    n = float(n)
    if abs(n) >= 1e9:
        return f"{n / 1e9:.2f}B"
    if abs(n) >= 1e6:
        return f"{n / 1e6:.2f}M"
    if abs(n) >= 1e3:
        return f"{n / 1e3:.0f}K"
    return f"{n:.0f}"


def format_time(seconds: float) -> str:
    """Format a duration in the most readable unit."""
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    if abs(s) >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.1f} us"
