"""Deterministic random-number management.

Every stochastic component in the library (data generation, weight init,
MAE masking, dataloader shuffling) draws from an explicitly seeded
``numpy.random.Generator``. Components never touch global NumPy state, so
any experiment is exactly reproducible from its seed and two experiments
never interact through hidden RNG state.

``spawn_rng`` derives independent child generators from a parent seed via
``numpy.random.SeedSequence`` spawning, which guarantees statistical
independence between streams (e.g. one stream per dataloader worker, or
per data-parallel rank).
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rng", "RngPool"]


def spawn_rng(seed: int | np.random.SeedSequence, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Parameters
    ----------
    seed:
        Parent seed (int) or an existing ``SeedSequence``.
    n:
        Number of independent child streams to create.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in ss.spawn(n)]


class RngPool:
    """Named, lazily created independent RNG streams under one root seed.

    Examples
    --------
    >>> pool = RngPool(1234)
    >>> a = pool.get("weights")
    >>> b = pool.get("masking")
    >>> a is pool.get("weights")
    True
    """

    def __init__(self, seed: int):
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self.seed = seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            # Derive a child seed from the root entropy plus a stable hash of
            # the name so stream identity does not depend on creation order.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            key = int(digest.astype(np.uint64).sum() * 1000003 + len(name))
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(key,)
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def fork(self, name: str, n: int) -> list[np.random.Generator]:
        """Create ``n`` independent streams namespaced under ``name``."""
        return [self.get(f"{name}/{i}") for i in range(n)]

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every materialized stream.

        Captures each generator's bit-generator state (PCG64 position),
        so restoring mid-sequence continues the exact draw sequence an
        uninterrupted run would have produced.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: dict(g.bit_generator.state)
                for name, g in self._streams.items()
            },
        }

    def load_state_dict(self, sd: dict) -> None:
        """Restore stream cursors saved from a pool with the same seed.

        Streams absent from the snapshot are left untouched; streams in
        the snapshot are created on demand (so a fresh pool restores
        completely).
        """
        if int(sd["seed"]) != self.seed:
            raise ValueError(
                f"state was saved from a pool seeded {sd['seed']}, "
                f"this pool is seeded {self.seed}"
            )
        for name, state in sd["streams"].items():
            self.get(name).bit_generator.state = state
