"""Fleet pricing: what a replica-hour costs, per accelerator class.

The capacity planner trades SLO headroom against spend, which needs a
price on every :class:`~repro.hardware.gpu.GpuSpec` it may deploy. We
anchor the scale on public allocation pricing for MI250X-class nodes
(cloud HPC list prices put one MI250X package in the low single-digit
USD/hour; one GCD is half a package) and derive the rest of the catalog
from the cost model itself: price scales with *achievable* throughput
(peak FLOP/s × base efficiency), plus a premium/discount reflecting
that newer, faster parts price above their raw FLOP ratio and older
parts below it. The absolute dollars are a calibration constant — every
planner decision and every reconciliation gate depends only on ratios
and tolerances, exactly like the perf model's time constants.

:data:`DEFAULT_FLEET` is a small heterogeneous catalog (one paper-era
GCD, one budget part, one premium part) whose price-per-capacity
ordering is deliberately non-trivial: the cheapest part is not the
cheapest *per image*, so the planner's optimization is a real choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GpuSpec

__all__ = [
    "BASE_GCD_USD_PER_HOUR",
    "GcdPrice",
    "usd_per_gcd_hour",
    "DEFAULT_FLEET",
]

#: Calibration anchor: one MI250X GCD-hour, USD.
BASE_GCD_USD_PER_HOUR = 1.10


def usd_per_gcd_hour(
    gpu: GpuSpec, premium: float = 1.0, base: float = BASE_GCD_USD_PER_HOUR
) -> float:
    """Hourly price of one GCD, scaled from the MI250X anchor.

    Scales ``base`` by the spec's achievable-throughput ratio against
    the reference GCD (peak × base efficiency — the same quantity the
    service-time model divides by), times a market ``premium``.
    """
    if premium <= 0:
        raise ValueError(f"premium must be positive, got {premium}")
    ref = GpuSpec()
    ratio = (gpu.peak_flops * gpu.base_efficiency) / (
        ref.peak_flops * ref.base_efficiency
    )
    return base * ratio * premium


@dataclass(frozen=True)
class GcdPrice:
    """One priced accelerator class in the planner's catalog."""

    name: str
    gpu: GpuSpec
    usd_per_hour: float

    def __post_init__(self) -> None:
        if self.usd_per_hour <= 0:
            raise ValueError(
                f"usd_per_hour must be positive, got {self.usd_per_hour}"
            )

    @classmethod
    def from_spec(cls, name: str, gpu: GpuSpec, premium: float = 1.0) -> "GcdPrice":
        """Price a spec through :func:`usd_per_gcd_hour`."""
        return cls(name=name, gpu=gpu, usd_per_hour=usd_per_gcd_hour(gpu, premium))


#: Heterogeneous default catalog: the paper-era GCD, a budget part at a
#: sub-linear price, and a premium part at a super-linear price.
DEFAULT_FLEET: tuple[GcdPrice, ...] = (
    GcdPrice.from_spec("mi250x-gcd", GpuSpec(), premium=1.0),
    GcdPrice.from_spec(
        "budget-gcd",
        GpuSpec(
            name="budget-gcd",
            peak_flops=45.0e12,
            hbm_bytes=32 * 1024**3,
            hbm_bw=1.2e12,
            base_efficiency=0.45,
            half_saturation_width=800.0,
        ),
        premium=0.85,
    ),
    GcdPrice.from_spec(
        "premium-gcd",
        GpuSpec(
            name="premium-gcd",
            peak_flops=190.0e12,
            hbm_bytes=128 * 1024**3,
            hbm_bw=3.2e12,
            base_efficiency=0.55,
            half_saturation_width=600.0,
        ),
        premium=1.30,
    ),
)
