"""Accelerator (GCD) specification and achievable-throughput model.

Frontier's MI250X package contains two Graphics Compute Dies; the system
exposes each GCD as an independent GPU with 64 GB HBM and ~95.7 TFLOP/s
peak fp32 matrix throughput (191.5 TFLOP/s per MI250X package). Dense
transformer workloads never reach peak: achieved throughput depends on
matmul shapes, and small models with narrow matrices run at markedly
lower efficiency. We model this with a saturating efficiency curve in the
model width, calibrated against the paper's per-node ips baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec"]


@dataclass(frozen=True)
class GpuSpec:
    """One GCD.

    Attributes
    ----------
    peak_flops:
        Peak dense fp32 matrix FLOP/s.
    hbm_bytes:
        High-bandwidth-memory capacity in bytes.
    hbm_bw:
        HBM bandwidth in bytes/s (per GCD).
    base_efficiency:
        Fraction of peak achieved by an extremely wide, compute-saturated
        matmul stream.
    half_saturation_width:
        Model width at which efficiency reaches half of
        ``base_efficiency`` (captures launch/memory-bound losses for
        narrow layers).
    """

    name: str = "MI250X-GCD"
    peak_flops: float = 95.7e12
    hbm_bytes: float = 64 * 1024**3
    hbm_bw: float = 1.6e12
    base_efficiency: float = 0.50
    half_saturation_width: float = 700.0

    def efficiency(self, width: float) -> float:
        """Achieved fraction of peak for a transformer of embedding ``width``."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        return self.base_efficiency * width / (width + self.half_saturation_width)

    def achieved_flops(self, width: float) -> float:
        """Achievable FLOP/s for a transformer of embedding ``width``."""
        return self.peak_flops * self.efficiency(width)

    def time_for_flops(self, flops: float, width: float) -> float:
        """Seconds to execute ``flops`` at the width-dependent efficiency."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return flops / self.achieved_flops(width)
