"""The Frontier machine description and factory.

Published characteristics (OLCF, and Section III-B of the paper):

- 9408 nodes, one 64-core AMD EPYC CPU each;
- 4x AMD Instinct MI250X per node; each MI250X has two GCDs, so the
  application sees 8 GPUs per node, each with 64 GB HBM;
- Infinity Fabric GPU-GPU at 50 GB/s between packages;
- Slingshot-11 interconnect at 100 GB/s per node.

:func:`frontier_machine` assembles a :class:`Machine` scoped to the node
count of one experiment, wiring the topology graph, the GCD spec, and a
collective cost model with bandwidths derived from the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.comm.cost_model import CollectiveCostModel
from repro.comm.world import World
from repro.hardware.gpu import GpuSpec
from repro.hardware.topology import build_machine_graph

__all__ = ["FrontierSpec", "FRONTIER", "Machine", "frontier_machine"]


@dataclass(frozen=True)
class FrontierSpec:
    """System-wide constants for Frontier."""

    total_nodes: int = 9408
    gcds_per_node: int = 8
    gcds_per_package: int = 2
    in_package_bw: float = 200e9
    intra_node_bw: float = 50e9
    nic_bw: float = 100e9
    in_package_latency: float = 1e-6
    intra_node_latency: float = 5e-6
    inter_node_latency: float = 12e-6
    #: Per-hop alphas of the pipelined ring collectives (smaller than the
    #: one-shot link latencies above because chunks are pipelined).
    intra_hop_alpha: float = 1.5e-6
    inter_hop_alpha: float = 12e-6
    #: Achieved fraction of NIC line rate for RCCL traffic (the
    #: RCCL + libfabric stack of the paper's era measured well below
    #: Slingshot-11 line rate).
    nic_efficiency: float = 0.65
    gpu: GpuSpec = field(default_factory=GpuSpec)


#: The canonical Frontier description used throughout the library.
FRONTIER = FrontierSpec()


@dataclass(frozen=True)
class Machine:
    """A job-scoped slice of a machine: N nodes plus derived models."""

    spec: FrontierSpec
    n_nodes: int
    graph: nx.Graph = field(compare=False, hash=False)
    cost_model: CollectiveCostModel = field(compare=False)

    @property
    def n_gpus(self) -> int:
        """GCDs in this machine slice."""
        return self.n_nodes * self.spec.gcds_per_node

    @property
    def gpu(self) -> GpuSpec:
        """The GCD specification."""
        return self.spec.gpu

    def world(self) -> World:
        """The rank layout for a job occupying this machine slice."""
        return World(size=self.n_gpus, ranks_per_node=self.spec.gcds_per_node)


def frontier_machine(n_nodes: int, spec: FrontierSpec = FRONTIER) -> Machine:
    """Build the machine model for a job on ``n_nodes`` Frontier nodes.

    The collective cost model's inter-node bandwidth is the NIC bandwidth
    divided by the MI250X packages per node (4): on Frontier each node's
    100 GB/s Slingshot NIC capacity is split across the four NIC-attached
    packages, so a single ring crossing the node boundary sees ~25 GB/s.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_nodes > spec.total_nodes:
        raise ValueError(
            f"requested {n_nodes} nodes but the machine has only {spec.total_nodes}"
        )
    graph = build_machine_graph(
        n_nodes=n_nodes,
        gcds_per_node=spec.gcds_per_node,
        gcds_per_package=spec.gcds_per_package,
        in_package_bw=spec.in_package_bw,
        intra_node_bw=spec.intra_node_bw,
        nic_bw=spec.nic_bw,
        in_package_latency=spec.in_package_latency,
        intra_node_latency=spec.intra_node_latency,
        inter_node_latency=spec.inter_node_latency,
    )
    packages_per_node = spec.gcds_per_node // spec.gcds_per_package
    cost_model = CollectiveCostModel(
        intra_node_bw=spec.intra_node_bw,
        inter_node_bw=spec.nic_bw * spec.nic_efficiency / packages_per_node,
        intra_node_alpha=spec.intra_hop_alpha,
        inter_node_alpha=spec.inter_hop_alpha,
    )
    return Machine(spec=spec, n_nodes=n_nodes, graph=graph, cost_model=cost_model)
