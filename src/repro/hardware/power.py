"""Occupancy-driven GPU power / utilization / memory trace model.

Reproduces the paper's Fig. 4 bottom-left panel (rocm-smi traces for the
ViT-5B runs): per-GPU power, memory, and utilization sampled over time for
a given sharding strategy. The model maps the simulator's per-step
compute/communication occupancies to rocm-smi-like observables:

- *utilization* reports near 100% whenever kernels are resident (the
  paper notes ~100% for all strategies on synthetic data) — rocm-smi
  utilization counts "any kernel active", not FLOP efficiency;
- *power* scales with true arithmetic occupancy plus a smaller
  contribution from communication (link SerDes + DMA engines burn less
  than the matrix cores), so strategies that spend more wall time
  computing per byte moved draw more power, matching the paper's
  SHARD_GRAD_OP > FULL_SHARD ordering and HYBRID_2GPUs having the
  smallest footprint (fewest communication calls, shortest step);
- *memory* is the strategy's resident footprint from the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerModel", "PowerTrace"]


@dataclass(frozen=True)
class PowerTrace:
    """Sampled per-GPU trace of one training phase."""

    times_s: np.ndarray
    power_w: np.ndarray
    utilization_pct: np.ndarray
    memory_bytes: np.ndarray
    label: str = ""

    @property
    def mean_power(self) -> float:
        """Mean sampled power (W)."""
        return float(self.power_w.mean())

    @property
    def mean_utilization(self) -> float:
        """Mean sampled utilization (%)."""
        return float(self.utilization_pct.mean())

    def emit(self, telemetry, prefix: str = "hw") -> int:
        """Publish the trace as ``<prefix>.power_w`` / ``.utilization_pct``
        / ``.memory_bytes`` gauges on a telemetry bus (one triple per
        sample, the trace label attached), mirroring how a rocm-smi
        poller would feed a monitoring pipeline. Returns the number of
        gauge events emitted (0 when the bus is disabled)."""
        if not telemetry.enabled:
            return 0
        n = 0
        for i in range(len(self.times_s)):
            t = float(self.times_s[i])
            telemetry.gauge(
                f"{prefix}.power_w", float(self.power_w[i]), t=t, label=self.label
            )
            telemetry.gauge(
                f"{prefix}.utilization_pct",
                float(self.utilization_pct[i]),
                t=t,
                label=self.label,
            )
            telemetry.gauge(
                f"{prefix}.memory_bytes",
                float(self.memory_bytes[i]),
                t=t,
                label=self.label,
            )
            n += 3
        return n


@dataclass(frozen=True)
class PowerModel:
    """Maps occupancies to rocm-smi-style observables for one GCD.

    Attributes
    ----------
    idle_power_w:
        Power with no kernels resident.
    max_power_w:
        Package power at full matrix-core occupancy (MI250X is 500 W per
        package; we report per GCD).
    comm_power_fraction:
        Fraction of the dynamic range drawn by communication-only phases.
    """

    idle_power_w: float = 90.0
    max_power_w: float = 280.0
    comm_power_fraction: float = 0.45

    def power(self, compute_occupancy: float, comm_occupancy: float) -> float:
        """Average power for one step with given stream occupancies in [0,1]."""
        for name, v in (("compute", compute_occupancy), ("comm", comm_occupancy)):
            if not 0.0 <= v <= 1.0 + 1e-9:
                raise ValueError(f"{name} occupancy must be in [0, 1], got {v}")
        dynamic = self.max_power_w - self.idle_power_w
        # Overlapped portions count once at the higher (compute) rate.
        comm_only = max(0.0, comm_occupancy - compute_occupancy)
        return (
            self.idle_power_w
            + dynamic * compute_occupancy
            + dynamic * self.comm_power_fraction * comm_only
        )

    def utilization(self, compute_occupancy: float, comm_occupancy: float) -> float:
        """rocm-smi 'GPU use' percentage: any-kernel-resident time share."""
        busy = min(1.0, compute_occupancy + max(0.0, comm_occupancy - compute_occupancy))
        return 100.0 * busy

    def trace(
        self,
        step_time_s: float,
        compute_occupancy: float,
        comm_occupancy: float,
        memory_bytes: float,
        n_steps: int = 50,
        samples_per_step: int = 4,
        label: str = "",
        jitter_seed: int = 0,
    ) -> PowerTrace:
        """Synthesize a sampled trace over ``n_steps`` identical steps.

        A small deterministic jitter makes the trace visually comparable
        to rocm-smi sampling noise without affecting means.
        """
        if step_time_s <= 0:
            raise ValueError(f"step_time_s must be positive, got {step_time_s}")
        n = n_steps * samples_per_step
        rng = np.random.Generator(np.random.PCG64(jitter_seed))
        t = np.arange(n) * (step_time_s / samples_per_step)
        p = self.power(compute_occupancy, comm_occupancy)
        u = self.utilization(compute_occupancy, comm_occupancy)
        power = p * (1.0 + 0.02 * rng.standard_normal(n))
        util = np.clip(u * (1.0 + 0.005 * rng.standard_normal(n)), 0.0, 100.0)
        mem = np.full(n, float(memory_bytes))
        return PowerTrace(
            times_s=t,
            power_w=power,
            utilization_pct=util,
            memory_bytes=mem,
            label=label,
        )
