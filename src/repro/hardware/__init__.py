"""Machine model of the Frontier supercomputer (and parametric variants).

- :mod:`repro.hardware.gpu` — one accelerator die (GCD): peak FLOP/s,
  HBM capacity, and a matmul-efficiency curve.
- :mod:`repro.hardware.topology` — hierarchical topology graph
  (GCD <-> MI250X package <-> node <-> interconnect) built on networkx.
- :mod:`repro.hardware.frontier` — published Frontier constants and the
  factory that assembles a :class:`Machine` plus the calibrated
  :class:`~repro.comm.cost_model.CollectiveCostModel`.
- :mod:`repro.hardware.power` — occupancy-driven GPU power/utilization
  trace model (reproduces the paper's Fig. 4 rocm-smi panel).
"""

from repro.hardware.frontier import FRONTIER, Machine, frontier_machine
from repro.hardware.gpu import GpuSpec
from repro.hardware.power import PowerModel, PowerTrace
from repro.hardware.topology import build_machine_graph, min_path_bandwidth

__all__ = [
    "GpuSpec",
    "Machine",
    "FRONTIER",
    "frontier_machine",
    "build_machine_graph",
    "min_path_bandwidth",
    "PowerModel",
    "PowerTrace",
]
