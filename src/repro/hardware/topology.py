"""Hierarchical machine topology as a networkx graph.

Nodes of the graph are hardware components (``gcd:<n>:<g>``,
``package:<n>:<p>``, ``node:<n>``, ``switch``); edges carry ``bandwidth``
(bytes/s, per direction) and ``latency`` (seconds) attributes. The graph
is a faithful miniature of Frontier's wiring:

- two GCDs inside an MI250X package, joined by in-package Infinity Fabric;
- four packages per node on the Infinity Fabric GPU-GPU mesh;
- one Slingshot-11 NIC hop from each node to the interconnect.

The collective cost model (:mod:`repro.comm.cost_model`) uses aggregate
numbers derived from this graph rather than walking it per message, but
the graph is the ground truth those aggregates are tested against, and it
supports arbitrary what-if machines (different node widths, link speeds).
"""

from __future__ import annotations

import networkx as nx

__all__ = [
    "build_machine_graph",
    "min_path_bandwidth",
    "path_latency",
    "gcd_name",
]


def gcd_name(node: int, gcd: int) -> str:
    """Canonical graph-node name for GCD ``gcd`` on machine node ``node``."""
    return f"gcd:{node}:{gcd}"


def build_machine_graph(
    n_nodes: int,
    gcds_per_node: int = 8,
    gcds_per_package: int = 2,
    in_package_bw: float = 200e9,
    intra_node_bw: float = 50e9,
    nic_bw: float = 100e9,
    in_package_latency: float = 1e-6,
    intra_node_latency: float = 5e-6,
    inter_node_latency: float = 12e-6,
) -> nx.Graph:
    """Assemble the component graph for a machine of ``n_nodes`` nodes.

    Bandwidths are per-direction bytes/s; Frontier defaults are the
    published figures (in-package Infinity Fabric 200 GB/s, GPU-GPU
    Infinity Fabric 50 GB/s, Slingshot-11 100 GB/s per node).
    """
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    if gcds_per_node % gcds_per_package != 0:
        raise ValueError(
            f"{gcds_per_node} GCDs/node not divisible by {gcds_per_package}/package"
        )
    g = nx.Graph()
    g.add_node("switch", kind="switch")
    packages_per_node = gcds_per_node // gcds_per_package
    for n in range(n_nodes):
        node_name = f"node:{n}"
        g.add_node(node_name, kind="node")
        g.add_edge(
            node_name,
            "switch",
            bandwidth=nic_bw,
            latency=inter_node_latency / 2,
            kind="nic",
        )
        for p in range(packages_per_node):
            pkg_name = f"package:{n}:{p}"
            g.add_node(pkg_name, kind="package")
            # Package-to-node edge models the Infinity Fabric GPU-GPU mesh
            # hop; all inter-package traffic on a node transits it.
            g.add_edge(
                pkg_name,
                node_name,
                bandwidth=intra_node_bw,
                latency=intra_node_latency / 2,
                kind="xgmi",
            )
            for d in range(gcds_per_package):
                gcd = p * gcds_per_package + d
                name = gcd_name(n, gcd)
                g.add_node(name, kind="gcd", node=n, package=p)
                g.add_edge(
                    name,
                    pkg_name,
                    bandwidth=in_package_bw,
                    latency=in_package_latency / 2,
                    kind="in_package",
                )
    return g


def min_path_bandwidth(graph: nx.Graph, src: str, dst: str) -> float:
    """Bottleneck bandwidth on the shortest path between two components."""
    path = nx.shortest_path(graph, src, dst)
    if len(path) < 2:
        return float("inf")
    return min(
        graph.edges[path[i], path[i + 1]]["bandwidth"] for i in range(len(path) - 1)
    )


def path_latency(graph: nx.Graph, src: str, dst: str) -> float:
    """Sum of link latencies on the shortest path between two components."""
    path = nx.shortest_path(graph, src, dst)
    return sum(
        graph.edges[path[i], path[i + 1]]["latency"] for i in range(len(path) - 1)
    )
