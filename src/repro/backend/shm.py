"""Shared-memory arenas: named segments, aligned views, leak-proof lifecycle.

The process backend keeps *all* cross-process state — flat parameters,
the ``(rounds, ranks, grad_numel)`` gradient staging block, per-worker
telemetry event buffers, and the microbatch data block — in POSIX shared
memory (``multiprocessing.shared_memory``), exposed to both sides as
zero-copy NumPy views. This module owns the lifecycle discipline:

- **Creation registers.** Every segment created through
  :meth:`ShmArena.create` lands in a module-level registry
  (``_LIVE_SEGMENTS``, lint-whitelisted) and an ``atexit`` sweep
  unlinks anything still registered at interpreter exit — a crash
  between engine construction and ``engine.close()`` cannot strand
  ``/dev/shm`` entries.
- **Attachment does not register.** Workers attach by name with the
  ``resource_tracker`` registration suppressed: the parent is the sole
  owner, and letting every child register the same name makes the
  tracker unlink (or warn about) segments it never owned. Suppression
  is scoped to the attach call.
- **Destroy is idempotent** and tolerates exported views: buffers are
  released best-effort (a lingering view downgrades ``close`` to a
  no-op; ``unlink`` — the part that frees ``/dev/shm`` — always runs).

``tests/test_backend/test_lifecycle.py`` asserts a clean ``/dev/shm``
and no orphan children after normal shutdown *and* after a
chaos-injected worker crash.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmArena", "plan_blocks", "attach_segment", "sweep_segments"]

#: Sub-block alignment (bytes). Cache-line aligned so adjacent blocks
#: written by different processes never share a line.
ALIGN = 64

#: Segments created (and therefore owned) by this process, by name.
#: Mutated at runtime by design — whitelisted in fork_safety_check.
_LIVE_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def _align(n: int) -> int:
    return -(-n // ALIGN) * ALIGN


def plan_blocks(sizes: dict[str, int]) -> tuple[dict[str, int], int]:
    """Lay out named blocks in one segment: ``(offsets, total_bytes)``.

    Each block starts on an :data:`ALIGN` boundary, in dict order.
    """
    offsets: dict[str, int] = {}
    cursor = 0
    for name, nbytes in sizes.items():
        if nbytes < 0:
            raise ValueError(f"block {name!r}: negative size {nbytes}")
        offsets[name] = cursor
        cursor += _align(nbytes)
    return offsets, max(cursor, 1)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment *without* resource-tracker registration.

    The creating process owns cleanup; a child that registered the same
    name would have the tracker second-guess (and on some interpreter
    versions prematurely unlink) the parent's segment at child exit.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def sweep_segments() -> list[str]:
    """Destroy every still-registered segment; returns the swept names.

    Runs at interpreter exit (``atexit``) as the backstop; normal
    shutdown paths call :meth:`ShmArena.destroy` explicitly and leave
    nothing for the sweep.
    """
    swept = []
    for name in list(_LIVE_SEGMENTS):
        seg = _LIVE_SEGMENTS.pop(name)
        try:
            seg.close()
        except BufferError:
            # A NumPy view is still exported somewhere; the mapping dies
            # with the process. unlink below is what frees /dev/shm.
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            continue
        swept.append(name)
    return swept


atexit.register(sweep_segments)


class ShmArena:
    """One named shared-memory segment with aligned zero-copy views.

    Use :meth:`create` in the owning (parent) process and
    :meth:`attach` in workers. Only the owner may :meth:`destroy`.
    """

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool):
        self._segment = segment
        self.owner = owner
        self.name = segment.name
        self._closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, nbytes: int, prefix: str = "repro") -> "ShmArena":
        """Allocate a fresh zero-filled segment and register it for sweep."""
        if nbytes < 1:
            raise ValueError(f"nbytes must be >= 1, got {nbytes}")
        name = f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        _LIVE_SEGMENTS[segment.name] = segment
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Map an existing segment (worker side; no tracker registration)."""
        return cls(attach_segment(name), owner=False)

    # -- access ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Mapped bytes (the kernel may round the request up)."""
        return self._segment.size

    def view(self, offset: int, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Zero-copy ndarray over ``[offset, offset + prod(shape) * itemsize)``."""
        dt = np.dtype(dtype)
        n = int(np.prod(shape, dtype=np.int64))
        end = offset + n * dt.itemsize
        if offset < 0 or end > self._segment.size:
            raise ValueError(
                f"view [{offset}, {end}) outside segment of {self._segment.size} bytes"
            )
        return np.ndarray(shape, dtype=dt, buffer=self._segment.buf, offset=offset)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (safe on both sides; idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:
            # Exported views keep the mapping alive until process exit;
            # the owner's unlink still frees the name.
            pass

    def destroy(self) -> None:
        """Owner-side teardown: unmap, unlink, deregister (idempotent)."""
        if not self.owner:
            raise RuntimeError(f"segment {self.name} is not owned by this arena")
        self.close()
        _LIVE_SEGMENTS.pop(self.name, None)
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass
