"""Execution backends: where rank-SPMD compute actually runs.

The engines in :mod:`repro.core` simulate a multi-rank job; this package
decides what executes a rank's forward/backward:

``inline`` (default)
    Every rank runs sequentially in the calling process — the original
    single-core behavior, now behind the same seam.
``process``
    Each rank is a spawned OS process sharing flat parameters and a
    gradient staging block through ``multiprocessing.shared_memory``
    (:mod:`repro.backend.process`). fp32 steps are bit-identical to
    inline (tested); multi-core hosts get real step-level parallelism.

Orthogonally, :class:`~repro.backend.threads.GemmPool` adds intra-op
thread parallelism to the fused GEMM kernels (blocked tiles over
released-GIL ``np.matmul``), sized by ``EngineConfig.intra_op_threads``
and shareable with :mod:`repro.serve` replica inference.

Select via config — engines call :func:`make_backend` internally::

    engine = make_engine(model, "full_shard", world=World(4),
                         config=EngineConfig(backend="process",
                                             intra_op_threads=4))
    ...
    engine.close()   # join workers, unlink /dev/shm segments
"""

from repro.backend.inline import ExecutionBackend, InlineBackend
from repro.backend.process import ProcessBackend, WorkerCrashError, WorkerStepError
from repro.backend.shm import ShmArena, sweep_segments
from repro.backend.threads import GemmPool

__all__ = [
    "BACKEND_CHOICES",
    "ExecutionBackend",
    "GemmPool",
    "InlineBackend",
    "ProcessBackend",
    "ShmArena",
    "WorkerCrashError",
    "WorkerStepError",
    "make_backend",
    "sweep_segments",
]

#: Backend names accepted by ``EngineConfig(backend=...)``.
BACKEND_CHOICES = ("inline", "process")


def make_backend(engine) -> ExecutionBackend:
    """Build the execution backend selected by ``engine.config.backend``."""
    backend = engine.config.backend
    if backend == "inline":
        return InlineBackend(engine)
    if backend == "process":
        return ProcessBackend(engine)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}"
    )
