"""Intra-op thread pool: blocked GEMM tiles over released-GIL ``matmul``.

NumPy's ``np.matmul`` releases the GIL while it runs, so several Python
threads issuing matmuls on *disjoint contiguous blocks* genuinely
overlap on a multi-core host. :class:`GemmPool` uses the simplest
decomposition with no K-split and therefore no re-association:
row-partition the left operand (and the output) for 2-D GEMMs,
batch-partition the leading axis for stacked (ViT attention) GEMMs.

**Determinism contract.** For a fixed ``n_threads`` the tile bounds are
a pure function of the operand shapes, so results are bit-identical
across runs and across execution backends (inline vs process) — the
property the cross-backend differential suite and the regression gates
rely on. *Across* thread counts, results may differ at the ulp level:
each tile is handed to BLAS as its own GEMM, and BLAS picks kernels (and
thus K-accumulation rounding) by operand shape/stride — observable with
strided operands such as ``weight.data.T``. This is the same semantics
``OMP_NUM_THREADS`` has for OpenBLAS/MKL: thread count is part of the
numerical configuration (see DESIGN §12).

Sizing comes from ``EngineConfig(intra_op_threads=...)`` (training) or
``InferenceServer(intra_op_threads=...)`` (serving); the pool is
attached to a model tree with :meth:`repro.models.module.Module.use_gemm_pool`
and every :class:`~repro.models.layers.Linear` / attention contraction
routes through it via ``Module._matmul``.

Because the bench host may have fewer physical cores than the pool has
threads, the pool keeps *critical-path* accounting: each tile task
measures its own ``time.thread_time`` (CPU time, scheduler-independent),
and per dispatch the pool accumulates both the serial sum and the
maximum over tiles. ``benchmarks/bench_multicore.py`` converts that into
an effective step time — what the same step costs wall-clock on a host
with enough cores (see DESIGN §12).

Pools pickle by construction arguments only (``__reduce__``), so a model
carrying a pool can be shipped to spawn workers — each process rebuilds
its own executor lazily.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

__all__ = ["GemmPool"]

#: Below this many rows (or batch items per thread) a dispatch is not
#: worth the task overhead; the GEMM runs fused on the calling thread.
MIN_ROWS_PER_THREAD = 16


class GemmPool:
    """Shared worker pool dispatching blocked matmul tiles.

    Parameters
    ----------
    n_threads:
        Worker threads. ``1`` makes every call a plain fused
        ``np.matmul`` (no executor is ever created).
    """

    def __init__(self, n_threads: int):
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        self.n_threads = n_threads
        self._ex: ThreadPoolExecutor | None = None
        #: Blocked dispatches issued (fused fallbacks not counted).
        self.dispatches = 0
        #: Calls answered fused (pool of 1, tiny shapes, odd broadcasts).
        self.fused_calls = 0
        #: Sum of per-tile CPU seconds across all dispatches.
        self.serial_s = 0.0
        #: Sum over dispatches of the *slowest* tile's CPU seconds — the
        #: critical path a fully-parallel host would pay.
        self.effective_s = 0.0

    def __reduce__(self):
        return (GemmPool, (self.n_threads,))

    # -- internals ---------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        if self._ex is None:
            self._ex = ThreadPoolExecutor(
                max_workers=self.n_threads, thread_name_prefix="gemm"
            )
        return self._ex

    @staticmethod
    def _tile(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> float:
        t0 = time.thread_time()
        np.matmul(a, b, out=out)
        return time.thread_time() - t0

    def _dispatch(self, tasks: list[tuple[np.ndarray, np.ndarray, np.ndarray]]) -> None:
        ex = self._executor()
        times = [f.result() for f in [ex.submit(self._tile, *t) for t in tasks]]
        self.dispatches += 1
        self.serial_s += sum(times)
        self.effective_s += max(times)

    def _blocks(self, n: int) -> list[slice]:
        """Split ``range(n)`` into at most ``n_threads`` contiguous runs."""
        n_blocks = min(self.n_threads, n)
        per = -(-n // n_blocks)
        return [slice(i, min(i + per, n)) for i in range(0, n, per)]

    # -- public ------------------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``np.matmul(a, b, out=out)``, tiled across the pool.

        2-D products partition rows of ``a``/``out``; stacked products
        (``ndim >= 3`` with matching leading axes) partition the leading
        batch axis. Anything else — including shapes too small to
        amortize a task hop — runs fused. Tile bounds depend only on
        shapes and ``n_threads``, so a given pool size is deterministic
        (see the module docstring for the exact contract).
        """
        if self.n_threads == 1:
            self.fused_calls += 1
            return np.matmul(a, b, out=out)
        if a.ndim == 2 and b.ndim == 2:
            m = a.shape[0]
            if m >= 2 * MIN_ROWS_PER_THREAD and m >= 2:
                self._dispatch([(a[s], b, out[s]) for s in self._blocks(m)])
                return out
        elif (
            a.ndim >= 3
            and b.ndim == a.ndim
            and out.ndim == a.ndim
            and a.shape[0] == b.shape[0] == out.shape[0] >= 2
        ):
            self._dispatch(
                [(a[s], b[s], out[s]) for s in self._blocks(a.shape[0])]
            )
            return out
        self.fused_calls += 1
        return np.matmul(a, b, out=out)

    def stats(self) -> dict:
        """Counter snapshot (see attribute docs)."""
        return {
            "n_threads": self.n_threads,
            "dispatches": self.dispatches,
            "fused_calls": self.fused_calls,
            "serial_s": self.serial_s,
            "effective_s": self.effective_s,
        }

    def close(self) -> None:
        """Shut the executor down (idempotent; a later ``matmul`` lazily
        recreates it)."""
        if self._ex is not None:
            self._ex.shutdown(wait=True)
            self._ex = None
