"""The shared-memory multiprocess execution backend.

Each rank of the simulated world becomes a real OS process (explicit
``spawn`` context — fork would duplicate NumPy/BLAS state and any live
thread pools). The division of labor keeps every numerical guarantee of
the inline engines intact:

- **Workers own rank compute.** Each worker holds a full model replica
  whose parameters are zero-copy views into one shared flat-parameter
  block, runs ``step_fn`` for its rank's microbatch, and writes its
  outbound (loss-scaled/quantized) gradient contribution into its
  ``(round, rank)`` row of a shared gradient staging block.
- **The parent owns everything else.** Reduction consumes the staged
  rows *through the engine's unchanged deterministic schedule* (the
  same ``np.stack`` direct reduction / ring decomposition over the same
  contribution order — see DESIGN §12 for the determinism argument), so
  an fp32 process-backend step is bit-identical to the inline backend.
  Optimizer, collectives accounting, retry/fault machinery, loss
  scaling, and checkpointing all run unchanged in the parent; optimizer
  writes land in the shared parameter block, so workers see the new
  weights with no broadcast copy.

Synchronization is event-style over per-worker pipes: one round command
fans out, one completion event per rank fans in; the shared blocks are
written and read in strictly alternating phases, so no locks are needed.
Microbatch payloads travel through a separate data segment (ndarray
leaves land in shared memory; the structural skeleton rides the pipe).

Telemetry fans in per round: workers record spans/counters on a local
bus, serialize them into a per-worker shared event buffer, and the
parent replays them onto the rank-0 bus (:meth:`TelemetryBus.merge`)
tagged with the originating rank.

Failure semantics: a ``step_fn`` exception inside a worker surfaces as
:class:`WorkerStepError` (traceback attached) after the worker has
released its activation caches and stays serviceable; a dead worker
(crash, kill, timeout) raises :class:`WorkerCrashError` and poisons the
backend — ``engine.close()`` (or the ``atexit`` sweep) reclaims every
process and ``/dev/shm`` segment either way.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time
import traceback
from typing import Any, Sequence

import numpy as np

from repro.backend.inline import ExecutionBackend
from repro.backend.shm import ALIGN, ShmArena, plan_blocks
from repro.telemetry.bus import RecordingSink, TelemetryBus, TelemetryEvent

__all__ = ["ProcessBackend", "WorkerCrashError", "WorkerStepError"]

#: Bytes reserved per worker for one round's serialized telemetry events.
EVENT_BUFFER_BYTES = 128 * 1024

#: Seconds the parent waits on a worker before declaring it dead.
WORKER_TIMEOUT_S = 300.0


class WorkerCrashError(RuntimeError):
    """A worker process died (or stopped responding) mid-step."""

    def __init__(self, rank: int, detail: str):
        self.rank = rank
        super().__init__(f"worker rank {rank} crashed: {detail}")


class WorkerStepError(RuntimeError):
    """``step_fn`` raised inside a worker; the worker itself survived."""

    def __init__(self, rank: int, worker_traceback: str):
        self.rank = rank
        self.worker_traceback = worker_traceback
        super().__init__(
            f"step_fn failed on worker rank {rank}:\n{worker_traceback}"
        )


def _align(n: int) -> int:
    return -(-n // ALIGN) * ALIGN


# -- microbatch staging ------------------------------------------------------
#
# ndarray leaves are copied into the shared data segment; the skeleton
# (nesting structure + non-array leaves) travels over the pipe. Decoding
# yields views — a worker's step_fn must treat its microbatch as
# read-only, exactly as inline step_fns share the caller's arrays.


def _measure_micro(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return _align(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(_measure_micro(o) for o in obj)
    return 0


def _encode_micro(obj: Any, arena: ShmArena, cursor: list[int]):
    if isinstance(obj, np.ndarray):
        offset = cursor[0]
        cursor[0] += _align(obj.nbytes)
        view = arena.view(offset, obj.shape, obj.dtype)
        np.copyto(view, obj)
        return ("nd", offset, obj.shape, obj.dtype.str)
    if isinstance(obj, (tuple, list)):
        kind = "tuple" if isinstance(obj, tuple) else "list"
        return (kind, [_encode_micro(o, arena, cursor) for o in obj])
    return ("py", obj)


def _decode_micro(skeleton, arena: ShmArena | None):
    tag = skeleton[0]
    if tag == "nd":
        _, offset, shape, dtype = skeleton
        if arena is None:
            raise RuntimeError("microbatch references a data segment not attached")
        return arena.view(offset, shape, np.dtype(dtype))
    if tag in ("tuple", "list"):
        items = [_decode_micro(s, arena) for s in skeleton[1]]
        return tuple(items) if tag == "tuple" else items
    return skeleton[1]


# -- telemetry fan-in --------------------------------------------------------


class EventBuffer:
    """Single-writer/single-reader event block inside an arena.

    Layout: ``[used: u64][dropped: u64][payload bytes...]``. The worker
    appends serialized events while it owns the round; the parent drains
    and resets between rounds. Phases strictly alternate (the round
    protocol is the barrier), so no further synchronization is needed.
    """

    HEADER = 16

    def __init__(self, arena: ShmArena, offset: int, capacity: int):
        self._head = arena.view(offset, (2,), np.uint64)
        self._data = arena.view(offset + self.HEADER, (capacity,), np.uint8)
        self.capacity = capacity

    def append(self, payload: bytes) -> bool:
        """Append one serialized event; count it dropped when full."""
        used = int(self._head[0])
        if used + len(payload) > self.capacity:
            self._head[1] += 1
            return False
        self._data[used : used + len(payload)] = np.frombuffer(payload, np.uint8)
        self._head[0] = used + len(payload)
        return True

    def drain(self) -> tuple[list[TelemetryEvent], int]:
        """Decode and reset the buffer; returns (events, dropped count)."""
        used = int(self._head[0])
        dropped = int(self._head[1])
        raw = self._data[:used].tobytes()
        self._head[:] = 0
        events = [
            TelemetryEvent.from_json(json.loads(line))
            for line in raw.decode("utf-8").splitlines()
            if line
        ]
        return events, dropped


def _flush_events(sink: RecordingSink, buffer: EventBuffer) -> None:
    for ev in sink.events:
        buffer.append((json.dumps(ev.to_json()) + "\n").encode("utf-8"))
    sink.events.clear()


# -- the worker --------------------------------------------------------------


def _worker_main(spec: dict, conn) -> None:
    """Entry point of one rank process (spawn target; module-level for pickle)."""
    from repro.models.workspace import Workspace
    from repro.precision.bf16 import bf16_round

    rank = spec["rank"]
    arena = ShmArena.attach(spec["arena"])
    model = pickle.loads(spec["model"])
    # A private workspace makes the worker's steady-state step
    # allocation-free, like the parent trainer's; numerics are unchanged.
    model.use_workspace(Workspace())
    dtype = np.dtype(spec["dtype"])
    layout = spec["param_layout"]
    if spec["mode"] == "fsdp":
        from repro.core.sharding import default_wrap_units

        units = default_wrap_units(model, spec["shard_size"])
        for u, (offset, numel) in zip(units, layout):
            u.flat = arena.view(offset, (numel,), dtype)
            u._install_views()

        def zero_grads() -> None:
            for u in units:
                u.zero_grad()

        def local_grads() -> list[np.ndarray]:
            return [u.grad_flat for u in units]

    else:
        params = model.parameters()
        for p, (offset, numel) in zip(params, layout):
            p.data = arena.view(offset, (numel,), dtype).reshape(p.data.shape)

        def zero_grads() -> None:
            model.zero_grad()

        def local_grads() -> list[np.ndarray]:
            return [p.grad for p in params]

    grads_offset, k, world, grad_numel = spec["grads"]
    grads = arena.view(grads_offset, (k, world, grad_numel), dtype)
    precision = spec["precision"]

    def write_grads(round_index: int, scale: float) -> None:
        row = grads[round_index, rank]
        offset = 0
        for g in local_grads():
            flat = g.reshape(-1)
            dst = row[offset : offset + flat.size]
            if precision == "bf16":
                # Mirror MixedPrecisionMixin._outbound_grad bit-for-bit.
                np.copyto(dst, bf16_round(flat * scale if scale != 1.0 else flat))
            else:
                np.copyto(dst, flat)
            offset += flat.size

    bus = TelemetryBus(RecordingSink())
    sink = bus.sink
    # A mesh engine's TP context unpickles with its comm/bus nulled
    # (SimComm state must stay per-process); rewire it against this
    # worker's own collective engine and telemetry bus so the
    # load-bearing tp all-gathers run (and are accounted) locally.
    tp = model.tensor_parallel
    if tp is not None:
        from repro.comm.collectives import SimComm

        tp.rewire(SimComm(), bus)
    events_offset, events_capacity = spec["events"]
    events = EventBuffer(arena, events_offset, events_capacity)
    data_arena: ShmArena | None = None
    conn.send(("ready", rank))
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            break
        if cmd[0] == "stop":
            break
        _, seq, round_index, scale, telemetry_on, data_name, skeleton, step_blob = cmd
        t0 = time.process_time()
        try:
            if data_name is not None and (
                data_arena is None or data_arena.name != data_name
            ):
                if data_arena is not None:
                    data_arena.close()
                data_arena = ShmArena.attach(data_name)
            micro = _decode_micro(skeleton, data_arena)
            step_fn = pickle.loads(step_blob)
            zero_grads()
            if telemetry_on:
                with bus.span("worker.fwd_bwd", rank=rank, round=round_index):
                    loss = float(step_fn(model, micro))
            else:
                loss = float(step_fn(model, micro))
            write_grads(round_index, scale)
            cpu_s = time.process_time() - t0
            if telemetry_on:
                bus.gauge("worker.cpu_s", cpu_s, rank=rank, round=round_index)
                _flush_events(sink, events)
            else:
                # TP spans record unconditionally; don't let them pile up
                # across steps when the parent isn't draining events.
                sink.events.clear()
            conn.send(("ok", seq, loss, cpu_s))
        except Exception:
            # Same cleanup contract as the inline engines: never leave a
            # model's worth of activations pinned behind a failed micro.
            model.release_caches()
            sink.events.clear()
            conn.send(("err", seq, traceback.format_exc()))
    pool = getattr(model, "_gemm_pool", None)
    if pool is not None:
        pool.close()
    if data_arena is not None:
        data_arena.close()
    arena.close()
    conn.close()


# -- the parent-side backend -------------------------------------------------


class ProcessBackend(ExecutionBackend):
    """One spawned OS process per rank over a shared-memory arena.

    Constructed by the engine *before* its optimizer: construction
    re-homes the engine's parameter storage (``p.data`` for DDP, each
    unit's ``flat`` for FSDP) into the shared segment, so optimizer
    state and flat-shard views built afterwards alias shared storage and
    every parent-side update is immediately visible to workers.
    """

    name = "process"

    def __init__(self, engine):
        super().__init__(engine)
        cfg = engine.config
        self.k = cfg.grad_accum_steps
        # Mesh engines compute only on the dp axis (tp/pp are folded
        # into each rank's step); plain engines compute on every rank.
        self.world_size = getattr(engine, "compute_world_size", engine.world.size)
        self.mode = "fsdp" if hasattr(engine, "units") else "ddp"
        if self.mode == "fsdp":
            self._targets = engine.units
            arrays = [u.flat for u in self._targets]
        else:
            self._targets = engine.params
            arrays = [p.data for p in self._targets]
        dtypes = {a.dtype for a in arrays}
        if len(dtypes) != 1:
            raise ValueError(
                f"backend='process' needs a uniform parameter dtype, got "
                f"{sorted(str(d) for d in dtypes)}; use backend='inline'"
            )
        self._dtype = arrays[0].dtype
        self._shapes = [a.shape for a in arrays]
        sizes = [a.size for a in arrays]
        self.grad_numel = sum(sizes)

        blocks = {f"p{i}": n * self._dtype.itemsize for i, n in enumerate(sizes)}
        blocks["grads"] = (
            self.k * self.world_size * self.grad_numel * self._dtype.itemsize
        )
        for r in range(self.world_size):
            blocks[f"ev{r}"] = EventBuffer.HEADER + EVENT_BUFFER_BYTES
        offsets, total = plan_blocks(blocks)
        self._arena = ShmArena.create(total)
        self._param_layout = [
            (offsets[f"p{i}"], n) for i, n in enumerate(sizes)
        ]
        self._grads_offset = offsets["grads"]
        self._event_offsets = [offsets[f"ev{r}"] for r in range(self.world_size)]

        # Re-home parameter storage into the arena (values preserved).
        for target, array, (offset, numel) in zip(
            self._targets, arrays, self._param_layout
        ):
            view = self._arena.view(offset, (numel,), self._dtype)
            np.copyto(view, array.reshape(-1))
            if self.mode == "fsdp":
                target.flat = view
                target._install_views()
            else:
                target.data = view.reshape(array.shape)

        grads = self._arena.view(
            self._grads_offset,
            (self.k, self.world_size, self.grad_numel),
            self._dtype,
        )
        # per_rank[r][i] views for every round, shaped like the inline
        # contributions (parameter-shaped for DDP, flat for FSDP) — the
        # engine's reduction consumes them with zero staging copies.
        self._grad_views: list[list[list[np.ndarray]]] | None = []
        for j in range(self.k):
            per_rank = []
            for r in range(self.world_size):
                row = grads[j, r]
                views, offset = [], 0
                for shape, numel in zip(self._shapes, sizes):
                    chunk = row[offset : offset + numel]
                    views.append(chunk if self.mode == "fsdp" else chunk.reshape(shape))
                    offset += numel
                per_rank.append(views)
            self._grad_views.append(per_rank)
        self._event_buffers = [
            EventBuffer(self._arena, off, EVENT_BUFFER_BYTES)
            for off in self._event_offsets
        ]

        self._procs: list = []
        self._conns: list = []
        self._data: ShmArena | None = None
        self._seq = 0
        self._cpu_s = [0.0] * self.world_size
        self._started = False
        self._broken: str | None = None
        self._shut = False

    # -- lifecycle ---------------------------------------------------------

    def _model_blob(self) -> bytes:
        model = self.engine.model
        workspace = model.workspace
        model.use_workspace(None)  # scratch pools are per-process
        try:
            return pickle.dumps(model)
        except Exception as err:
            raise TypeError(
                "backend='process' requires a picklable model (spawn workers "
                f"receive a replica): {err}"
            ) from err
        finally:
            if workspace is not None:
                model.use_workspace(workspace)

    def start(self) -> None:
        """Spawn one worker per rank and wait for the attach rendezvous."""
        if self._started:
            return
        ctx = multiprocessing.get_context("spawn")
        blob = self._model_blob()
        spec_common = {
            "mode": self.mode,
            "shard_size": getattr(self.engine, "shard_size", 1),
            "precision": self.engine.config.precision,
            "arena": self._arena.name,
            "dtype": self._dtype.str,
            "param_layout": self._param_layout,
            "grads": (
                self._grads_offset,
                self.k,
                self.world_size,
                self.grad_numel,
            ),
            "model": blob,
        }
        for r in range(self.world_size):
            parent_conn, child_conn = ctx.Pipe()
            spec = dict(
                spec_common,
                rank=r,
                events=(self._event_offsets[r], EVENT_BUFFER_BYTES),
            )
            proc = ctx.Process(
                target=_worker_main,
                args=(spec, child_conn),
                name=f"repro-rank{r}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for r in range(self.world_size):
            msg = self._recv(r)
            if msg != ("ready", r):
                raise WorkerCrashError(r, f"bad rendezvous message {msg!r}")
        self._started = True

    def shutdown(self) -> None:
        """Stop workers, reclaim processes and segments, re-home storage.

        Idempotent, and safe after a crash: live workers get a stop
        command, stragglers are terminated then killed, and both shared
        segments are unlinked. Parameter storage moves back to private
        arrays (flat-shard views re-installed for FSDP) so the engine
        remains fully usable — just inline-less-the-workers.
        """
        if self._shut:
            return
        self._shut = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        # Re-home parameters to private storage so arena views can die.
        engine = self.engine
        if self.mode == "fsdp":
            for unit in self._targets:
                unit.flat = np.array(unit.flat)
                unit._install_views()
            for unit, shards in zip(engine.units, getattr(engine, "_shards", [])):
                for j, shard in enumerate(shards):
                    shard.data = unit.shard_view(j)
        else:
            for p in self._targets:
                p.data = np.array(p.data)
        self._grad_views = None
        self._event_buffers = []
        if self._data is not None:
            self._data.destroy()
            self._data = None
        self._arena.destroy()

    # -- the round ---------------------------------------------------------

    def _recv(self, rank: int):
        conn = self._conns[rank]
        try:
            if not conn.poll(WORKER_TIMEOUT_S):
                self._broken = f"rank {rank} unresponsive for {WORKER_TIMEOUT_S:.0f}s"
                raise WorkerCrashError(rank, self._broken)
            return conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError) as err:
            code = self._procs[rank].exitcode
            self._broken = f"pipe closed (exitcode {code})"
            raise WorkerCrashError(rank, self._broken) from err

    def _stage_micros(self, micros: Sequence[Any]) -> tuple[str | None, list]:
        needed = sum(_measure_micro(m) for m in micros)
        if needed == 0:
            return (self._data.name if self._data is not None else None), [
                _encode_micro(m, self._data, [0]) for m in micros
            ]
        if self._data is None or self._data.size < needed:
            fresh = ShmArena.create(max(needed, 1), prefix="repro-data")
            if self._data is not None:
                # unlink-while-mapped is safe; workers swap on name change.
                self._data.destroy()
            self._data = fresh
        cursor = [0]
        skeletons = [_encode_micro(m, self._data, cursor) for m in micros]
        return self._data.name, skeletons

    def run_round(self, round_index, micros, step_fn):
        if self._shut:
            raise RuntimeError(
                "process backend already shut down; build a new engine "
                "(or backend='inline') to keep training"
            )
        if not self._started:
            raise RuntimeError("ProcessBackend.run_round before start()")
        if self._broken:
            raise WorkerCrashError(-1, f"backend poisoned: {self._broken}")
        try:
            step_blob = pickle.dumps(step_fn)
        except Exception as err:
            raise TypeError(
                "backend='process' requires a picklable step_fn (a "
                f"module-level function, not a closure/lambda): {err}"
            ) from err
        data_name, skeletons = self._stage_micros(micros)
        scale = self.engine.scaler.scale
        bus = self.engine.telemetry
        telemetry_on = bus.enabled
        self._seq += 1
        for r in range(self.world_size):
            self._conns[r].send(
                (
                    "round",
                    self._seq,
                    round_index,
                    scale,
                    telemetry_on,
                    data_name,
                    skeletons[r],
                    step_blob,
                )
            )
        losses: list[float] = []
        failures: list[tuple[int, str]] = []
        for r in range(self.world_size):
            msg = self._recv(r)
            if msg[0] == "ok":
                _, seq, loss, cpu_s = msg
                if seq != self._seq:  # pragma: no cover - protocol guard
                    raise WorkerCrashError(r, f"out-of-order reply {seq}")
                losses.append(loss)
                self._cpu_s[r] += cpu_s
            else:
                failures.append((r, msg[2]))
        if telemetry_on:
            for r, buffer in enumerate(self._event_buffers):
                events, dropped = buffer.drain()
                bus.merge(events, rank=r)
                if dropped:
                    bus.counter("telemetry.dropped_events", dropped, rank=r)
        if failures:
            rank, tb = failures[0]
            raise WorkerStepError(rank, tb)
        return losses, self._grad_views[round_index]

    # -- instrumentation ---------------------------------------------------

    def pop_worker_cpu_s(self) -> list[float]:
        """Per-rank worker CPU seconds since the last call (then reset).

        The critical-path metric ``bench_multicore`` gates on: the
        slowest rank's CPU time bounds the step on a host with enough
        cores, independent of how this host's scheduler interleaved the
        workers (see DESIGN §12).
        """
        out = list(self._cpu_s)
        self._cpu_s = [0.0] * self.world_size
        return out
