"""The inline execution backend: all ranks run in the calling process.

This is the historical behavior of the engines, factored behind the
:class:`ExecutionBackend` seam so :class:`~repro.core.ddp.DDPEngine` and
:class:`~repro.core.fsdp.FSDPEngine` share one compute loop regardless
of where rank compute actually runs. The engine owns everything outside
the loop (casting, collectives, optimizer, telemetry); a backend owns
exactly one thing — running ``step_fn`` for every rank of one
accumulation round and handing back the per-rank outbound gradients.

The contract both backends honor (the differential suite in
``tests/test_backend`` asserts it bit-for-bit under fp32):

- ranks run in ascending order within a round, each against the rank's
  already-cast microbatch, with local gradients zeroed first;
- ``per_rank[r]`` holds rank ``r``'s outbound contributions (already
  loss-scaled/quantized for the wire) in the engine's parameter/unit
  order, ready for the engine's unchanged deterministic reduction.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["ExecutionBackend", "InlineBackend"]


class ExecutionBackend:
    """Where rank forward/backward compute runs (subclass hook).

    Engines construct a backend before the optimizer (a backend may
    re-home parameter storage), then call :meth:`start` once the model
    is fully wired, :meth:`run_round` once per accumulation round, and
    :meth:`shutdown` from ``engine.close()``.
    """

    #: Name reported in telemetry/benchmarks.
    name = "base"

    def __init__(self, engine):
        self.engine = engine

    def start(self) -> None:
        """Bring up workers (no-op for inline)."""

    def run_round(
        self, round_index: int, micros: Sequence[Any], step_fn: Callable
    ) -> tuple[list[float], list[list[np.ndarray]]]:
        """Run one accumulation round; returns ``(losses, per_rank_grads)``."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Tear down workers and release shared resources (idempotent)."""


class InlineBackend(ExecutionBackend):
    """Sequential rank-SPMD execution on the calling thread."""

    name = "inline"

    def run_round(self, round_index, micros, step_fn):
        eng = self.engine
        losses: list[float] = []
        per_rank: list[list[np.ndarray]] = []
        for micro in micros:
            eng._zero_local_grads()
            losses.append(float(step_fn(eng.model, micro)))
            per_rank.append(eng._collect_rank_grads())
        return losses, per_rank
