"""Emulated mixed precision (bf16) for the training stack.

The paper's billion-scale configurations only fit on a GCD because the
standard reduced-precision levers are applied: bf16 parameters,
gradients and collective payloads with fp32 master weights and optimizer
state, plus gradient accumulation ("Optimizing Distributed Training on
Frontier for LLMs", PAPERS.md). This package provides the NumPy-only
emulation of those levers:

- :mod:`repro.precision.bf16` — uint16-based bf16 encode/decode and the
  grid-rounding helper the engines use as their cast point, plus the
  logical byte-accounting tables (:data:`DTYPE_BYTES`,
  :data:`WIRE_FRACTION`);
- :mod:`repro.precision.scaler` — static/dynamic loss scaling with
  checkpointable state.

Select it per engine via ``EngineConfig(precision="bf16",
grad_accum_steps=k)``; see :mod:`repro.core.engine`.
"""

from repro.precision.bf16 import (
    BF16_EPS,
    BF16_MAX,
    DTYPE_BYTES,
    PRECISIONS,
    WIRE_FRACTION,
    bf16_round,
    from_bf16,
    to_bf16,
    wire_fraction,
)
from repro.precision.scaler import LossScaler

__all__ = [
    "BF16_EPS",
    "BF16_MAX",
    "DTYPE_BYTES",
    "PRECISIONS",
    "WIRE_FRACTION",
    "LossScaler",
    "bf16_round",
    "from_bf16",
    "to_bf16",
    "wire_fraction",
]
