"""Loss scaling for reduced-precision gradient reduction.

bf16 keeps fp32's exponent range, so classic fp16-style overflow is
rare — but tiny gradients still lose mantissa when cast to a 7-bit
significand. Scaling the per-microbatch gradients by a constant before
the cast (and dividing it back out after the reduction, before the
master-weight update) shifts them into a better-conditioned range.

:class:`LossScaler` implements both flavors:

- *static* (default): a fixed ``init_scale``; ``update`` only counts
  overflows.
- *dynamic* (``dynamic=True``): the AMP recipe — back off by
  ``backoff_factor`` whenever a non-finite gradient is seen (the engine
  skips that optimizer step), grow by ``growth_factor`` after
  ``growth_interval`` consecutive clean steps.

The scaler is part of the training trajectory, so its state round-trips
through engine checkpoints bit-exactly (scale and counters are plain
scalars; the checkpoint layer serializes those losslessly).
"""

from __future__ import annotations

__all__ = ["LossScaler"]


class LossScaler:
    """Static or dynamic loss scale with checkpointable state."""

    def __init__(
        self,
        init_scale: float = 1.0,
        dynamic: bool = False,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 200,
    ):
        if init_scale <= 0:
            raise ValueError(f"init_scale must be positive, got {init_scale}")
        if growth_factor <= 1.0:
            raise ValueError(f"growth_factor must be > 1, got {growth_factor}")
        if not 0.0 < backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be in (0, 1), got {backoff_factor}"
            )
        if growth_interval < 1:
            raise ValueError(
                f"growth_interval must be >= 1, got {growth_interval}"
            )
        self.scale = float(init_scale)
        self.dynamic = bool(dynamic)
        self.growth_factor = float(growth_factor)
        self.backoff_factor = float(backoff_factor)
        self.growth_interval = int(growth_interval)
        self.overflow_count = 0
        self._growth_tracker = 0

    @property
    def enabled(self) -> bool:
        """True when scaling changes anything (scale != 1 or dynamic)."""
        return self.dynamic or self.scale != 1.0

    def update(self, found_inf: bool) -> None:
        """Advance the scale after one optimizer step's finite check.

        Static scalers only count overflows; dynamic ones back off on
        overflow and grow after ``growth_interval`` clean steps.
        """
        if found_inf:
            self.overflow_count += 1
        if not self.dynamic:
            return
        if found_inf:
            self.scale *= self.backoff_factor
            self._growth_tracker = 0
            return
        self._growth_tracker += 1
        if self._growth_tracker >= self.growth_interval:
            self.scale *= self.growth_factor
            self._growth_tracker = 0

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable snapshot (scalars only; bit-exact round trip)."""
        return {
            "scale": self.scale,
            "dynamic": self.dynamic,
            "growth_tracker": self._growth_tracker,
            "overflow_count": self.overflow_count,
        }

    def load_state_dict(self, sd: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.scale = float(sd["scale"])
        self.dynamic = bool(sd["dynamic"])
        self._growth_tracker = int(sd["growth_tracker"])
        self.overflow_count = int(sd["overflow_count"])
