"""Emulated bfloat16 over NumPy's native float types.

The container has no accelerator dtype support beyond NumPy, so bf16 is
*emulated*: values live in ordinary ``float32``/``float64`` arrays but
are constrained to the bf16 grid — the 2^16 values representable with an
8-bit exponent and 7-bit mantissa. The conversion is the standard
bit-level one (view the fp32 pattern as ``uint32``, round-to-nearest-even
into the top 16 bits, store as ``uint16``); no third-party dtype package
is involved.

Two views of a bf16 tensor:

- the *storage* form, a ``uint16`` array (what :func:`to_bf16` returns
  and what a real accelerator would keep in HBM / put on the wire);
- the *compute* form, a native-dtype array whose values sit exactly on
  the bf16 grid (what :func:`bf16_round` returns and what the engines
  feed NumPy kernels, emulating "bf16 storage with fp32 accumulate").

Note on double rounding: ``float64`` input is first rounded to
``float32`` and then to bf16. This can differ from a direct
float64-to-bf16 rounding by one bf16 ulp in rare tie cases; it is
deterministic, round-trip stable (grid values map to themselves), and
the accepted emulation semantics here.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BF16_EPS",
    "BF16_MAX",
    "DTYPE_BYTES",
    "PRECISIONS",
    "WIRE_FRACTION",
    "bf16_round",
    "from_bf16",
    "to_bf16",
    "wire_fraction",
]

#: Machine epsilon of bfloat16 (7 explicit mantissa bits -> 2**-8 ulp at 1.0).
BF16_EPS = 2.0**-8
#: Largest finite bfloat16 value: (2 - 2**-7) * 2**127.
BF16_MAX = 3.3895313892515355e38

#: Precisions the training stack understands.
PRECISIONS = ("fp32", "bf16")

#: Logical storage bytes per element, by precision label. The emulation
#: substrate computes in float64, but all byte *accounting* (memory
#: model, wire bytes) is in these logical widths, matching the paper's
#: fp32 baseline.
DTYPE_BYTES = {"fp64": 8, "fp32": 4, "bf16": 2}

#: Wire/storage bytes of each precision relative to the fp32 baseline.
#: Collectives and the cost model scale their native payload by this
#: fraction, so a bf16 gradient reduction moves exactly half the bytes
#: of the same reduction at full precision.
WIRE_FRACTION = {"fp32": 1.0, "bf16": 0.5}


def wire_fraction(precision: str) -> float:
    """Payload scale of ``precision`` relative to full precision.

    Raises ``ValueError`` for an unknown precision label.
    """
    try:
        return WIRE_FRACTION[precision]
    except KeyError:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}"
        ) from None


def to_bf16(x: np.ndarray) -> np.ndarray:
    """Encode an array into bf16 storage (``uint16`` bit patterns).

    Rounds to nearest-even. Values beyond :data:`BF16_MAX` overflow to
    infinity (as on real hardware); NaNs are preserved as quiet NaNs
    (the rounding carry can never silently turn a NaN into infinity).
    """
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # Round-to-nearest-even on the truncated 16 low bits: add 0x7FFF
    # plus the parity of the keep-bit, then drop the low half.
    rounding_bias = np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    out = ((bits + rounding_bias) >> np.uint32(16)).astype(np.uint16)
    nan = np.isnan(x32)
    if nan.any():
        # Truncate (keeps sign + exponent) and force a mantissa bit so a
        # NaN whose payload lived entirely in the dropped bits does not
        # decode as infinity.
        out[nan] = (bits[nan] >> np.uint32(16)).astype(np.uint16) | np.uint16(0x0040)
    return out


def from_bf16(bits: np.ndarray) -> np.ndarray:
    """Decode bf16 storage (``uint16``) into ``float32`` (exact)."""
    b = np.asarray(bits, dtype=np.uint16)
    return (b.astype(np.uint32) << np.uint32(16)).view(np.float32)


def bf16_round(x: np.ndarray) -> np.ndarray:
    """Round an array onto the bf16 grid, keeping its floating dtype.

    This is the emulation work-horse: a round-trip through
    :func:`to_bf16` / :func:`from_bf16` whose result is returned in the
    input's own dtype, so downstream NumPy kernels run unchanged while
    every value carries only bf16 information. Idempotent: grid values
    map to themselves bit-exactly.
    """
    x = np.asarray(x)
    dtype = x.dtype if x.dtype.kind == "f" else np.dtype(np.float32)
    return from_bf16(to_bf16(x)).astype(dtype, copy=False).reshape(x.shape)
