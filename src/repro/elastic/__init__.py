"""Elastic world resizing: preemption, requeue, and checkpoint resharding.

Production clusters preempt jobs and requeue them into *different*
allocations. This package makes that survivable — and bit-exact:

- :mod:`repro.elastic.layout` — the :class:`ReductionLayout` invariant a
  resize must preserve for the fp32 trajectory to continue unchanged;
- :mod:`repro.elastic.preemption` — SIGUSR1/SIGTERM drain tokens
  modeled on the Slurm requeue handler;
- :mod:`repro.elastic.reshard` — checkpoint state remapped across world
  sizes and sharding strategies (FULL_SHARD 16 → HYBRID 8, DDP → FSDP,
  ...) through a world-neutral canonical form;
- :mod:`repro.elastic.requeue` — the scheduler/driver loop that restarts
  a preempted run into its next allocation via :func:`elastic_resume`;
- :mod:`repro.elastic.campaign` — the resize chaos campaign asserting
  trajectory identity against an uninterrupted oracle run.

Import structure: this ``__init__`` eagerly imports only the leaf
modules (``errors``, ``layout``, ``preemption`` — stdlib-only), so
:mod:`repro.core` can import them without a cycle; ``reshard``,
``requeue`` and ``campaign`` (which import :mod:`repro.core`) are
exposed lazily via module ``__getattr__``.
"""

from __future__ import annotations

from repro.elastic.errors import ElasticCompatibilityError, PreemptedError
from repro.elastic.layout import ReductionLayout, natural_layout, validate_layout
from repro.elastic.preemption import PreemptionHandler, PreemptionToken

__all__ = [
    "ElasticCompatibilityError",
    "PreemptedError",
    "ReductionLayout",
    "natural_layout",
    "validate_layout",
    "PreemptionHandler",
    "PreemptionToken",
    # lazily resolved (import repro.core):
    "TopologySpec",
    "engine_topology",
    "reshard_engine_state",
    "reshard_trainer_state",
    "Allocation",
    "compatible_allocations",
    "ResizeScheduler",
    "RequeueDriver",
    "RequeueReport",
    "elastic_resume",
    "run_resize_campaign",
]

_LAZY = {
    "TopologySpec": "repro.elastic.reshard",
    "engine_topology": "repro.elastic.reshard",
    "reshard_engine_state": "repro.elastic.reshard",
    "reshard_trainer_state": "repro.elastic.reshard",
    "Allocation": "repro.elastic.requeue",
    "compatible_allocations": "repro.elastic.requeue",
    "ResizeScheduler": "repro.elastic.requeue",
    "RequeueDriver": "repro.elastic.requeue",
    "RequeueReport": "repro.elastic.requeue",
    "elastic_resume": "repro.elastic.requeue",
    "run_resize_campaign": "repro.elastic.campaign",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(__all__)
