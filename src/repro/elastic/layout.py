"""Logical reduction layouts: what a resize must preserve to stay bit-exact.

Every optimizer step reduces ``total = grad_accum_steps * world_size``
microbatch gradients. In fp32 the *value* of that reduction depends only
on how NumPy's stacked mean groups the contributions, not on which rank
computed which microbatch — the engines consume microbatches round-major
precisely so that the grouping is a pure function of two integers:

``total``
    Microbatch gradients entering one optimizer step (``k * W``).
``chunk``
    The stage-1 reduction group size. The round-major microbatch
    sequence is cut into ``total / chunk`` consecutive chunks; stage 1
    means each chunk in one stacked reduction, and (when there is more
    than one chunk) stage 2 means the chunk-means. ``chunk == total``
    is the single-stage layout used by DDP / NO_SHARD / FULL_SHARD /
    SHARD_GRAD_OP; HYBRID_SHARD's shard-group reduce-scatter followed by
    the cross-replica all-reduce realizes ``chunk == shard_size``.

Two configurations train **bit-identically** iff they share the same
``(total, chunk)`` (verified per strategy in ``tests/test_elastic``).
That makes :class:`ReductionLayout` the invariant a world resize must
carry: FULL_SHARD on 16 ranks is ``(16, 16)``, and resuming it on a
HYBRID world of 8 requires the engine to *fold* its two reduction stages
into one (``chunk == total``), which is only possible when the hybrid
mesh has a single replica group (``shard_size == world_size``).

This module is a dependency-free leaf (stdlib only): the engines import
it, not the other way around. Strategy names are passed as strings to
keep it that way.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ReductionLayout",
    "natural_layout",
    "validate_layout",
    "mesh_layout",
    "validate_mesh_layout",
    "SINGLE_STAGE_STRATEGIES",
]

#: Strategies whose gradient reduction is a single stacked mean over all
#: ``total`` contributions (deferred across accumulation rounds).
SINGLE_STAGE_STRATEGIES = frozenset(
    {"DDP", "NO_SHARD", "FULL_SHARD", "SHARD_GRAD_OP"}
)


@dataclass(frozen=True)
class ReductionLayout:
    """The fp32-trajectory invariant of a training configuration."""

    total: int
    chunk: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError(f"total must be >= 1, got {self.total}")
        if self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")
        if self.total % self.chunk != 0:
            raise ValueError(
                f"chunk {self.chunk} must divide total {self.total}"
            )

    @property
    def single_stage(self) -> bool:
        """True when the reduction is one stacked mean (no stage 2)."""
        return self.chunk == self.total

    @property
    def n_chunks(self) -> int:
        """Stage-2 contributions (1 for single-stage layouts)."""
        return self.total // self.chunk

    def describe(self) -> str:
        """Human-readable form used in error messages."""
        return f"(total={self.total}, chunk={self.chunk})"


def _norm_strategy(strategy: str) -> str:
    name = str(strategy).strip().upper()
    if name not in SINGLE_STAGE_STRATEGIES and name != "HYBRID_SHARD":
        raise ValueError(f"unknown strategy name {strategy!r}")
    return name


def natural_layout(
    strategy: str,
    world_size: int,
    shard_size: int | None = None,
    grad_accum_steps: int = 1,
) -> ReductionLayout:
    """The layout a configuration realizes with no override.

    Single-stage strategies reduce all ``k * W`` contributions in one
    stacked mean; HYBRID_SHARD chunks by its shard group.
    """
    name = _norm_strategy(strategy)
    total = world_size * grad_accum_steps
    if name in SINGLE_STAGE_STRATEGIES:
        return ReductionLayout(total=total, chunk=total)
    if shard_size is None:
        raise ValueError("HYBRID_SHARD layout requires shard_size")
    return ReductionLayout(total=total, chunk=shard_size)


def validate_layout(
    strategy: str,
    world_size: int,
    shard_size: int | None,
    grad_accum_steps: int,
    layout: ReductionLayout | None,
) -> ReductionLayout:
    """Resolve the layout an engine will run (natural or explicit).

    ``layout=None`` returns :func:`natural_layout` — the status-quo
    behavior of every strategy. An explicit layout is checked against
    what the engine can actually realize:

    - ``total`` must equal ``grad_accum_steps * world_size`` (the step
      consumes exactly that many microbatches);
    - single-stage strategies can only realize ``chunk == total``;
    - HYBRID_SHARD realizes ``chunk == shard_size`` naturally, or
      ``chunk == total`` by *folding* both stages into one deferred
      reduce-scatter — which requires a single replica group
      (``shard_size == world_size``).

    Raises ``ValueError`` with the allocation fix spelled out.
    """
    name = _norm_strategy(strategy)
    natural = natural_layout(name, world_size, shard_size, grad_accum_steps)
    if layout is None:
        return natural
    total = world_size * grad_accum_steps
    if layout.total != total:
        raise ValueError(
            f"reduction layout {layout.describe()} needs {layout.total} "
            f"microbatches per step, but world_size={world_size} x "
            f"grad_accum_steps={grad_accum_steps} supplies {total}; adjust "
            "grad_accum_steps so their product matches the layout total"
        )
    if name in SINGLE_STAGE_STRATEGIES:
        if not layout.single_stage:
            raise ValueError(
                f"{name} reduces in a single stage and cannot realize the "
                f"chunked layout {layout.describe()}; use HYBRID_SHARD with "
                f"shard_size={layout.chunk} instead"
            )
        return layout
    # HYBRID_SHARD
    if layout.chunk == shard_size:
        return layout
    if layout.single_stage:
        if world_size != shard_size:
            raise ValueError(
                f"HYBRID_SHARD can fold to the single-stage layout "
                f"{layout.describe()} only with one replica group "
                f"(shard_size == world_size); got shard_size={shard_size}, "
                f"world_size={world_size}"
            )
        return layout
    raise ValueError(
        f"HYBRID_SHARD with shard_size={shard_size} realizes chunk="
        f"{shard_size} (natural {natural.describe()}) or the folded "
        f"single-stage chunk={total}; cannot realize {layout.describe()}"
    )


def mesh_layout(dp: int, grad_accum_steps: int = 1) -> ReductionLayout:
    """The per-axis reduction tree of a mesh engine, projected to 1-D.

    A ``(pp, dp, tp)`` mesh reduces gradients only along the dp axis
    (tp weight gradients are sharded by construction; pp partitions the
    parameters across stages) — the per-axis tree degenerates to dp's
    single stacked mean over ``grad_accum_steps * dp`` contributions,
    regardless of pp/tp sizes or the dp strategy (ddp all-reduce and
    full-shard reduce-scatter are elementwise-identical means). The
    layout therefore ignores pp and tp: a mesh with ``dp=4, k=1``
    shares a trajectory with plain DDP on a world of 4.
    """
    total = dp * grad_accum_steps
    return ReductionLayout(total=total, chunk=total)


def validate_mesh_layout(
    dp: int,
    grad_accum_steps: int,
    layout: ReductionLayout | None,
) -> ReductionLayout:
    """Resolve the layout a mesh engine will run (natural or explicit).

    Mirrors :func:`validate_layout` for the mesh engine's single-stage
    dp reduction: an explicit layout must match
    :func:`mesh_layout` exactly — the mesh cannot realize chunked
    layouts (there is no second reduction stage to chunk with).
    """
    natural = mesh_layout(dp, grad_accum_steps)
    if layout is None:
        return natural
    if layout.total != natural.total:
        raise ValueError(
            f"reduction layout {layout.describe()} needs {layout.total} "
            f"microbatches per step, but dp={dp} x "
            f"grad_accum_steps={grad_accum_steps} supplies {natural.total}; "
            "adjust grad_accum_steps so their product matches the layout "
            "total"
        )
    if not layout.single_stage:
        raise ValueError(
            f"a mesh engine reduces along dp in a single stage and cannot "
            f"realize the chunked layout {layout.describe()}; use "
            f"HYBRID_SHARD with shard_size={layout.chunk} instead"
        )
    return layout
