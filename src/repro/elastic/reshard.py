"""Checkpoint resharding: one snapshot, any world.

An engine snapshot is shaped by the world that wrote it — an FSDP
engine's optimizer state lives on flat parameter *shards* (unit-major,
shard-minor, zero-padded to the shard count), a DDP engine's on the
per-parameter slots. Restoring a FULL_SHARD-16 snapshot into a HYBRID-8
engine therefore needs a remapping, not just a load.

The remapping goes through a **canonical form** that is independent of
world size, sharding strategy, and engine kind: every optimizer moment
and master weight keyed by the *dotted parameter name* at the
parameter's natural shape. ``canonicalize`` lifts an engine state dict
into that form using only the model architecture (the flat layout of
every wrapping unit is a pure function of the model —
:func:`repro.core.sharding.unit_param_specs`); ``decanonicalize`` lowers
it onto any target topology. Both directions are exact: zero-padding in
flat shards is provably zero under AdamW (zero parameter, zero gradient
and zero moments update to exactly zero), which is asserted rather than
assumed.

What resharding **cannot** change is the logical
:class:`~repro.elastic.layout.ReductionLayout`: two configurations
continue the same fp32 trajectory iff they reduce gradients with the
same ``(total, chunk)`` grouping. :func:`reshard_engine_state` enforces
that, so an incompatible resize fails with a typed
:class:`~repro.elastic.errors.ElasticCompatibilityError` instead of
silently diverging.

The module-level ``ENGINE_STATE_KEYS`` / ``TRAINER_STATE_KEYS``
frozensets declare exactly which state-dict fields the mapping
understands; ``tools/elastic_state_check.py`` lints the engine and
trainer ``state_dict`` implementations against them so a new field can
never bypass resharding unnoticed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.sharding import UnitSpec, unit_param_specs
from repro.elastic.errors import ElasticCompatibilityError
from repro.elastic.layout import ReductionLayout

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.models.module import Module

__all__ = [
    "ENGINE_STATE_KEYS",
    "TRAINER_STATE_KEYS",
    "TopologySpec",
    "engine_topology",
    "canonicalize",
    "decanonicalize",
    "reshard_engine_state",
    "reshard_trainer_state",
]

#: Every key an engine ``state_dict`` may contain. A key outside this set
#: has no reshard mapping and fails loudly (and the elastic_state_check
#: lint catches it at development time).
ENGINE_STATE_KEYS = frozenset({"model", "optimizer", "scaler", "step_count"})

#: Every key a trainer ``state_dict`` may contain.
TRAINER_STATE_KEYS = frozenset({"engine", "history"})


@dataclass(frozen=True)
class TopologySpec:
    """The world/sharding shape an engine snapshot assumes.

    Produced by ``engine.topology()`` and recorded in checkpoint
    metadata. ``backend`` and ``ranks_per_node`` are informational
    (process and inline backends are fp32 bit-identical, and node
    boundaries do not change collective grouping); the remaining fields
    determine whether a snapshot can be loaded directly, resharded, or
    not resumed at all.
    """

    kind: str
    strategy: str
    world_size: int
    ranks_per_node: int
    shard_size: int | None
    grad_accum_steps: int
    layout: ReductionLayout
    precision: str
    backend: str
    #: Mesh engines record their ``(pp, dp, tp, schedule)`` here; plain
    #: DDP/FSDP topologies (and legacy snapshots) carry ``None``.
    mesh: dict | None = None

    @classmethod
    def from_dict(cls, d: dict) -> "TopologySpec":
        try:
            layout = ReductionLayout(
                total=int(d["layout"]["total"]), chunk=int(d["layout"]["chunk"])
            )
            mesh = d.get("mesh")
            return cls(
                kind=str(d["kind"]),
                strategy=str(d["strategy"]),
                world_size=int(d["world_size"]),
                ranks_per_node=int(d["ranks_per_node"]),
                shard_size=None if d["shard_size"] is None else int(d["shard_size"]),
                grad_accum_steps=int(d["grad_accum_steps"]),
                layout=layout,
                precision=str(d["precision"]),
                backend=str(d["backend"]),
                mesh=None if mesh is None else dict(mesh),
            )
        except (KeyError, TypeError) as e:
            raise ElasticCompatibilityError(
                f"malformed topology record {d!r}: {e}"
            ) from e

    def to_dict(self) -> dict:
        """The checkpoint-metadata form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "strategy": self.strategy,
            "world_size": self.world_size,
            "ranks_per_node": self.ranks_per_node,
            "shard_size": self.shard_size,
            "grad_accum_steps": self.grad_accum_steps,
            "layout": {"total": self.layout.total, "chunk": self.layout.chunk},
            "precision": self.precision,
            "backend": self.backend,
            "mesh": None if self.mesh is None else dict(self.mesh),
        }

    def describe(self) -> str:
        """Human-readable one-liner (used in error messages)."""
        shard = f", shard_size={self.shard_size}" if self.shard_size else ""
        mesh = ""
        if self.mesh is not None:
            mesh = (
                f" mesh=pp{self.mesh.get('pp')}xdp{self.mesh.get('dp')}"
                f"xtp{self.mesh.get('tp')}"
            )
        return (
            f"{self.strategy} world={self.world_size}{shard}{mesh} "
            f"k={self.grad_accum_steps} layout={self.layout.describe()} "
            f"{self.precision}"
        )

    def same_trajectory(self, other: "TopologySpec") -> bool:
        """Whether a snapshot from ``self`` can continue bit-exact under
        ``other`` (after resharding): same reduction layout, same
        precision."""
        return self.layout == other.layout and self.precision == other.precision

    def same_shape(self, other: "TopologySpec") -> bool:
        """Whether a snapshot from ``self`` loads into ``other`` without
        resharding (identical state-dict structure and microbatching)."""
        return (
            self.kind == other.kind
            and self.strategy == other.strategy
            and self.world_size == other.world_size
            and self.shard_size == other.shard_size
            and self.grad_accum_steps == other.grad_accum_steps
            and self.mesh == other.mesh
            and self.same_trajectory(other)
        )


def engine_topology(engine) -> TopologySpec:
    """The :class:`TopologySpec` of a live engine."""
    return TopologySpec.from_dict(engine.topology())


# -- flat-shard <-> per-parameter mapping -----------------------------------


def _slot_keys(slots: list[dict]) -> frozenset[str]:
    """The uniform key set of a slot list (AdamW initializes every slot
    in the same optimizer step, so mixed slots mean corruption)."""
    keysets = {frozenset(s.keys()) for s in slots}
    if len(keysets) > 1:
        raise ElasticCompatibilityError(
            f"optimizer slots carry inconsistent state keys {sorted(map(sorted, keysets))}; "
            "cannot reshard a partially-initialized optimizer"
        )
    return next(iter(keysets)) if keysets else frozenset()


def _assert_zero_padding(flat: np.ndarray, numel: int, what: str) -> None:
    if flat.size > numel and np.any(flat[numel:]):
        raise ElasticCompatibilityError(
            f"{what} has nonzero values in the shard zero-padding region; "
            "this state was not produced by this engine family and cannot "
            "be resharded exactly"
        )


def _gather_unit_flat(
    pieces: list[np.ndarray], spec: UnitSpec, what: str
) -> np.ndarray:
    """Concatenate one unit's per-shard arrays and strip the padding."""
    flat = np.concatenate([np.asarray(p).reshape(-1) for p in pieces])
    if flat.size < spec.numel:
        raise ElasticCompatibilityError(
            f"{what}: flat size {flat.size} < unit numel {spec.numel}"
        )
    _assert_zero_padding(flat, spec.numel, what)
    return flat


def _split_unit_flat(
    per_param: dict[str, np.ndarray], spec: UnitSpec, shard_size: int
) -> list[np.ndarray]:
    """Lower per-parameter arrays onto one unit's padded flat shards."""
    plan = spec.plan(shard_size)
    dtype = next(iter(per_param.values())).dtype
    flat = np.zeros(plan.padded_numel, dtype=dtype)
    for pname, shape, offset in spec.layout:
        n = int(np.prod(shape)) if shape else 1
        flat[offset : offset + n] = np.asarray(per_param[pname]).reshape(-1)
    return [flat[plan.shard_slice(j)].copy() for j in range(shard_size)]


def _slot_layout(topology: TopologySpec) -> str:
    """Which optimizer slot layout a topology's state dict uses.

    A mesh engine's optimizer mirrors its dp strategy exactly: flat
    shards over ``shard_size == dp`` groups under full_shard (the fsdp
    layout), per-parameter slots under ddp — so mesh snapshots reshard
    through the same two mappings, keyed on whether the topology
    recorded a shard size.
    """
    if topology.kind == "mesh":
        return "fsdp" if topology.shard_size else "ddp"
    return topology.kind


def _unit_params(
    flat: np.ndarray, spec: UnitSpec
) -> dict[str, np.ndarray]:
    """Slice one unit's unpadded flat vector into per-parameter arrays."""
    out: dict[str, np.ndarray] = {}
    for pname, shape, offset in spec.layout:
        n = int(np.prod(shape)) if shape else 1
        out[pname] = flat[offset : offset + n].reshape(shape).copy()
    return out


# -- canonical form ---------------------------------------------------------


def canonicalize(engine_sd: dict, model: "Module", topology: TopologySpec) -> dict:
    """Lift an engine state dict into world-neutral canonical form.

    ``model`` supplies the architecture (any instance with the same
    shapes — typically the target engine's model); ``topology`` says how
    ``engine_sd`` was sharded. The result keys every optimizer moment
    and master weight by dotted parameter name at the parameter's
    natural shape.
    """
    unknown = set(engine_sd) - ENGINE_STATE_KEYS
    if unknown:
        raise ElasticCompatibilityError(
            f"engine state keys {sorted(unknown)} have no reshard mapping "
            "(update repro.elastic.reshard and ENGINE_STATE_KEYS)"
        )
    opt = engine_sd["optimizer"]
    slots: list[dict] = opt["slots"]
    masters: list | None = opt.get("master")
    keys = _slot_keys(slots)
    names = [name for name, _ in model.named_parameters()]

    canon_slots: dict[str, dict[str, np.ndarray]] = {n: {} for n in names}
    canon_master: dict[str, np.ndarray] | None = None if masters is None else {}

    kind = _slot_layout(topology)
    if kind == "fsdp":
        specs = unit_param_specs(model)
        s = topology.shard_size or 1
        expect = len(specs) * s
        if len(slots) != expect:
            raise ElasticCompatibilityError(
                f"optimizer has {len(slots)} flat-shard slots but the model "
                f"at shard_size={s} needs {expect}; the snapshot topology "
                f"({topology.describe()}) does not match this state"
            )
        for u, spec in enumerate(specs):
            unit_slots = slots[u * s : (u + 1) * s]
            for key in sorted(keys):
                flat = _gather_unit_flat(
                    [sl[key] for sl in unit_slots], spec, f"moment {key!r}"
                )
                for pname, arr in _unit_params(flat, spec).items():
                    canon_slots[pname][key] = arr
            if masters is not None:
                flat = _gather_unit_flat(
                    masters[u * s : (u + 1) * s], spec, "master weights"
                )
                for pname, arr in _unit_params(flat, spec).items():
                    canon_master[pname] = arr  # type: ignore[index]
    elif kind == "ddp":
        if len(slots) != len(names):
            raise ElasticCompatibilityError(
                f"optimizer has {len(slots)} per-parameter slots but the "
                f"model has {len(names)} parameters"
            )
        for name, slot in zip(names, slots):
            canon_slots[name] = {k: np.asarray(v).copy() for k, v in slot.items()}
        if masters is not None:
            for name, m in zip(names, masters):
                canon_master[name] = np.asarray(m).copy()  # type: ignore[index]
    else:
        raise ElasticCompatibilityError(f"unknown engine kind {topology.kind!r}")

    return {
        "model": {k: np.asarray(v).copy() for k, v in engine_sd["model"].items()},
        "optim": {
            "t": int(opt["t"]),
            "lr": float(opt["lr"]),
            "slots": canon_slots,
            "master": canon_master,
        },
        "scaler": dict(engine_sd["scaler"]),
        "step_count": int(engine_sd["step_count"]),
    }


def decanonicalize(canonical: dict, model: "Module", topology: TopologySpec) -> dict:
    """Lower canonical state onto a target topology's engine state dict."""
    names = [name for name, _ in model.named_parameters()]
    canon_slots: dict[str, dict[str, np.ndarray]] = canonical["optim"]["slots"]
    canon_master: dict[str, np.ndarray] | None = canonical["optim"]["master"]
    keys = _slot_keys(list(canon_slots.values()))

    kind = _slot_layout(topology)
    if kind == "fsdp":
        specs = unit_param_specs(model)
        s = topology.shard_size or 1
        slots: list[dict] = [dict() for _ in range(len(specs) * s)]
        masters: list | None = None if canon_master is None else [None] * (
            len(specs) * s
        )
        for u, spec in enumerate(specs):
            for key in sorted(keys):
                per_param = {
                    pname: canon_slots[pname][key] for pname, _, _ in spec.layout
                }
                for j, shard in enumerate(_split_unit_flat(per_param, spec, s)):
                    slots[u * s + j][key] = shard
            if masters is not None:
                per_param = {
                    pname: canon_master[pname] for pname, _, _ in spec.layout
                }
                for j, shard in enumerate(_split_unit_flat(per_param, spec, s)):
                    masters[u * s + j] = shard
    elif kind == "ddp":
        slots = [dict(canon_slots[name]) for name in names]
        masters = (
            None
            if canon_master is None
            else [canon_master[name] for name in names]
        )
    else:
        raise ElasticCompatibilityError(f"unknown engine kind {topology.kind!r}")

    opt: dict = {
        "t": canonical["optim"]["t"],
        "lr": canonical["optim"]["lr"],
        "slots": slots,
    }
    if masters is not None:
        opt["master"] = masters
    return {
        "model": dict(canonical["model"]),
        "optimizer": opt,
        "scaler": dict(canonical["scaler"]),
        "step_count": canonical["step_count"],
    }


# -- end-to-end remapping ---------------------------------------------------


def _check_reshardable(src: TopologySpec, dst: TopologySpec) -> None:
    if not src.same_trajectory(dst):
        raise ElasticCompatibilityError(
            f"cannot reshard {src.describe()} -> {dst.describe()}: the "
            "reduction layout and precision must match for the fp32 "
            "trajectory to continue bit-exact. Pick a target allocation "
            "from repro.elastic.compatible_allocations(layout) instead."
        )


def reshard_engine_state(
    engine_sd: dict,
    model: "Module",
    src: TopologySpec,
    dst: TopologySpec,
) -> dict:
    """Remap an engine snapshot from topology ``src`` onto ``dst``.

    Exact: loading the result into a ``dst``-shaped engine and training
    continues the ``src`` trajectory bit-for-bit (the reduction layouts
    must match — checked). ``model`` is any same-architecture instance.
    """
    _check_reshardable(src, dst)
    if src.same_shape(dst):
        return engine_sd
    return decanonicalize(canonicalize(engine_sd, model, src), model, dst)


def reshard_trainer_state(
    trainer_sd: dict,
    model: "Module",
    src: TopologySpec,
    dst: TopologySpec,
) -> dict:
    """Remap a trainer snapshot (engine + history) across topologies."""
    unknown = set(trainer_sd) - TRAINER_STATE_KEYS
    if unknown:
        raise ElasticCompatibilityError(
            f"trainer state keys {sorted(unknown)} have no reshard mapping "
            "(update repro.elastic.reshard and TRAINER_STATE_KEYS)"
        )
    return {
        "engine": reshard_engine_state(trainer_sd["engine"], model, src, dst),
        "history": {
            k: np.asarray(v).copy() for k, v in trainer_sd["history"].items()
        },
    }
