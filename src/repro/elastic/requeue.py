"""Preemption/requeue lifecycle: train through a sequence of worlds.

On Frontier-class machines a pretraining job does not own its nodes for
the whole run — the scheduler preempts it (SIGTERM after a grace
warning), requeues it, and may hand the next incarnation a *different*
allocation. This module simulates that lifecycle end to end:

- :class:`Allocation` — one scheduler grant (strategy, world size,
  accumulation depth, backend) that can build its engine.
- :func:`compatible_allocations` — every allocation that continues a
  given :class:`~repro.elastic.layout.ReductionLayout` bit-exactly.
- :class:`ResizeScheduler` — a seeded scheduler that picks preemption
  steps and the next allocation for each requeue.
- :class:`RequeueDriver` — the sbatch-requeue loop: build the trainer
  for the current allocation, train until
  :class:`~repro.elastic.errors.PreemptedError` unwinds it (the drained
  step's snapshot is already on disk), then rebuild under the next
  allocation and resume — resharding the checkpoint on the way in.
- :func:`elastic_resume` — :meth:`resume` that reshards instead of
  refusing when the snapshot topology differs from the engine.

The invariant all of this preserves: the concatenated loss history and
final parameters of a preempted/resized run are **bit-identical** to the
uninterrupted run (the resize chaos campaign asserts exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.elastic.errors import ElasticCompatibilityError, PreemptedError
from repro.elastic.layout import (
    SINGLE_STAGE_STRATEGIES,
    ReductionLayout,
)
from repro.elastic.preemption import PreemptionToken
from repro.elastic.reshard import (
    TopologySpec,
    engine_topology,
    reshard_trainer_state,
)

__all__ = [
    "Allocation",
    "compatible_allocations",
    "ResizeScheduler",
    "RequeueDriver",
    "RequeueReport",
    "elastic_resume",
]


@dataclass(frozen=True)
class Allocation:
    """One scheduler grant: the world a training incarnation runs in.

    ``shard_size`` is only meaningful for ``HYBRID_SHARD`` (other
    strategies imply it); ``grad_accum_steps`` is the accumulation depth
    that keeps the global batch constant across world sizes.
    """

    strategy: str
    world_size: int
    grad_accum_steps: int = 1
    shard_size: int | None = None
    backend: str = "inline"
    ranks_per_node: int | None = None

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.grad_accum_steps < 1:
            raise ValueError(
                f"grad_accum_steps must be >= 1, got {self.grad_accum_steps}"
            )

    def describe(self) -> str:
        """Human-readable one-liner (used in transition logs)."""
        shard = f" shard={self.shard_size}" if self.shard_size else ""
        return (
            f"{self.strategy} W={self.world_size}{shard} "
            f"k={self.grad_accum_steps} [{self.backend}]"
        )

    def build(self, model, layout: ReductionLayout, *, telemetry=None):
        """Build this allocation's engine, pinned to ``layout``.

        The engine validates that it can realize the layout (see
        :func:`repro.elastic.layout.validate_layout`), so an allocation
        that would silently change the trajectory fails to construct.
        """
        from repro.comm.world import World
        from repro.core.engine import EngineConfig, make_engine

        world = World(
            size=self.world_size,
            ranks_per_node=self.ranks_per_node or self.world_size,
        )
        cfg = EngineConfig(
            shard_size=self.shard_size,
            grad_accum_steps=self.grad_accum_steps,
            backend=self.backend,
            reduction_layout=layout,
            telemetry=telemetry,
        )
        return make_engine(model, self.strategy, world=world, config=cfg)


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def compatible_allocations(
    layout: ReductionLayout,
    *,
    backends: Sequence[str] = ("inline",),
    max_process_world: int = 4,
) -> list[Allocation]:
    """Every allocation that continues ``layout``'s trajectory bit-exact.

    A single-stage layout (``chunk == total``) is realized by any
    single-stage strategy at any world size ``W`` dividing ``total``
    (with ``grad_accum_steps = total // W``), plus HYBRID_SHARD *folded*
    to one reduction stage (single replica group:
    ``shard_size == W``). A chunked layout (``chunk < total``) is
    HYBRID_SHARD-only: ``shard_size == chunk`` and ``W`` any multiple of
    ``chunk`` dividing ``total``.

    Process-backend allocations are capped at ``max_process_world``
    ranks (each rank is an OS process; the simulation's numerics are
    backend-identical, so small worlds lose no coverage).
    """
    total, chunk = layout.total, layout.chunk
    out: list[Allocation] = []
    for backend in backends:
        worlds = [
            w
            for w in _divisors(total)
            if backend != "process" or w <= max_process_world
        ]
        if layout.single_stage:
            for w in worlds:
                k = total // w
                for strat in sorted(SINGLE_STAGE_STRATEGIES):
                    out.append(
                        Allocation(
                            strategy=strat,
                            world_size=w,
                            grad_accum_steps=k,
                            backend=backend,
                        )
                    )
                if w > 1:
                    out.append(
                        Allocation(
                            strategy="HYBRID_SHARD",
                            world_size=w,
                            grad_accum_steps=k,
                            shard_size=w,
                            backend=backend,
                        )
                    )
        else:
            for w in worlds:
                if w % chunk != 0:
                    continue
                out.append(
                    Allocation(
                        strategy="HYBRID_SHARD",
                        world_size=w,
                        grad_accum_steps=total // w,
                        shard_size=chunk,
                        backend=backend,
                    )
                )
    if not out:
        raise ElasticCompatibilityError(
            f"no allocation can realize layout {layout.describe()} with "
            f"backends {tuple(backends)!r}"
        )
    return out


class ResizeScheduler:
    """Seeded scheduler: when to preempt, and what world comes next.

    Draws ``n_resizes`` strictly increasing preemption steps in
    ``[0, total_steps - 1)`` and a next allocation for each requeue from
    :func:`compatible_allocations`. ``forced`` pins the first
    transitions (the campaign uses it for the paper's FULL_SHARD 16 →
    HYBRID 8 move); the rest are drawn uniformly.
    """

    def __init__(
        self,
        layout: ReductionLayout,
        total_steps: int,
        *,
        seed: int = 0,
        n_resizes: int = 4,
        backends: Sequence[str] = ("inline",),
        forced: Sequence[Allocation] = (),
        max_process_world: int = 4,
    ):
        if total_steps < 2:
            raise ValueError(
                f"total_steps must be >= 2 to preempt at all, got {total_steps}"
            )
        if n_resizes < len(forced):
            raise ValueError(
                f"n_resizes={n_resizes} < {len(forced)} forced transitions"
            )
        max_resizes = total_steps - 1
        if n_resizes > max_resizes:
            raise ValueError(
                f"cannot fit {n_resizes} distinct preemption steps into "
                f"{total_steps} steps"
            )
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([seed, 271828]))
        )
        steps = rng.choice(total_steps - 1, size=n_resizes, replace=False)
        self.preempt_steps: list[int] = sorted(int(s) for s in steps)
        pool = compatible_allocations(
            layout, backends=backends, max_process_world=max_process_world
        )
        self.allocations: list[Allocation] = list(forced)
        for _ in range(n_resizes - len(forced)):
            self.allocations.append(pool[int(rng.integers(len(pool)))])
        self.layout = layout

    @property
    def n_resizes(self) -> int:
        """How many preemptions this schedule fires."""
        return len(self.preempt_steps)


@dataclass
class RequeueReport:
    """What one :class:`RequeueDriver.train` lifecycle did."""

    losses: list[float]
    lrs: list[float]
    transitions: list[dict]
    requeues: int

    def summary(self) -> dict:
        """JSON-serializable digest of the lifecycle."""
        return {
            "n_steps": len(self.losses),
            "requeues": self.requeues,
            "transitions": self.transitions,
        }


class RequeueDriver:
    """The sbatch-requeue loop over a sequence of allocations.

    ``make_trainer(allocation, token)`` builds a fresh trainer for one
    incarnation — a new model instance, the allocation's engine (pinned
    to the scheduler's layout via :meth:`Allocation.build`), and a
    checkpoint directory shared across incarnations; the
    :class:`~repro.elastic.preemption.PreemptionToken` must be passed to
    the trainer so the drain point sees it. The driver arms the token at
    the scheduled step, resumes (resharding as needed), and on
    :class:`~repro.elastic.errors.PreemptedError` rotates to the next
    allocation — exactly what a Slurm requeue does to a real job.
    """

    def __init__(
        self,
        make_trainer: Callable[[Allocation, PreemptionToken], object],
        scheduler: ResizeScheduler,
        *,
        telemetry=None,
    ):
        self.make_trainer = make_trainer
        self.scheduler = scheduler
        self.telemetry = telemetry

    def train(self, total_steps: int, initial: Allocation) -> RequeueReport:
        """Run the full lifecycle; returns the stitched history."""
        alloc = initial
        transitions: list[dict] = []
        segment = 0
        while True:
            token = PreemptionToken()
            if segment < self.scheduler.n_resizes:
                token.arm_at_step(self.scheduler.preempt_steps[segment])
            trainer = self.make_trainer(alloc, token)
            span = None
            if self.telemetry is not None and self.telemetry.enabled:
                span = self.telemetry.span(
                    "elastic.segment", index=segment, allocation=alloc.describe()
                )
                span.__enter__()
            try:
                result = elastic_resume(trainer, total_steps)
                return RequeueReport(
                    losses=list(result.losses),
                    lrs=list(result.lrs),
                    transitions=transitions,
                    requeues=segment,
                )
            except PreemptedError as e:
                nxt = self.scheduler.allocations[segment]
                transitions.append(
                    {
                        "step": e.step,
                        "from": alloc.describe(),
                        "to": nxt.describe(),
                        "checkpoint": e.checkpoint,
                    }
                )
                if self.telemetry is not None and self.telemetry.enabled:
                    self.telemetry.counter(
                        "elastic.requeues",
                        1,
                        step=e.step,
                        to=nxt.describe(),
                    )
                alloc = nxt
                segment += 1
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
                trainer.engine.close()


def elastic_resume(trainer, total_steps: int):
    """Resume the latest snapshot into ``trainer``'s world, resharding.

    The elastic counterpart of
    :meth:`repro.core.trainer.CheckpointingTrainer.resume`: where a
    plain resume *refuses* a snapshot whose recorded topology differs
    from the engine, this remaps the state through
    :func:`repro.elastic.reshard.reshard_trainer_state` — provided the
    reduction layouts match, so the fp32 trajectory continues bit-exact.
    Legacy snapshots without a topology record are refused (there is no
    safe way to reshard state of unknown shape).
    """
    ckpts = trainer.checkpoints
    if ckpts is None:
        raise ValueError("elastic_resume() requires a checkpoint_dir")
    if total_steps <= 0:
        raise ValueError(f"total_steps must be positive, got {total_steps}")
    loaded = ckpts.latest_valid()
    if loaded is None:
        return trainer.resume(total_steps)
    state, meta, _ = loaded
    if (
        meta.get("seed") != trainer.seed
        or meta.get("global_batch") != trainer.global_batch
    ):
        raise ElasticCompatibilityError(
            f"snapshot was taken with seed={meta.get('seed')}, "
            f"global_batch={meta.get('global_batch')}; trainer has "
            f"seed={trainer.seed}, global_batch={trainer.global_batch} — "
            "resharding cannot reconcile a different data stream"
        )
    recorded = meta.get("elastic")
    if recorded is None:
        raise ElasticCompatibilityError(
            "snapshot predates topology records, so its sharding shape is "
            "unknown and cannot be resharded safely; resume it with the "
            "original engine configuration via trainer.resume(), then "
            "re-save"
        )
    src = TopologySpec.from_dict(recorded)
    dst = engine_topology(trainer.engine)
    trainer.load_state_dict(
        reshard_trainer_state(state, trainer.engine.model, src, dst)
    )
    start = trainer.engine.step_count
    if total_steps < start:
        raise ValueError(
            f"snapshot is already at step {start}, beyond total_steps {total_steps}"
        )
    if total_steps > start:
        trainer.run(total_steps - start, start_step=start)
    from repro.core.trainer import TrainResult

    return TrainResult(
        losses=list(trainer._hist_losses),
        lrs=list(trainer._hist_lrs),
        steps_per_epoch=trainer.steps_per_epoch,
    )
