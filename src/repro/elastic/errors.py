"""Typed errors for the elastic (preempt / requeue / reshard) lifecycle.

This module is a dependency-free leaf: it may be imported from anywhere
in the package (including :mod:`repro.core` and :mod:`repro.data`)
without creating an import cycle.
"""

from __future__ import annotations

__all__ = ["ElasticCompatibilityError", "PreemptedError"]


class ElasticCompatibilityError(ValueError):
    """A checkpoint cannot be restored into this world as-is.

    Raised instead of letting a structurally-plausible load proceed and
    silently diverge (e.g. a sampler cursor striding over a different
    world size, or an optimizer slot count from a different shard
    layout). The message always says what mismatched and what to do
    about it — usually "reshard through ``repro.elastic.elastic_resume``"
    or "restart from an epoch boundary".
    """


class PreemptedError(RuntimeError):
    """Training was drained and checkpointed in response to a preemption.

    The in-flight optimizer step ran to completion, the final snapshot
    (when a checkpoint directory is configured) was written, and the
    trainer unwound. A requeue driver catches this, builds the next
    (possibly resized) allocation, and resumes from ``checkpoint``.
    """

    def __init__(self, step: int, checkpoint: str | None = None):
        self.step = step
        self.checkpoint = checkpoint
        where = f" (final snapshot: {checkpoint})" if checkpoint else ""
        super().__init__(f"preempted after draining step {step}{where}")
