"""Resize chaos campaign: preempt, resize, resume — stay bit-exact.

One oracle run (FULL_SHARD on a 16-rank world, inline, uninterrupted)
against one chaos lifecycle: a seeded :class:`ResizeScheduler` preempts
the job at random steps and requeues it into a rotating sequence of
allocations — the paper-motivated FULL_SHARD 16 → HYBRID 8 shrink first
(the two reduction stages fold to one), then random compatible worlds
across strategies and both execution backends. Every segment resumes by
resharding the previous segment's final snapshot.

The campaign passes iff the stitched loss history and the final
parameters are **bit-identical** to the oracle: elasticity must be
invisible to the trajectory. ``main()`` writes the summary to
``benchmarks/ELASTIC_campaign.json`` for the regression gate.
"""

from __future__ import annotations

import json
import sys
from time import perf_counter

import numpy as np

from repro.elastic.layout import ReductionLayout
from repro.elastic.requeue import (
    Allocation,
    RequeueDriver,
    ResizeScheduler,
)

__all__ = ["run_resize_campaign", "main"]

#: The world the oracle trains in; every resize must continue its layout.
ORACLE_ALLOCATION = Allocation(strategy="FULL_SHARD", world_size=16)

#: The paper-motivated first resize: 16 ranks fully sharded shrink to 8
#: ranks of folded HYBRID (single replica group), accumulation depth 2
#: keeping the global batch — and the reduction layout — unchanged.
FIRST_RESIZE = Allocation(
    strategy="HYBRID_SHARD", world_size=8, grad_accum_steps=2, shard_size=8
)

#: A guaranteed process-backend segment (each rank an OS process over
#: shared memory); fp32 numerics are backend-identical.
PROCESS_RESIZE = Allocation(
    strategy="FULL_SHARD", world_size=4, grad_accum_steps=4, backend="process"
)


def _tiny_mae_model(init_seed: int):
    from repro.core.config import MAEConfig, ViTConfig
    from repro.models.mae import MaskedAutoencoder

    cfg = MAEConfig(
        encoder=ViTConfig(
            name="elastic-tiny",
            width=16,
            depth=2,
            mlp=32,
            heads=4,
            patch=8,
            img_size=16,
        ),
        dec_width=16,
        dec_depth=1,
        dec_heads=4,
        mask_ratio=0.5,
    )
    return MaskedAutoencoder(cfg, rng=np.random.default_rng(init_seed))


def run_resize_campaign(
    seed: int = 0,
    *,
    total_steps: int = 8,
    n_resizes: int = 5,
    global_batch: int = 32,
    checkpoint_dir: str | None = None,
    init_seed: int = 7,
    data_seed: int = 9,
    telemetry=None,
) -> dict:
    """Run the campaign; returns a JSON-serializable summary.

    ``checkpoint_dir`` defaults to a fresh temporary directory (removed
    by the OS eventually; pass one explicitly to inspect snapshots).
    The summary's ``bit_identical`` is the pass/fail verdict: stitched
    losses and final parameters exactly equal to the oracle's.
    """
    import tempfile

    if checkpoint_dir is None:
        checkpoint_dir = tempfile.mkdtemp(prefix="elastic-campaign-")

    layout = ReductionLayout(
        total=ORACLE_ALLOCATION.world_size * ORACLE_ALLOCATION.grad_accum_steps,
        chunk=ORACLE_ALLOCATION.world_size * ORACLE_ALLOCATION.grad_accum_steps,
    )
    rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, 424242]))
    )
    images = rng.standard_normal((2 * global_batch, 3, 16, 16))

    t0 = perf_counter()

    # Oracle: uninterrupted FULL_SHARD 16, inline. The schedule is shared
    # explicitly by every incarnation: the default one derives base_lr
    # from the engine's *current* lr, which a restored snapshot has
    # already advanced.
    from repro.core.trainer import MAEPretrainer
    from repro.optim.schedules import CosineWithWarmup

    oracle_engine = ORACLE_ALLOCATION.build(_tiny_mae_model(init_seed), layout)
    schedule = CosineWithWarmup(
        base_lr=oracle_engine.lr,
        total_steps=total_steps,
        warmup_steps=max(1, total_steps // 10),
    )
    oracle = MAEPretrainer(
        oracle_engine,
        images,
        global_batch=global_batch,
        schedule=schedule,
        seed=data_seed,
    )
    oracle_result = oracle.run(total_steps)
    oracle_params = {
        name: p.data.copy() for name, p in oracle_engine.model.named_parameters()
    }
    oracle_engine.close()

    # Chaos lifecycle: preempt at random steps, resize, reshard, resume.
    scheduler = ResizeScheduler(
        layout,
        total_steps,
        seed=seed,
        n_resizes=n_resizes,
        backends=("inline", "process"),
        forced=(FIRST_RESIZE, PROCESS_RESIZE),
    )

    def make_trainer(alloc: Allocation, token):
        engine = alloc.build(
            _tiny_mae_model(init_seed), layout, telemetry=telemetry
        )
        return MAEPretrainer(
            engine,
            images,
            global_batch=global_batch,
            schedule=schedule,
            seed=data_seed,
            checkpoint_dir=checkpoint_dir,
            save_every=1,
            keep=3,
            preemption=token,
            telemetry=telemetry,
        )

    driver = RequeueDriver(make_trainer, scheduler, telemetry=telemetry)
    report = driver.train(total_steps, ORACLE_ALLOCATION)

    # Verdict: the resized lifecycle must be invisible to the trajectory.
    losses_equal = report.losses == oracle_result.losses
    final = _tiny_mae_model(init_seed)
    verify_engine = ORACLE_ALLOCATION.build(final, layout)
    verify = MAEPretrainer(
        verify_engine,
        images,
        global_batch=global_batch,
        schedule=schedule,
        seed=data_seed,
        checkpoint_dir=checkpoint_dir,
    )
    from repro.elastic.requeue import elastic_resume

    # The final segment snapshotted at total_steps (save_every=1), so this
    # pure-reshard load recovers the lifecycle's *final* state on the
    # oracle topology without retraining a single step.
    elastic_resume(verify, total_steps)
    max_diff = 0.0
    params_equal = True
    for name, p in verify_engine.model.named_parameters():
        diff = float(np.max(np.abs(p.data - oracle_params[name])))
        max_diff = max(max_diff, diff)
        if diff != 0.0:
            params_equal = False
    verify_engine.close()

    return {
        "seed": seed,
        "total_steps": total_steps,
        "global_batch": global_batch,
        "layout": {"total": layout.total, "chunk": layout.chunk},
        "oracle": ORACLE_ALLOCATION.describe(),
        "requeues": report.requeues,
        "transitions": report.transitions,
        "backends_exercised": sorted(
            {a.backend for a in [ORACLE_ALLOCATION, *scheduler.allocations]}
        ),
        "losses_bit_equal": losses_equal,
        "max_abs_param_diff": max_diff,
        "bit_identical": bool(losses_equal and params_equal),
        "wall_s": round(perf_counter() - t0, 3),
    }


def _echo(text: str) -> None:
    """CLI output helper (library code never calls bare print())."""
    sys.stdout.write(text + "\n")


def main(out_path: str = "benchmarks/ELASTIC_campaign.json") -> dict:
    """CLI entry: run the campaign and write the summary artifact."""
    summary = run_resize_campaign()
    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    status = "BIT-IDENTICAL" if summary["bit_identical"] else "DIVERGED"
    _echo(
        f"resize campaign: {summary['requeues']} requeues over "
        f"{summary['total_steps']} steps -> {status} "
        f"(max |dp| = {summary['max_abs_param_diff']:.1e})"
    )
    for t in summary["transitions"]:
        _echo(f"  step {t['step']:>3}: {t['from']} -> {t['to']}")
    return summary


if __name__ == "__main__":
    main()
