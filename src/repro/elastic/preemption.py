"""Simulated Slurm preemption: signal handling and drain tokens.

The shape follows the cluster requeue handler that real Frontier/Slurm
jobs install (SNIPPETS.md snippet 3): the scheduler delivers
``SIGUSR1``/``SIGTERM`` ahead of the kill, a module flag flips, and the
training loop — not the signal handler — drains the in-flight step,
writes a final checkpoint, and requeues itself. Two rules carry over
verbatim:

- **Only the main process reacts.** Spawned backend workers inherit
  nothing here (they never install the handler), and a handler that
  somehow runs in a child compares ``os.getpid()`` against the
  installing PID and does nothing — the exponential-requeue footgun the
  exemplar warns about.
- **The handler only sets a flag.** All real work (finishing the step,
  checkpointing, unwinding) happens at a step boundary in the training
  loop, where the program state is consistent.

:class:`PreemptionToken` is the flag object, shared between the handler
(or a test/scheduler that calls :meth:`PreemptionToken.trip` directly)
and the trainers, which check it once per recorded step. Tokens can
also be *armed* at an absolute step for deterministic chaos campaigns —
"the scheduler preempts this run at step 7" — without any signal
involved.
"""

from __future__ import annotations

import os
import signal
import threading

__all__ = ["PreemptionToken", "PreemptionHandler"]


class PreemptionToken:
    """Thread-safe preemption flag checked at step boundaries.

    The token trips either asynchronously (:meth:`trip`, e.g. from a
    signal handler) or deterministically when training reaches an armed
    absolute step (:meth:`arm_at_step`). Trainers call
    :meth:`should_preempt` after recording each optimizer step.
    """

    def __init__(self) -> None:
        self._tripped = threading.Event()
        self._lock = threading.Lock()
        self._armed_step: int | None = None
        self.reason: str | None = None

    def trip(self, reason: str = "signal") -> None:
        """Request a drain at the next step boundary."""
        with self._lock:
            if self.reason is None:
                self.reason = reason
        self._tripped.set()

    def arm_at_step(self, step: int) -> None:
        """Schedule a deterministic preemption once ``step`` completes."""
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        with self._lock:
            self._armed_step = step

    @property
    def tripped(self) -> bool:
        """True once an asynchronous preemption was requested."""
        return self._tripped.is_set()

    def should_preempt(self, step: int) -> bool:
        """Whether a run that just completed ``step`` must drain now."""
        if self._tripped.is_set():
            return True
        with self._lock:
            armed = self._armed_step
        if armed is not None and step >= armed:
            with self._lock:
                if self.reason is None:
                    self.reason = f"scheduler preemption armed at step {armed}"
            return True
        return False

    def reset(self) -> None:
        """Clear the flag and any armed step (for the next allocation)."""
        self._tripped.clear()
        with self._lock:
            self._armed_step = None
            self.reason = None


class PreemptionHandler:
    """Context manager installing signal handlers that trip a token.

    ::

        token = PreemptionToken()
        with PreemptionHandler(token):
            trainer = MAEPretrainer(..., preemption=token)
            try:
                trainer.resume(total_steps)
            except PreemptedError as e:
                requeue_from(e.checkpoint)

    Previously-installed handlers are restored on exit. Signals received
    by a process other than the installer (a spawned backend worker that
    inherited the handler through re-import would be a bug, but defense
    in depth is cheap) are ignored.
    """

    def __init__(
        self,
        token: PreemptionToken,
        signals: tuple[signal.Signals, ...] = (signal.SIGUSR1, signal.SIGTERM),
    ) -> None:
        self.token = token
        self.signals = signals
        self._main_pid = os.getpid()
        self._previous: dict[int, object] = {}

    def _handle(self, signum: int, frame) -> None:
        if os.getpid() != self._main_pid:
            return  # only the installing (main) process drains and requeues
        self.token.trip(reason=f"signal {signal.Signals(signum).name}")

    def __enter__(self) -> "PreemptionHandler":
        for sig in self.signals:
            self._previous[int(sig)] = signal.getsignal(sig)
            signal.signal(sig, self._handle)
        return self

    def __exit__(self, *exc) -> None:
        for sig in self.signals:
            prev = self._previous.pop(int(sig), None)
            if prev is not None:
                signal.signal(sig, prev)
