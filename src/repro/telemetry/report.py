"""Aggregation of telemetry event streams into run-level summaries.

:class:`RunReport` folds a recorded event stream into exactly the
quantities the paper reports per run: throughput (images/second), the
communication share of a step, per-collective byte/retry totals, and
loss/LR trajectories. The experiment drivers (``experiments/fig1.py``,
``fig2.py``) compute their communication-share numbers from bus events
through :func:`comm_share_from_events` instead of ad-hoc accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.telemetry.bus import TelemetryEvent, read_jsonl

__all__ = [
    "SpanAgg",
    "GaugeAgg",
    "RunReport",
    "gauge_series",
    "comm_share_from_events",
]


@dataclass
class SpanAgg:
    """Accumulated statistics of one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    bytes: float = 0.0

    def add(self, event: TelemetryEvent) -> None:
        """Fold one span event in."""
        self.count += 1
        self.total_s += event.value
        self.max_s = max(self.max_s, event.value)
        self.bytes += float(event.attrs.get("bytes", 0.0))

    @property
    def mean_s(self) -> float:
        """Mean span duration in seconds."""
        return self.total_s / self.count if self.count else 0.0


@dataclass
class GaugeAgg:
    """Accumulated statistics of one gauge name."""

    name: str
    count: int = 0
    total: float = 0.0
    last: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def add(self, event: TelemetryEvent) -> None:
        """Fold one gauge reading in."""
        self.count += 1
        self.total += event.value
        self.last = event.value
        self.min = min(self.min, event.value)
        self.max = max(self.max, event.value)

    @property
    def mean(self) -> float:
        """Mean reading."""
        return self.total / self.count if self.count else 0.0


@dataclass
class RunReport:
    """Run-level aggregate of one telemetry event stream.

    Spans are grouped by name (durations and ``bytes`` attrs summed) —
    and, when tagged with a mesh ``axis`` attr, a second time by axis —
    counters are summed, gauges keep count/mean/last/min/max. The
    derived properties map one-to-one onto the paper's reported
    quantities — see DESIGN.md's observability section.
    """

    spans: dict[str, SpanAgg] = field(default_factory=dict)
    axis_spans: dict[str, SpanAgg] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    tenant_counters: dict[str, dict[str, float]] = field(default_factory=dict)
    gauges: dict[str, GaugeAgg] = field(default_factory=dict)
    n_events: int = 0

    @classmethod
    def from_events(cls, events: Iterable[TelemetryEvent]) -> "RunReport":
        """Aggregate an in-memory event stream."""
        report = cls()
        for e in events:
            report.n_events += 1
            if e.kind == "span":
                report.spans.setdefault(e.name, SpanAgg(e.name)).add(e)
                # Mesh engines tag collective spans with their mesh axis
                # (tp/pp/dp); fold a second grouping so the crossover
                # tables can report traffic per parallelism axis.
                axis = e.attrs.get("axis")
                if axis is not None:
                    report.axis_spans.setdefault(
                        str(axis), SpanAgg(str(axis))
                    ).add(e)
            elif e.kind == "counter":
                report.counters[e.name] = report.counters.get(e.name, 0.0) + e.value
                # The serving door tags multi-tenant counters with the
                # tenant name; fold a second grouping (the axis_spans
                # pattern) so per-tenant ledgers come from the bus.
                tenant = e.attrs.get("tenant")
                if tenant is not None:
                    bucket = report.tenant_counters.setdefault(str(tenant), {})
                    bucket[e.name] = bucket.get(e.name, 0.0) + e.value
            elif e.kind == "gauge":
                report.gauges.setdefault(e.name, GaugeAgg(e.name)).add(e)
            else:
                raise ValueError(f"unknown event kind {e.kind!r}")
        return report

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "RunReport":
        """Aggregate a JSONL stream written by ``JsonlSink``."""
        return cls.from_events(read_jsonl(path))

    # -- derived quantities (the paper's observables) ----------------------

    def span_seconds(self, prefix: str) -> float:
        """Total seconds across span names starting with ``prefix``."""
        return sum(a.total_s for n, a in self.spans.items() if n.startswith(prefix))

    def span_bytes(self, prefix: str = "comm.") -> float:
        """Total ``bytes`` attr across span names starting with ``prefix``."""
        return sum(a.bytes for n, a in self.spans.items() if n.startswith(prefix))

    def axis_bytes(self, axis: str) -> float:
        """Wire bytes moved on one mesh axis (``"tp"``/``"pp"``/``"dp"``)."""
        agg = self.axis_spans.get(axis)
        return agg.bytes if agg is not None else 0.0

    def axis_calls(self, axis: str) -> int:
        """Collective invocations tagged with one mesh axis."""
        agg = self.axis_spans.get(axis)
        return agg.count if agg is not None else 0

    def tenant_counter(self, tenant: str, name: str) -> float:
        """One tenant's share of counter ``name`` (0.0 when untagged).

        Per-tenant shares never exceed the aggregate:
        ``sum_t tenant_counter(t, n) <= counters[n]`` — anonymous
        (untagged) traffic accounts for the remainder.
        """
        return self.tenant_counters.get(tenant, {}).get(name, 0.0)

    def untagged_comm_bytes(self) -> float:
        """``comm.`` span bytes carrying no ``axis=`` tag.

        The global comm ledger decomposes exactly:
        ``span_bytes("comm.") == sum(axis_bytes(a)) + untagged_comm_bytes()``
        — the reconciliation tests pin that identity.
        """
        tagged = sum(a.bytes for a in self.axis_spans.values())
        return self.span_bytes("comm.") - tagged

    @property
    def comm_seconds(self) -> float:
        """Wall seconds spent inside collective spans."""
        return self.span_seconds("comm.")

    @property
    def compute_seconds(self) -> float:
        """Wall seconds spent inside forward/backward spans."""
        return self.span_seconds("compute.")

    @property
    def step_seconds(self) -> float:
        """Total wall seconds across recorded optimizer steps."""
        agg = self.gauges.get("step.wall_s")
        if agg is not None and agg.total > 0:
            return agg.total
        # Fallback when only engine spans were recorded.
        return self.comm_seconds + self.compute_seconds + self.span_seconds("optim.")

    @property
    def comm_share(self) -> float:
        """Communication share of the run (comm seconds / step seconds)."""
        denom = self.step_seconds
        return self.comm_seconds / denom if denom > 0 else 0.0

    @property
    def n_steps(self) -> int:
        """Number of optimizer steps with emitted ``StepStats``."""
        agg = self.gauges.get("step.loss")
        return agg.count if agg is not None else 0

    @property
    def images_per_sec(self) -> float:
        """Mean per-step throughput (images/second)."""
        agg = self.gauges.get("step.images_per_s")
        return agg.mean if agg is not None else 0.0

    @property
    def final_loss(self) -> float:
        """Loss at the last recorded step."""
        agg = self.gauges.get("step.loss")
        return agg.last if agg is not None else float("nan")

    def render(self) -> str:
        """Human-readable multi-line summary of the run."""
        lines = [
            f"steps: {self.n_steps}   images/s (mean): {self.images_per_sec:.1f}   "
            f"comm share: {100 * self.comm_share:.1f}%",
        ]
        if self.spans:
            lines.append(f"{'span':<24} {'calls':>6} {'total s':>10} {'mean us':>10}")
            for name in sorted(self.spans, key=lambda n: -self.spans[n].total_s):
                a = self.spans[name]
                lines.append(
                    f"{name:<24} {a.count:>6} {a.total_s:>10.4f} "
                    f"{1e6 * a.mean_s:>10.1f}"
                )
        if self.counters:
            lines.append("counters: " + ", ".join(
                f"{k}={v:g}" for k, v in sorted(self.counters.items())
            ))
        return "\n".join(lines)


def gauge_series(
    events: Iterable[TelemetryEvent], name: str, **attr_filter
) -> list[float]:
    """Readings of gauge ``name`` whose attrs match every filter kwarg."""
    out = []
    for e in events:
        if e.kind != "gauge" or e.name != name:
            continue
        if all(e.attrs.get(k) == v for k, v in attr_filter.items()):
            out.append(e.value)
    return out


def comm_share_from_events(events: Iterable[TelemetryEvent], **attr_filter) -> float:
    """Exposed-communication share from published ``perf.*`` gauges.

    The scaling drivers publish one ``perf.step_time_s`` and one
    ``perf.exposed_comm_s`` gauge per simulated point; this folds the
    matching readings into a share, so experiment scripts report the
    number the bus carries rather than re-deriving it locally.
    """
    events = list(events)
    step = sum(gauge_series(events, "perf.step_time_s", **attr_filter))
    comm = sum(gauge_series(events, "perf.exposed_comm_s", **attr_filter))
    return comm / step if step > 0 else 0.0
