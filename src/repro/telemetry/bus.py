"""In-process telemetry bus: spans, counters, and gauges for real runs.

The paper's entire performance study (Sections III-IV) is built from
instrumentation — images/s weak-scaling curves, per-GPU memory, the
communication share of a step, and rocm-smi power/utilization traces.
This module is the measured counterpart of the *simulated* timelines in
:mod:`repro.perf`: a zero-dependency (stdlib + NumPy-free) event bus the
hot layers publish to while they run.

Three primitives, one event record:

``span``
    A timed region (``with bus.span("comm.all_reduce", bytes=n): ...``).
    Spans nest; each event records its start offset, duration, and
    nesting depth, which is exactly what the Chrome-trace exporter needs
    to render a measured step in Perfetto.
``counter``
    A monotonically accumulated quantity (retries, backoff seconds,
    wire bytes). Counters with the same name are summed on aggregation.
``gauge``
    A point-in-time reading (loss, lr, images/s, power draw).

Design rules:

- **Opt-in and near-free when off.** The default sink is
  :class:`NullSink`; with it attached, ``bus.span(...)`` returns a
  cached no-op context manager and ``counter``/``gauge`` return
  immediately — the hot path pays one attribute check per call site
  (guarded by the ``bench_hotpath`` regression gate).
- **Step attribution.** Engines call :meth:`TelemetryBus.set_step` at
  the top of every optimizer step, so every event — including retry
  backoff charged deep inside the collective layer — lands on the step
  that incurred it.
- **Plain data out.** Events are frozen dataclasses that serialize to
  one JSON object each; :class:`JsonlSink` streams them to disk and
  :func:`read_jsonl` round-trips them back.
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = [
    "TelemetryEvent",
    "Sink",
    "NullSink",
    "RecordingSink",
    "JsonlSink",
    "TelemetryBus",
    "StepStats",
    "NULL_BUS",
    "read_jsonl",
]

#: Event kinds a bus can emit.
EVENT_KINDS = ("span", "counter", "gauge")


@dataclass(frozen=True)
class TelemetryEvent:
    """One bus emission (a finished span, a counter bump, or a reading).

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    name:
        Dotted metric name; the prefix is the subsystem (``comm.``,
        ``compute.``, ``step.``, ``data.``, ``hw.``, ``perf.``).
    value:
        Span duration in seconds, counter increment, or gauge reading.
    t_s:
        Seconds since the bus epoch (span *start* time for spans).
    step:
        Optimizer step the event is attributed to (``None`` outside a
        training step).
    depth:
        Span nesting depth at emission (0 = outermost); 0 for
        counters/gauges.
    attrs:
        Small JSON-able attribute mapping (bytes moved, op name, ...).
    """

    kind: str
    name: str
    value: float
    t_s: float
    step: int | None = None
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """The event as one JSON-ready dict (inverse of :meth:`from_json`)."""
        out = {
            "kind": self.kind,
            "name": self.name,
            "value": self.value,
            "t_s": self.t_s,
            "step": self.step,
            "depth": self.depth,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_json(cls, d: dict) -> "TelemetryEvent":
        """Rebuild an event from :meth:`to_json` output."""
        return cls(
            kind=str(d["kind"]),
            name=str(d["name"]),
            value=float(d["value"]),
            t_s=float(d["t_s"]),
            step=d.get("step"),
            depth=int(d.get("depth", 0)),
            attrs=dict(d.get("attrs", {})),
        )


class Sink:
    """Destination for bus events (subclass hook)."""

    def emit(self, event: TelemetryEvent) -> None:
        """Consume one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class NullSink(Sink):
    """Discards every event; the default, near-zero-overhead sink."""

    def emit(self, event: TelemetryEvent) -> None:
        """Drop the event."""


class RecordingSink(Sink):
    """Keeps every event in memory (``.events``) for in-process analysis."""

    def __init__(self):
        self.events: list[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(event)


class JsonlSink(Sink):
    """Streams events to a JSONL file (one JSON object per line).

    Accepts a path (opened and owned by the sink; :meth:`close` closes
    it) or an already-open text file object (caller keeps ownership).
    """

    def __init__(self, path_or_file: str | Path | io.TextIOBase):
        if isinstance(path_or_file, (str, Path)):
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owned = True
        else:
            self._file = path_or_file
            self._owned = False
        self.n_events = 0

    def emit(self, event: TelemetryEvent) -> None:
        """Write the event as one JSON line."""
        self._file.write(json.dumps(event.to_json()) + "\n")
        self.n_events += 1

    def close(self) -> None:
        """Flush; close the file if this sink opened it."""
        self._file.flush()
        if self._owned:
            self._file.close()


def read_jsonl(path: str | Path) -> list[TelemetryEvent]:
    """Load a JSONL event stream written by :class:`JsonlSink`."""
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(TelemetryEvent.from_json(json.loads(line)))
    return events


class _NullSpan:
    """Cached no-op context manager returned by disabled buses."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: times one region and emits a ``span`` event on exit."""

    __slots__ = ("_bus", "_name", "_attrs", "_t0")

    def __init__(self, bus: "TelemetryBus", name: str, attrs: dict):
        self._bus = bus
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        self._bus._depth += 1
        self._t0 = self._bus._clock()
        return self

    def __exit__(self, *exc):
        bus = self._bus
        t1 = bus._clock()
        bus._depth -= 1
        bus.sink.emit(
            TelemetryEvent(
                kind="span",
                name=self._name,
                value=t1 - self._t0,
                t_s=self._t0 - bus._epoch,
                step=bus.step,
                depth=bus._depth,
                attrs=self._attrs,
            )
        )
        return False


class TelemetryBus:
    """The instrumentation bus the hot layers publish to.

    Parameters
    ----------
    sink:
        Event destination; defaults to :class:`NullSink` (telemetry
        off). Swap at any time with :meth:`attach`.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(self, sink: Sink | None = None, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._depth = 0
        self.step: int | None = None
        self.attach(sink if sink is not None else NullSink())

    @property
    def enabled(self) -> bool:
        """False when the attached sink is a :class:`NullSink`."""
        return self._enabled

    def attach(self, sink: Sink) -> "TelemetryBus":
        """Swap the sink (returns self so construction chains)."""
        self.sink = sink
        self._enabled = not isinstance(sink, NullSink)
        return self

    def set_step(self, step: int | None) -> None:
        """Attribute subsequent events to optimizer step ``step``."""
        self.step = step

    def span(self, name: str, **attrs) -> _Span | _NullSpan:
        """Context manager timing one region; no-op when disabled."""
        if not self._enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def counter(self, name: str, value: float = 1.0, **attrs) -> None:
        """Accumulate ``value`` onto counter ``name``."""
        if not self._enabled:
            return
        self.sink.emit(
            TelemetryEvent(
                kind="counter",
                name=name,
                value=float(value),
                t_s=self._clock() - self._epoch,
                step=self.step,
                attrs=attrs,
            )
        )

    def gauge(self, name: str, value: float, **attrs) -> None:
        """Record a point-in-time reading of ``name``."""
        if not self._enabled:
            return
        self.sink.emit(
            TelemetryEvent(
                kind="gauge",
                name=name,
                value=float(value),
                t_s=self._clock() - self._epoch,
                step=self.step,
                attrs=attrs,
            )
        )

    def record_span(
        self, name: str, start_s: float, duration_s: float, **attrs
    ) -> None:
        """Emit a span whose extent is already known (no context manager).

        For event-driven layers (the serving loop) a region's start and
        duration are scheduler facts, not something a ``with`` block can
        measure — the work is dispatched at one event and delivered at a
        later one. ``start_s`` is a reading of the bus's own clock (the
        same values ``clock()`` returns); it is converted to the bus
        epoch exactly like a live span's start.
        """
        if not self._enabled:
            return
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        self.sink.emit(
            TelemetryEvent(
                kind="span",
                name=name,
                value=float(duration_s),
                t_s=start_s - self._epoch,
                step=self.step,
                depth=self._depth,
                attrs=attrs,
            )
        )

    def merge(self, events, **attrs) -> None:
        """Replay events recorded on another bus (e.g. a worker rank's).

        The process execution backend fans in per-worker telemetry each
        round: workers record on a local bus, serialize into a shared
        event buffer, and the parent replays them here. Kind, name,
        value (a span's *duration* survives intact), depth and original
        attributes are preserved; ``attrs`` (typically ``rank=r``) are
        merged on top. ``t_s`` is re-stamped on this bus's clock and
        ``step`` on this bus's current step: worker clocks live in a
        different time domain, so their raw offsets are not comparable
        with the parent timeline.
        """
        if not self._enabled:
            return
        now = self._clock() - self._epoch
        for ev in events:
            self.sink.emit(
                TelemetryEvent(
                    kind=ev.kind,
                    name=ev.name,
                    value=ev.value,
                    t_s=now,
                    step=self.step,
                    depth=ev.depth,
                    attrs={**ev.attrs, **attrs},
                )
            )

    def close(self) -> None:
        """Close the attached sink."""
        self.sink.close()


#: Shared disabled bus; the default `telemetry` of every instrumented layer.
NULL_BUS = TelemetryBus()


@dataclass(frozen=True)
class StepStats:
    """Per-optimizer-step training vitals (the paper's core observables).

    Emitted by the trainers after every step: wall time, throughput in
    images/second (the y-axis of Figures 1-4), loss, and learning rate.
    """

    step: int
    wall_s: float
    images_per_s: float
    loss: float
    lr: float

    def emit(self, telemetry: TelemetryBus) -> None:
        """Publish the stats as ``step.*`` gauges attributed to the step."""
        telemetry.set_step(self.step)
        telemetry.gauge("step.wall_s", self.wall_s)
        telemetry.gauge("step.images_per_s", self.images_per_s)
        telemetry.gauge("step.loss", self.loss)
        telemetry.gauge("step.lr", self.lr)
