"""Chrome-trace export of *measured* telemetry spans.

Converts a recorded :class:`~repro.telemetry.bus.TelemetryEvent` stream
into the Trace Event JSON format, reusing the writer that already serves
the simulated timelines (:mod:`repro.perf.tracing`) — so a measured DDP
or FSDP run opens in ``chrome://tracing`` / Perfetto exactly like the
simulated step schedules do.

Spans become complete (``"X"``) events on one thread per nesting depth
(Perfetto renders properly-nested same-thread slices as a flame stack);
gauges and counters become counter (``"C"``) events so loss, images/s,
and power traces plot as counter tracks under the slices.
"""

from __future__ import annotations

from typing import Iterable

from repro.telemetry.bus import TelemetryEvent

__all__ = ["to_trace_events", "write_span_trace"]

_US = 1e6  # trace event timestamps are microseconds


def to_trace_events(
    events: Iterable[TelemetryEvent], process_name: str = "measured"
) -> list[dict]:
    """Convert bus events into Chrome Trace Event dicts."""
    out: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "args": {"name": process_name}},
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "train"},
        },
    ]
    for e in events:
        if e.kind == "span":
            args = dict(e.attrs)
            if e.step is not None:
                args["step"] = e.step
            out.append(
                {
                    "name": e.name,
                    "ph": "X",
                    "pid": 0,
                    "tid": 0,
                    "ts": e.t_s * _US,
                    "dur": e.value * _US,
                    "cat": e.name.split(".", 1)[0],
                    "args": args,
                }
            )
        else:  # counter / gauge -> Perfetto counter track
            out.append(
                {
                    "name": e.name,
                    "ph": "C",
                    "pid": 0,
                    "ts": e.t_s * _US,
                    "args": {e.name: e.value},
                }
            )
    return out


def write_span_trace(
    events: Iterable[TelemetryEvent], path: str, process_name: str = "measured"
) -> None:
    """Write a measured-run trace JSON to ``path`` (open with Perfetto)."""
    # Imported here, not at module level: repro.perf pulls in repro.core,
    # whose engines import repro.backend, which imports this package —
    # a top-level import would close that cycle.
    from repro.perf.tracing import write_trace_json

    write_trace_json(to_trace_events(events, process_name), path)
