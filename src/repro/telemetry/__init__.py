"""Telemetry: measured observability for every training step.

The in-process instrumentation bus (:mod:`repro.telemetry.bus`) the hot
layers publish spans/counters/gauges to, the run-level aggregation
(:mod:`repro.telemetry.report`), and the Perfetto/Chrome-trace exporter
for measured runs (:mod:`repro.telemetry.chrome`).

Attach a sink to turn it on::

    from repro import TelemetryBus, RecordingSink, RunReport, make_engine

    bus = TelemetryBus(RecordingSink())
    engine = make_engine(model, "full_shard", world=world,
                         config=EngineConfig(telemetry=bus))
    trainer = MAEPretrainer(engine, images, global_batch=64)
    trainer.run(50)
    print(RunReport.from_events(bus.sink.events).render())

The default sink is :class:`~repro.telemetry.bus.NullSink` — telemetry
is opt-in and near-free when off (guarded by the hot-path benchmark
regression gate).
"""

from repro.telemetry.bus import (
    NULL_BUS,
    JsonlSink,
    NullSink,
    RecordingSink,
    Sink,
    StepStats,
    TelemetryBus,
    TelemetryEvent,
    read_jsonl,
)
from repro.telemetry.chrome import to_trace_events, write_span_trace
from repro.telemetry.report import (
    GaugeAgg,
    RunReport,
    SpanAgg,
    comm_share_from_events,
    gauge_series,
)

__all__ = [
    "TelemetryBus",
    "TelemetryEvent",
    "Sink",
    "NullSink",
    "RecordingSink",
    "JsonlSink",
    "StepStats",
    "NULL_BUS",
    "read_jsonl",
    "RunReport",
    "SpanAgg",
    "GaugeAgg",
    "gauge_series",
    "comm_share_from_events",
    "to_trace_events",
    "write_span_trace",
]
