"""Downstream evaluation: feature extraction, linear probing, metrics.

Implements the paper's Section V-C protocol: freeze the MAE-pretrained
encoder, replace the head with a single linear classifier, train it with
LARS (base LR 0.1, no weight decay), and report top-1 / top-5 scene
classification accuracy per probing epoch.
"""

from repro.eval.features import extract_features, standardize_features
from repro.eval.few_shot import FewShotResult, few_shot_probe
from repro.eval.finetune import FinetuneResult, finetune, vit_from_mae
from repro.eval.linear_probe import LinearProbeResult, linear_probe
from repro.eval.metrics import confusion_matrix, topk_accuracy
from repro.eval.segmentation import SegProbeResult, mean_iou, segmentation_probe

__all__ = [
    "extract_features",
    "standardize_features",
    "linear_probe",
    "LinearProbeResult",
    "few_shot_probe",
    "FewShotResult",
    "finetune",
    "FinetuneResult",
    "vit_from_mae",
    "segmentation_probe",
    "SegProbeResult",
    "mean_iou",
    "topk_accuracy",
    "confusion_matrix",
]
