"""Fine-tuning protocols (paper Section II, 'Evaluation protocols for FMs').

The paper describes the spectrum of downstream adaptation: from linear
probing (everything frozen; Section V) through partial fine-tuning
(freeze the first k blocks) to full fine-tuning, contrasted against
fully-supervised from-scratch baselines. The paper runs only linear
probing at scale; this module implements the rest of the spectrum so the
comparison can be made at proxy scale:

- :func:`vit_from_mae` — initialize a classification ViT from an
  MAE-pretrained encoder (the standard transfer step);
- :func:`finetune` — supervised training with an optional frozen prefix
  (``freeze_blocks=k`` freezes the embeddings and the first k blocks;
  ``from_scratch=True`` skips the pretrained initialization entirely,
  giving the supervised baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ViTConfig
from repro.data.datasets import SplitDataset
from repro.eval.metrics import topk_accuracy
from repro.models.mae import MaskedAutoencoder
from repro.models.vit import VisionTransformer
from repro.optim.adamw import AdamW
from repro.optim.schedules import CosineWithWarmup

__all__ = ["FinetuneResult", "vit_from_mae", "finetune"]


@dataclass
class FinetuneResult:
    """Per-epoch records of one fine-tuning run."""

    dataset: str
    model: str
    freeze_blocks: int
    from_scratch: bool
    top1: list[float] = field(default_factory=list)
    top5: list[float] = field(default_factory=list)
    train_losses: list[float] = field(default_factory=list)
    n_trainable: int = 0

    @property
    def final_top1(self) -> float:
        """Top-1 accuracy after the last epoch."""
        return self.top1[-1]


def vit_from_mae(
    mae: MaskedAutoencoder, n_classes: int, rng: np.random.Generator | None = None
) -> VisionTransformer:
    """Build a classifier ViT initialized from an MAE encoder.

    Copies patch embedding, class token, encoder blocks, and the final
    norm; the classification head is freshly initialized.
    """
    cfg: ViTConfig = mae.cfg.encoder
    rng = rng if rng is not None else np.random.default_rng(0)
    vit = VisionTransformer(cfg, n_classes=n_classes, rng=rng)
    mapping = {
        "patch_embed.proj.weight": "patch_proj.weight",
        "patch_embed.proj.bias": "patch_proj.bias",
        "cls_token": "cls_token",
        "norm.gamma": "enc_norm.gamma",
        "norm.beta": "enc_norm.beta",
    }
    for i in range(cfg.depth):
        for suffix in (
            "ln1.gamma", "ln1.beta", "attn.qkv.weight", "attn.qkv.bias",
            "attn.proj.weight", "attn.proj.bias", "ln2.gamma", "ln2.beta",
            "mlp.fc1.weight", "mlp.fc1.bias", "mlp.fc2.weight", "mlp.fc2.bias",
        ):
            mapping[f"block{i}.{suffix}"] = f"enc_block{i}.{suffix}"
    mae_params = dict(mae.named_parameters())
    vit_params = dict(vit.named_parameters())
    for vit_name, mae_name in mapping.items():
        vit_params[vit_name].data[...] = mae_params[mae_name].data
    return vit


def _trainable_params(vit: VisionTransformer, freeze_blocks: int):
    """Parameters updated during fine-tuning (frozen prefix excluded)."""
    depth = vit.cfg.depth
    if not 0 <= freeze_blocks <= depth:
        raise ValueError(
            f"freeze_blocks must be in [0, {depth}], got {freeze_blocks}"
        )
    frozen_prefixes = ["patch_embed.", "cls_token"] if freeze_blocks > 0 else []
    frozen_prefixes += [f"block{i}." for i in range(freeze_blocks)]
    out = []
    for name, p in vit.named_parameters():
        if any(name.startswith(pre) for pre in frozen_prefixes):
            continue
        out.append(p)
    return out


def _softmax_ce(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    z = logits - logits.max(axis=1, keepdims=True)
    logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
    n = len(labels)
    loss = -float(logp[np.arange(n), labels].mean())
    grad = np.exp(logp)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def finetune(
    source: MaskedAutoencoder | None,
    data: SplitDataset,
    epochs: int = 10,
    batch_size: int = 32,
    base_lr: float = 5e-4,
    freeze_blocks: int = 0,
    from_scratch: bool = False,
    seed: int = 0,
    model_name: str = "",
) -> FinetuneResult:
    """Fine-tune (or train from scratch) a classifier on one dataset.

    ``source=None`` requires ``from_scratch=True``; otherwise the ViT is
    initialized from the MAE encoder. Returns per-epoch test accuracy.
    """
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    if from_scratch:
        if source is None:
            raise ValueError("from_scratch=True requires a config source")
        cfg = source.cfg.encoder
        vit = VisionTransformer(
            cfg, n_classes=data.spec.n_classes,
            rng=np.random.default_rng(seed + 17),
        )
    else:
        if source is None:
            raise ValueError("need a pretrained MAE unless from_scratch")
        vit = vit_from_mae(
            source, data.spec.n_classes, rng=np.random.default_rng(seed + 17)
        )
    params = _trainable_params(vit, freeze_blocks)
    opt = AdamW(params, lr=base_lr, weight_decay=0.05)
    n_train = len(data.train)
    batch_size = min(batch_size, n_train)
    steps_per_epoch = max(1, n_train // batch_size)
    schedule = CosineWithWarmup(
        base_lr=base_lr,
        total_steps=epochs * steps_per_epoch,
        warmup_steps=steps_per_epoch,
    )
    result = FinetuneResult(
        dataset=data.spec.name,
        model=model_name,
        freeze_blocks=freeze_blocks,
        from_scratch=from_scratch,
        n_trainable=sum(p.size for p in params),
    )
    k5 = min(5, data.spec.n_classes)
    step = 0
    for epoch in range(epochs):
        order = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([seed, 23, epoch]))
        ).permutation(n_train)
        losses = []
        for b in range(steps_per_epoch):
            idx = order[b * batch_size : (b + 1) * batch_size]
            imgs, labels = data.train.images[idx], data.train.labels[idx]
            logits = vit(imgs)
            loss, dlogits = _softmax_ce(logits, labels)
            vit.zero_grad()
            vit.backward(dlogits)
            opt.lr = schedule(step)
            opt.step()
            step += 1
            losses.append(loss)
        result.train_losses.append(float(np.mean(losses)))
        # Evaluate in minibatches to bound memory.
        test_logits = np.concatenate(
            [
                vit(data.test.images[i : i + 128])
                for i in range(0, len(data.test), 128)
            ]
        )
        result.top1.append(topk_accuracy(test_logits, data.test.labels, k=1))
        result.top5.append(topk_accuracy(test_logits, data.test.labels, k=k5))
    return result
