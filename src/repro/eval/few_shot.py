"""Few-shot linear probing (the paper's 'envisioned next step').

The paper's conclusion lists few-shot adaptation as future work: do the
scale benefits persist when only K labeled examples per class are
available? This module subsamples K-shot training sets from a probe
split (class-balanced, deterministic) and runs the standard linear-probe
protocol on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import SplitDataset
from repro.eval.features import extract_features
from repro.eval.linear_probe import LinearProbeResult, probe_features
from repro.models.mae import MaskedAutoencoder

__all__ = ["FewShotResult", "few_shot_indices", "few_shot_probe"]


@dataclass
class FewShotResult:
    """Accuracy as a function of shots per class."""

    dataset: str
    model: str
    shots: list[int] = field(default_factory=list)
    top1: list[float] = field(default_factory=list)
    probes: list[LinearProbeResult] = field(default_factory=list)


def few_shot_indices(
    labels: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a class-balanced K-shot subset of ``labels``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    picks = []
    for c in np.unique(labels):
        pool = np.flatnonzero(labels == c)
        if len(pool) < k:
            raise ValueError(
                f"class {c} has only {len(pool)} examples, need {k} shots"
            )
        picks.append(rng.choice(pool, size=k, replace=False))
    return np.sort(np.concatenate(picks))


def few_shot_probe(
    model: MaskedAutoencoder,
    data: SplitDataset,
    shots: list[int],
    epochs: int = 30,
    seed: int = 0,
    model_name: str = "",
) -> FewShotResult:
    """Probe with K-shot training sets for each K in ``shots``.

    Features are extracted once; every K reuses them (the encoder is
    frozen, so this is exact).
    """
    if not shots:
        raise ValueError("need at least one shot count")
    feats_train = extract_features(model, data.train.images)
    feats_test = extract_features(model, data.test.images)
    result = FewShotResult(dataset=data.spec.name, model=model_name)
    for k in sorted(shots):
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([seed, 40009, k]))
        )
        idx = few_shot_indices(data.train.labels, k, rng)
        probe = probe_features(
            feats_train[idx],
            data.train.labels[idx],
            feats_test,
            data.test.labels,
            n_classes=data.spec.n_classes,
            epochs=epochs,
            seed=seed,
            dataset=data.spec.name,
            model_name=model_name,
        )
        result.shots.append(k)
        result.top1.append(probe.final_top1)
        result.probes.append(probe)
    return result
