"""Classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["topk_accuracy", "confusion_matrix"]


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is among the top-k logits.

    Ties are broken by class index (stable), matching the usual argsort
    convention.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    if len(logits) != len(labels):
        raise ValueError("logits/labels length mismatch")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k={k} out of range for {logits.shape[1]} classes")
    if len(logits) == 0:
        raise ValueError("empty batch")
    # argpartition is O(N C) vs argsort's O(N C log C).
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == np.asarray(labels)[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(
    pred: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """(n_classes, n_classes) counts; rows = true class, cols = predicted."""
    pred = np.asarray(pred, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if pred.shape != labels.shape:
        raise ValueError("pred/labels shape mismatch")
    if ((pred < 0) | (pred >= n_classes)).any():
        raise ValueError("prediction out of class range")
    if ((labels < 0) | (labels >= n_classes)).any():
        raise ValueError("label out of class range")
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(cm, (labels, pred), 1)
    return cm
