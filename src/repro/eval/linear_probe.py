"""Linear probing of a frozen MAE encoder (paper Section V-C).

Protocol, following the paper and the MAE reference it cites:

- all pretrained weights frozen; a single linear classifier trains on
  the class-token features;
- LARS optimizer, base LR 0.1, no weight decay, cosine schedule;
- identical hyper-parameters across every model size and dataset;
- top-1 / top-5 accuracy recorded every epoch (paper Fig. 6) and at the
  end (paper Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import SplitDataset
from repro.eval.features import extract_features, standardize_features
from repro.eval.metrics import topk_accuracy
from repro.models.layers import Linear
from repro.models.mae import MaskedAutoencoder
from repro.optim.lars import LARS
from repro.optim.schedules import CosineWithWarmup

__all__ = ["LinearProbeResult", "linear_probe", "probe_features"]


@dataclass
class LinearProbeResult:
    """Per-epoch probe accuracies on the test split."""

    dataset: str
    model: str
    top1: list[float] = field(default_factory=list)
    top5: list[float] = field(default_factory=list)
    train_losses: list[float] = field(default_factory=list)

    @property
    def final_top1(self) -> float:
        """Top-1 accuracy after the last probing epoch."""
        return self.top1[-1]

    @property
    def final_top5(self) -> float:
        """Top-5 accuracy after the last probing epoch."""
        return self.top5[-1]

    @property
    def best_top1(self) -> float:
        """Best top-1 accuracy across probing epochs."""
        return max(self.top1)


def _softmax_ce(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. logits."""
    z = logits - logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(z).sum(axis=1, keepdims=True))
    logp = z - logsumexp
    n = len(labels)
    loss = -float(logp[np.arange(n), labels].mean())
    grad = np.exp(logp)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def probe_features(
    feats_train: np.ndarray,
    y_train: np.ndarray,
    feats_test: np.ndarray,
    y_test: np.ndarray,
    n_classes: int,
    epochs: int = 30,
    batch_size: int = 64,
    base_lr: float = 0.1,
    seed: int = 0,
    dataset: str = "",
    model_name: str = "",
) -> LinearProbeResult:
    """Train the linear head on cached features; evaluate each epoch."""
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    batch_size = min(batch_size, len(feats_train))
    ftr, fte = standardize_features(feats_train, feats_test)
    head_rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, 11])))
    head = Linear(ftr.shape[1], n_classes, rng=head_rng)
    head.weight.data[...] = 0.0  # linear probes start from zero (MAE ref)
    opt = LARS([head.weight, head.bias], lr=base_lr, weight_decay=0.0)
    steps_per_epoch = max(1, len(ftr) // batch_size)
    schedule = CosineWithWarmup(
        base_lr=base_lr,
        total_steps=epochs * steps_per_epoch,
        warmup_steps=steps_per_epoch,
    )
    result = LinearProbeResult(dataset=dataset, model=model_name)
    step = 0
    k5 = min(5, n_classes)
    for epoch in range(epochs):
        order_rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([seed, 13, epoch]))
        )
        order = order_rng.permutation(len(ftr))
        epoch_losses = []
        for b in range(steps_per_epoch):
            idx = order[b * batch_size : (b + 1) * batch_size]
            logits = head(ftr[idx])
            loss, dlogits = _softmax_ce(logits, y_train[idx])
            head.zero_grad()
            head.backward(dlogits)
            opt.lr = schedule(step)
            opt.step()
            step += 1
            epoch_losses.append(loss)
        result.train_losses.append(float(np.mean(epoch_losses)))
        test_logits = head(fte)
        result.top1.append(topk_accuracy(test_logits, y_test, k=1))
        result.top5.append(topk_accuracy(test_logits, y_test, k=k5))
    return result


def linear_probe(
    model: MaskedAutoencoder,
    data: SplitDataset,
    epochs: int = 30,
    batch_size: int = 64,
    base_lr: float = 0.1,
    seed: int = 0,
    model_name: str = "",
) -> LinearProbeResult:
    """Full paper protocol: extract frozen features, then probe them."""
    feats_train = extract_features(model, data.train.images)
    feats_test = extract_features(model, data.test.images)
    return probe_features(
        feats_train,
        data.train.labels,
        feats_test,
        data.test.labels,
        n_classes=data.spec.n_classes,
        epochs=epochs,
        batch_size=batch_size,
        base_lr=base_lr,
        seed=seed,
        dataset=data.spec.name,
        model_name=model_name,
    )
