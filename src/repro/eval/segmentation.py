"""Patch-level semantic-segmentation probing (paper future work).

Protocol, mirroring the linear-probe philosophy: the pretrained encoder
is frozen; a single linear classifier maps each *patch token* to a
land-cover-family label; quality is mean intersection-over-union (mIoU)
and patch accuracy on held-out scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.segmentation import SegmentationDataset
from repro.models.layers import Linear
from repro.models.mae import MaskedAutoencoder
from repro.optim.lars import LARS
from repro.optim.schedules import CosineWithWarmup

__all__ = ["SegProbeResult", "mean_iou", "segmentation_probe"]


def mean_iou(pred: np.ndarray, target: np.ndarray, n_classes: int) -> float:
    """Mean IoU over the classes present in ``target`` or ``pred``."""
    pred = np.asarray(pred).reshape(-1)
    target = np.asarray(target).reshape(-1)
    if pred.shape != target.shape:
        raise ValueError("pred/target shape mismatch")
    ious = []
    for c in range(n_classes):
        p = pred == c
        t = target == c
        union = np.logical_or(p, t).sum()
        if union == 0:
            continue  # class absent everywhere: skip, as is conventional
        ious.append(np.logical_and(p, t).sum() / union)
    if not ious:
        raise ValueError("no classes present")
    return float(np.mean(ious))


@dataclass
class SegProbeResult:
    model: str
    miou: list[float] = field(default_factory=list)  # per epoch
    patch_acc: list[float] = field(default_factory=list)
    train_losses: list[float] = field(default_factory=list)

    @property
    def final_miou(self) -> float:
        """mIoU after the last probing epoch."""
        return self.miou[-1]

    @property
    def final_patch_acc(self) -> float:
        """Patch accuracy after the last probing epoch."""
        return self.patch_acc[-1]


def _extract_tokens(
    model: MaskedAutoencoder, images: np.ndarray, batch: int = 32
) -> np.ndarray:
    chunks = [
        model.encode_patch_tokens(images[i : i + batch])
        for i in range(0, len(images), batch)
    ]
    return np.concatenate(chunks, axis=0)


def segmentation_probe(
    model: MaskedAutoencoder,
    train: SegmentationDataset,
    test: SegmentationDataset,
    epochs: int = 20,
    batch_size: int = 16,
    base_lr: float = 0.1,
    seed: int = 0,
    model_name: str = "",
) -> SegProbeResult:
    """Train a frozen-feature per-patch linear classifier; report mIoU."""
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    if train.patch != test.patch:
        raise ValueError("train/test patch sizes differ")
    tokens_tr = _extract_tokens(model, train.images)  # (N, P, W)
    tokens_te = _extract_tokens(model, test.images)
    n, p, w = tokens_tr.shape
    # Standardize with train statistics (flattened over patches).
    flat = tokens_tr.reshape(-1, w)
    mu = flat.mean(axis=0, keepdims=True)
    sd = flat.std(axis=0, keepdims=True) + 1e-6
    tokens_tr = (tokens_tr - mu) / sd
    tokens_te = (tokens_te - mu) / sd

    head_rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, 19])))
    head = Linear(w, train.n_classes, rng=head_rng)
    head.weight.data[...] = 0.0
    opt = LARS([head.weight, head.bias], lr=base_lr, weight_decay=0.0)
    batch_size = min(batch_size, n)
    steps_per_epoch = max(1, n // batch_size)
    schedule = CosineWithWarmup(
        base_lr, epochs * steps_per_epoch, warmup_steps=steps_per_epoch
    )
    result = SegProbeResult(model=model_name)
    step = 0
    y_tr = train.patch_labels
    for epoch in range(epochs):
        order = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([seed, 29, epoch]))
        ).permutation(n)
        losses = []
        for b in range(steps_per_epoch):
            idx = order[b * batch_size : (b + 1) * batch_size]
            x = tokens_tr[idx].reshape(-1, w)
            y = y_tr[idx].reshape(-1)
            logits = head(x)
            z = logits - logits.max(axis=1, keepdims=True)
            logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
            loss = -float(logp[np.arange(len(y)), y].mean())
            grad = np.exp(logp)
            grad[np.arange(len(y)), y] -= 1.0
            head.zero_grad()
            head.backward(grad / len(y))
            opt.lr = schedule(step)
            opt.step()
            step += 1
            losses.append(loss)
        result.train_losses.append(float(np.mean(losses)))
        pred = head(tokens_te.reshape(-1, w)).argmax(axis=1)
        target = test.patch_labels.reshape(-1)
        result.miou.append(mean_iou(pred, target, train.n_classes))
        result.patch_acc.append(float((pred == target).mean()))
    return result
