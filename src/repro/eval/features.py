"""Frozen-encoder feature extraction for linear probing.

Because the backbone is frozen during probing, features are extracted
once and the probe trains on the cached matrix — mathematically identical
to running the frozen encoder every step, and orders of magnitude
cheaper. The feature standardization mirrors the parameter-free
BatchNorm the MAE reference inserts before its probe head.
"""

from __future__ import annotations

import numpy as np

from repro.models.mae import MaskedAutoencoder

__all__ = ["extract_features", "standardize_features"]


def extract_features(
    model: MaskedAutoencoder, images: np.ndarray, batch_size: int = 64
) -> np.ndarray:
    """Class-token features for ``images``: ``(N, width)``.

    ``N == 0`` is a valid input (an empty shard, a fully-filtered split)
    and returns an empty ``(0, width)`` matrix that concatenates and
    standardizes like any other — not the bare ``np.concatenate`` error
    an empty chunk list used to surface.
    """
    if images.ndim != 4:
        raise ValueError(f"images must be (N, C, H, W), got {images.shape}")
    if len(images) == 0:
        # Match the dtype a real forward would produce (float64 params
        # promote any float input).
        dtype = np.result_type(images.dtype, np.float64)
        return np.zeros((0, model.cfg.encoder.width), dtype=dtype)
    chunks = [
        model.encode_features(images[i : i + batch_size])
        for i in range(0, len(images), batch_size)
    ]
    return np.concatenate(chunks, axis=0)


def standardize_features(
    train: np.ndarray, *others: np.ndarray, eps: float = 1e-6
) -> tuple[np.ndarray, ...]:
    """Standardize feature matrices with *train-set* statistics."""
    if train.ndim != 2:
        raise ValueError(f"features must be (N, D), got {train.shape}")
    mu = train.mean(axis=0, keepdims=True)
    sd = train.std(axis=0, keepdims=True) + eps
    return tuple((m - mu) / sd for m in (train, *others))
