"""Executable collectives over per-rank NumPy buffers.

The mini-FSDP engine runs all ranks of a job inside one process (SPMD
simulation): each rank owns its own NumPy buffers, and a collective is a
function of the per-rank buffers of one :class:`~repro.comm.world.Group`.

Two implementations are provided per collective:

- a *direct* one (single vectorized NumPy expression), used by default for
  speed — following the optimization guides, these avoid Python loops over
  elements and work on contiguous arrays;
- a *ring* one that moves data chunk-by-chunk exactly like the
  bandwidth-optimal ring algorithms in NCCL/RCCL. Tests assert the two
  agree, and the ring path is what validates the closed-form byte
  formulas used by the performance model.

Byte accounting: every call records, per participating rank, the number of
bytes *sent on the wire* by the ring algorithm:

====================  =========================================
collective            bytes sent per rank (S = full data size)
====================  =========================================
all-gather            ``(g - 1) / g * S``
reduce-scatter        ``(g - 1) / g * S``
all-reduce            ``2 * (g - 1) / g * S``
broadcast             ``S`` at root via a binomial tree (logged
                      as total tree traffic ``S * (g - 1)``)
====================  =========================================

Dtype-aware accounting: the SPMD substrate computes in float64, but the
*logical* wire payload is the training precision's. Reduce-type
collectives accept ``wire_dtype`` ("fp32" default / "bf16"), which
scales ``S`` by :data:`repro.precision.WIRE_FRACTION` before recording —
so a bf16 gradient reduction books exactly half the bytes of the same
call at full precision, split out per dtype in
``CommStats.bytes_by_dtype``.

Gradient accumulation: reduce-type collectives accept
``parts_per_rank=k``: ``k * g`` buffers (round-major — all of round 0's
contributions, then round 1's, ...) are reduced in **one**
``np.stack(...).mean`` and ``g`` outputs are returned. Because NumPy's
axis-0 reduction is sequential, this makes a ``k``-round accumulated
step bit-identical to the same reduction in a ``k * g``-rank world.
Wire accounting stays at one buffer's payload over ``g`` ranks — the
accumulated contributions are combined locally before hitting the wire
(PyTorch ``no_sync`` semantics), not retransmitted per round.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.comm.faults import (
    CollectiveError,
    FaultPlan,
    buffer_crc,
    corrupt_copy,
)
from repro.comm.world import Group, pair_group
from repro.precision.bf16 import wire_fraction

__all__ = ["SimComm", "CommStats", "ReduceOp"]

#: Reduction operations supported by reduce-type collectives.
ReduceOp = ("sum", "mean", "max")


@dataclass
class CommStats:
    """Per-operation call and wire-byte counters.

    ``bytes_by_op[op]`` accumulates bytes sent summed over all
    participating ranks; ``calls_by_op[op]`` counts collective invocations
    (one per group call, not per rank). Failed (fault-injected) attempts
    are recorded too — wire traffic is spent before a failure is
    detected — so retried collectives show up as extra calls and bytes
    relative to a fault-free run.

    Resilience accounting: ``retries_by_op`` counts engine-level retries,
    ``backoff_seconds`` accumulates the simulated retry backoff, and
    ``straggler_seconds_by_rank`` the injected per-rank straggler delay
    (both are simulated-time charges for the performance layer, never
    real sleeps).
    """

    calls_by_op: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_op: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    bytes_by_dtype: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    retries_by_op: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    backoff_seconds: float = 0.0
    straggler_seconds_by_rank: dict[int, float] = field(
        default_factory=lambda: defaultdict(float)
    )

    def record(
        self, op: str, group_size: int, full_bytes: float, dtype: str = "fp32"
    ) -> None:
        """Account one collective call of ``full_bytes`` over ``group_size`` ranks.

        ``full_bytes`` is the already-dtype-scaled logical payload;
        ``dtype`` only labels which ``bytes_by_dtype`` bin the resulting
        wire bytes land in.
        """
        self.calls_by_op[op] += 1
        if op == "send":
            # Point-to-point: the payload crosses the wire exactly once.
            wire = full_bytes
            self.bytes_by_op[op] += wire
            self.bytes_by_dtype[dtype] += wire
            return
        g = group_size
        if op == "all_gather" or op == "reduce_scatter":
            wire = (g - 1) / g * full_bytes * g
        elif op == "all_reduce":
            wire = 2 * (g - 1) / g * full_bytes * g
        elif op == "broadcast":
            wire = full_bytes * (g - 1)
        else:
            raise ValueError(f"unknown collective op {op!r}")
        self.bytes_by_op[op] += wire
        self.bytes_by_dtype[dtype] += wire

    def record_retry(self, op: str, backoff_s: float) -> None:
        """Account one engine-level retry of ``op`` and its backoff."""
        self.retries_by_op[op] += 1
        self.backoff_seconds += backoff_s

    def record_straggler(self, rank: int, seconds: float) -> None:
        """Charge an injected straggler delay to ``rank``."""
        self.straggler_seconds_by_rank[rank] += seconds

    @property
    def total_calls(self) -> int:
        """Collective calls across all operation types."""
        return sum(self.calls_by_op.values())

    @property
    def total_bytes(self) -> float:
        """Wire bytes across all operation types."""
        return sum(self.bytes_by_op.values())

    @property
    def total_retries(self) -> int:
        """Engine-level retries across all operation types."""
        return sum(self.retries_by_op.values())

    @property
    def straggler_seconds(self) -> float:
        """Total injected straggler delay across ranks."""
        return sum(self.straggler_seconds_by_rank.values())

    def reset(self) -> None:
        """Clear all counters."""
        self.calls_by_op.clear()
        self.bytes_by_op.clear()
        self.bytes_by_dtype.clear()
        self.retries_by_op.clear()
        self.backoff_seconds = 0.0
        self.straggler_seconds_by_rank.clear()


def _reduce(stack: np.ndarray, op: str) -> np.ndarray:
    if op == "sum":
        return stack.sum(axis=0)
    if op == "mean":
        return stack.mean(axis=0)
    if op == "max":
        return stack.max(axis=0)
    raise ValueError(f"unknown reduce op {op!r}; expected one of {ReduceOp}")


class SimComm:
    """Collective engine over per-rank buffers.

    All methods take ``buffers``: a list with one array per rank of
    ``group``, ordered by group rank. They return new arrays (never
    aliasing inputs across ranks) so that rank-local mutation afterwards
    cannot leak between ranks — the in-process equivalent of separate
    address spaces.

    Parameters
    ----------
    use_ring:
        When True, run the chunked ring algorithms instead of the direct
        vectorized forms. Results are identical (up to float associativity
        in reductions, which tests bound); ring mode is slower and meant
        for validation.
    fault_plan:
        Optional :class:`~repro.comm.faults.FaultPlan` consulted on every
        collective call. Injected failures surface as
        :class:`~repro.comm.faults.CollectiveError` *before* any output
        is produced (the attempt's wire traffic is still recorded), so a
        retry re-runs a pure function of unchanged inputs and is
        bit-identical to an unfaulted call. May be (re)assigned between
        steps.
    """

    def __init__(self, use_ring: bool = False, fault_plan: FaultPlan | None = None):
        self.stats = CommStats()
        self.use_ring = use_ring
        self.fault_plan = fault_plan

    # -- helpers ---------------------------------------------------------

    def _inject_faults(self, op: str, group: Group, buffers: list[np.ndarray]) -> None:
        """Consult the fault plan; raise CollectiveError for failing specs.

        Called after stats recording: a failed attempt has already moved
        (some of) its data, so its traffic stays on the books.
        """
        if self.fault_plan is None:
            return
        for spec in self.fault_plan.consult(op, group.size):
            if spec.kind == "straggler":
                victim = group.ranks[spec.rank % group.size]
                self.stats.record_straggler(victim, spec.delay_s)
                continue
            if spec.kind == "transient":
                raise CollectiveError(
                    op, "transient", group.ranks, message="injected transient failure"
                )
            local = spec.rank % group.size
            victim = group.ranks[local]
            sent = buffers[local]
            sent_crc = buffer_crc(sent)
            if spec.kind == "drop":
                received = None
            else:  # corrupt: bit-flip an in-flight copy, never the input
                received = corrupt_copy(sent, self.fault_plan.rng)
            if received is None:
                raise CollectiveError(
                    op, "drop", group.ranks, rank=victim,
                    message="peer buffer lost in flight",
                )
            if buffer_crc(received) != sent_crc:
                raise CollectiveError(
                    op, "corrupt", group.ranks, rank=victim,
                    message="checksum mismatch on received buffer",
                )

    @staticmethod
    def _check(
        buffers: list[np.ndarray],
        group: Group,
        same_shape: bool = True,
        parts_per_rank: int = 1,
    ) -> None:
        if parts_per_rank < 1:
            raise ValueError(f"parts_per_rank must be >= 1, got {parts_per_rank}")
        expected = group.size * parts_per_rank
        if len(buffers) != expected:
            raise ValueError(
                f"expected {expected} buffers for group {group.ranks} "
                f"(parts_per_rank={parts_per_rank}), got {len(buffers)}"
            )
        if same_shape:
            shapes = {b.shape for b in buffers}
            if len(shapes) != 1:
                raise ValueError(f"buffers must share one shape, got {shapes}")

    @staticmethod
    def _wire_bytes(nbytes: float, wire_dtype: str | None) -> tuple[float, str]:
        """(logical payload bytes, dtype label) for a native-sized buffer."""
        if wire_dtype is None:
            return float(nbytes), "fp32"
        return nbytes * wire_fraction(wire_dtype), wire_dtype

    # -- collectives -----------------------------------------------------

    def all_reduce(
        self,
        buffers: list[np.ndarray],
        group: Group,
        op: str = "sum",
        *,
        parts_per_rank: int = 1,
        wire_dtype: str | None = None,
    ) -> list[np.ndarray]:
        """Reduce across the group; every rank receives the full result.

        With ``parts_per_rank=k`` the call reduces ``k * group.size``
        round-major accumulation contributions in one stack reduction
        and still returns one output per rank (see module docstring);
        the ring path only applies to the plain ``k == 1`` case.
        """
        self._check(buffers, group, parts_per_rank=parts_per_rank)
        full, dtype = self._wire_bytes(buffers[0].nbytes, wire_dtype)
        self.stats.record("all_reduce", group.size, full, dtype=dtype)
        self._inject_faults("all_reduce", group, buffers)
        if (
            self.use_ring
            and parts_per_rank == 1
            and group.size > 1
            and buffers[0].size >= group.size
        ):
            shards = self._ring_reduce_scatter(buffers, op)
            gathered = self._ring_all_gather(shards)
            n = buffers[0].size
            return [g[:n].reshape(buffers[0].shape) for g in gathered]
        result = _reduce(np.stack(buffers), op)
        return [result.copy() for _ in range(group.size)]

    def all_gather(
        self,
        shards: list[np.ndarray],
        group: Group,
        *,
        wire_dtype: str | None = None,
    ) -> list[np.ndarray]:
        """Concatenate every rank's 1-D shard; every rank gets the whole."""
        self._check(shards, group, same_shape=False)
        for s in shards:
            if s.ndim != 1:
                raise ValueError("all_gather operates on 1-D shards")
        full, dtype = self._wire_bytes(sum(s.nbytes for s in shards), wire_dtype)
        self.stats.record("all_gather", group.size, full, dtype=dtype)
        self._inject_faults("all_gather", group, shards)
        if self.use_ring and group.size > 1:
            shapes = {s.shape for s in shards}
            if len(shapes) == 1:
                return self._ring_all_gather(shards)
        full_buf = np.concatenate(shards)
        return [full_buf.copy() for _ in range(group.size)]

    def reduce_scatter(
        self,
        buffers: list[np.ndarray],
        group: Group,
        op: str = "sum",
        *,
        parts_per_rank: int = 1,
        wire_dtype: str | None = None,
    ) -> list[np.ndarray]:
        """Reduce across the group, then shard the result: rank i gets chunk i.

        Buffers must be 1-D with length divisible by the group size (the
        FSDP flat-parameter layer guarantees this by padding). With
        ``parts_per_rank=k``, ``k * group.size`` round-major accumulation
        contributions enter one stack reduction (see module docstring).
        """
        self._check(buffers, group, parts_per_rank=parts_per_rank)
        g = group.size
        n = buffers[0].size
        if buffers[0].ndim != 1:
            raise ValueError("reduce_scatter operates on 1-D buffers")
        if n % g != 0:
            raise ValueError(f"buffer length {n} not divisible by group size {g}")
        full, dtype = self._wire_bytes(buffers[0].nbytes, wire_dtype)
        self.stats.record("reduce_scatter", g, full, dtype=dtype)
        self._inject_faults("reduce_scatter", group, buffers)
        if self.use_ring and parts_per_rank == 1 and g > 1:
            return self._ring_reduce_scatter(buffers, op)
        reduced = _reduce(np.stack(buffers), op)
        chunk = n // g
        return [reduced[i * chunk : (i + 1) * chunk].copy() for i in range(g)]

    def send(
        self,
        buf: np.ndarray,
        src: int,
        dst: int,
        *,
        wire_dtype: str | None = None,
    ) -> np.ndarray:
        """Point-to-point send from ``src`` to ``dst``; returns the received copy.

        The pipeline engine moves stage-boundary activations (forward)
        and their gradients (backward) through this op. The receiver
        must consume the *returned* array — never the sender's buffer —
        mirroring separate address spaces exactly like the collectives.
        Wire accounting books the payload once (no ring factor).
        """
        group = pair_group(src, dst)
        full, dtype = self._wire_bytes(buf.nbytes, wire_dtype)
        self.stats.record("send", group.size, full, dtype=dtype)
        self._inject_faults("send", group, [buf, buf])
        return buf.copy()

    def broadcast(
        self,
        buffers: list[np.ndarray],
        group: Group,
        root_index: int = 0,
        *,
        wire_dtype: str | None = None,
    ) -> list[np.ndarray]:
        """Copy the root group-rank's buffer to every rank."""
        self._check(buffers, group)
        if not 0 <= root_index < group.size:
            raise ValueError(f"root_index {root_index} out of range")
        full, dtype = self._wire_bytes(buffers[root_index].nbytes, wire_dtype)
        self.stats.record("broadcast", group.size, full, dtype=dtype)
        self._inject_faults("broadcast", group, buffers)
        src = buffers[root_index]
        return [src.copy() for _ in range(group.size)]

    # -- ring algorithms ---------------------------------------------------

    @staticmethod
    def _ring_chunks(n: int, g: int) -> list[slice]:
        """Split ``n`` elements into ``g`` near-equal contiguous chunks."""
        base, extra = divmod(n, g)
        slices, start = [], 0
        for i in range(g):
            size = base + (1 if i < extra else 0)
            slices.append(slice(start, start + size))
            start += size
        return slices

    def _ring_reduce_scatter(
        self, buffers: list[np.ndarray], op: str
    ) -> list[np.ndarray]:
        """Chunked ring reduce-scatter: g-1 steps, each rank sends one chunk."""
        g = len(buffers)
        n = buffers[0].size
        chunks = self._ring_chunks(n, g)
        # acc[r][c] is rank r's current partial for chunk c.
        acc = [[buffers[r][chunks[c]].astype(np.float64, copy=True) for c in range(g)] for r in range(g)]
        counts = [[1] * g for _ in range(g)]
        for step in range(g - 1):
            moving = []
            for r in range(g):
                c = (r - step) % g
                moving.append((r, (r + 1) % g, c, acc[r][c], counts[r][c]))
            for _, dst, c, data, cnt in moving:
                if op == "max":
                    np.maximum(acc[dst][c], data, out=acc[dst][c])
                else:
                    acc[dst][c] += data
                    counts[dst][c] += cnt
        out = []
        for r in range(g):
            c = (r + 1) % g
            val = acc[r][c]
            if op == "mean":
                val = val / counts[r][c]
            out.append(val.astype(buffers[0].dtype))
        # Reorder so rank i owns chunk i (the direct form's convention).
        ordered = [None] * g
        for r in range(g):
            ordered[(r + 1) % g] = out[r]
        # Map chunk index back to rank index: rank i should hold chunk i.
        result = []
        for i in range(g):
            result.append(ordered[i])
        return result

    def _ring_all_gather(self, shards: list[np.ndarray]) -> list[np.ndarray]:
        """Chunked ring all-gather: g-1 steps of passing shards around."""
        g = len(shards)
        sizes = [s.size for s in shards]
        offsets = np.cumsum([0] + sizes)
        total = offsets[-1]
        have = [{r: shards[r].copy()} for r in range(g)]
        for step in range(g - 1):
            moving = []
            for r in range(g):
                c = (r - step) % g
                moving.append(((r + 1) % g, c, have[r][c]))
            for dst, c, data in moving:
                have[dst][c] = data.copy()
        out = []
        for r in range(g):
            full = np.empty(total, dtype=shards[0].dtype)
            for c in range(g):
                full[offsets[c] : offsets[c + 1]] = have[r][c]
            out.append(full)
        return out
