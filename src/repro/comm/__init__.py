"""Communication substrate.

This package plays the role MPI/RCCL plays under PyTorch distributed:

- :mod:`repro.comm.world` — ranks, process groups, and the hybrid-sharding
  device-mesh construction (shard groups x replica groups).
- :mod:`repro.comm.collectives` — *executable* collectives over per-rank
  NumPy buffers (ring all-gather / reduce-scatter / all-reduce /
  broadcast), with per-operation call and byte accounting. These run the
  real data movement of the mini-FSDP engine in-process (SPMD style).
- :mod:`repro.comm.cost_model` — alpha-beta-gamma time model for the same
  collectives on a hierarchical machine topology; used by the
  performance simulator.
- :mod:`repro.comm.bucketing` — DDP-style gradient bucketing.
- :mod:`repro.comm.faults` — deterministic fault injection (dropped /
  corrupted buffers, transient collective failures, stragglers) and the
  retry-with-backoff policy the engines use to survive them.
"""

from repro.comm.bucketing import Bucket, bucket_gradients
from repro.comm.collectives import CommStats, SimComm
from repro.comm.cost_model import CollectiveCostModel, GroupPlacement
from repro.comm.faults import (
    CollectiveError,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    call_with_retry,
)
from repro.comm.world import Group, World, make_hybrid_mesh

__all__ = [
    "World",
    "Group",
    "make_hybrid_mesh",
    "SimComm",
    "CommStats",
    "CollectiveCostModel",
    "GroupPlacement",
    "Bucket",
    "bucket_gradients",
    "FaultSpec",
    "FaultPlan",
    "CollectiveError",
    "RetryPolicy",
    "call_with_retry",
]
