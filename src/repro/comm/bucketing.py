"""DDP-style gradient bucketing.

``torch.nn.parallel.DistributedDataParallel`` coalesces gradients into
fixed-capacity buckets (default 25 MB) and launches one all-reduce per
bucket as soon as all gradients in it are ready during the backward pass.
Buckets are filled in *reverse* parameter registration order, because
gradients become available roughly from the last layer backwards.

The paper attributes DDP's growing disadvantage at larger model sizes to
exactly this constant bucket size: the number of all-reduce calls grows
linearly with parameter bytes, so per-call latency eventually dominates.
This module reproduces the bucket-assignment logic; both the executable
DDP engine (:mod:`repro.core.ddp`) and the performance model consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Bucket", "bucket_gradients", "DEFAULT_BUCKET_CAP_BYTES"]

#: PyTorch DDP's default ``bucket_cap_mb`` = 25 MB.
DEFAULT_BUCKET_CAP_BYTES = 25 * 1024 * 1024


@dataclass
class Bucket:
    """One gradient bucket: indices into the parameter list plus its size."""

    param_indices: list[int] = field(default_factory=list)
    nbytes: int = 0

    def __len__(self) -> int:
        return len(self.param_indices)


def bucket_gradients(
    param_nbytes: list[int],
    cap_bytes: int = DEFAULT_BUCKET_CAP_BYTES,
    first_bucket_cap_bytes: int | None = 1024 * 1024,
) -> list[Bucket]:
    """Assign parameters (given as byte sizes, in registration order) to buckets.

    Parameters are consumed in reverse registration order, as DDP does. A
    parameter larger than the cap gets a bucket of its own. PyTorch uses a
    small first bucket (1 MB) to start communication early; pass
    ``first_bucket_cap_bytes=None`` to disable.

    Returns buckets in the order their all-reduces launch during backward.
    """
    if cap_bytes <= 0:
        raise ValueError(f"cap_bytes must be positive, got {cap_bytes}")
    buckets: list[Bucket] = []
    current = Bucket()
    # The small first bucket never exceeds the main cap (a 1 MB head
    # start makes no sense when the user asked for smaller buckets).
    cap = min(first_bucket_cap_bytes, cap_bytes) if first_bucket_cap_bytes else cap_bytes
    for idx in reversed(range(len(param_nbytes))):
        nbytes = param_nbytes[idx]
        if nbytes < 0:
            raise ValueError(f"negative parameter size at index {idx}")
        if current.param_indices and current.nbytes + nbytes > cap:
            buckets.append(current)
            current = Bucket()
            cap = cap_bytes
        current.param_indices.append(idx)
        current.nbytes += nbytes
        if current.nbytes >= cap:
            buckets.append(current)
            current = Bucket()
            cap = cap_bytes
    if current.param_indices:
        buckets.append(current)
    return buckets
