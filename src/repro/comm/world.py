"""Ranks, process groups, and hybrid-sharding meshes.

A :class:`World` is the set of all ranks participating in a job, numbered
``0..size-1`` exactly as ``torch.distributed`` numbers them. A
:class:`Group` is an ordered subset of world ranks over which a collective
operates (the analogue of an MPI communicator / NCCL process group).

:func:`make_hybrid_mesh` reproduces the 2-D device mesh FSDP's
``HYBRID_SHARD`` builds: the world is split into contiguous *shard groups*
of ``shard_size`` ranks (all-gather / reduce-scatter happen inside these),
and *replica groups* that connect the ranks holding the same shard index
across shard groups (gradient all-reduce happens inside these).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["World", "Group", "make_hybrid_mesh", "HybridMesh", "pair_group"]


@dataclass(frozen=True)
class Group:
    """An ordered set of global ranks participating in a collective."""

    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.ranks) == 0:
            raise ValueError("a group must contain at least one rank")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError(f"duplicate ranks in group: {self.ranks}")

    @property
    def size(self) -> int:
        """Number of ranks in the group."""
        return len(self.ranks)

    def index_of(self, global_rank: int) -> int:
        """Position of ``global_rank`` inside this group (its 'group rank')."""
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise ValueError(f"rank {global_rank} is not in group {self.ranks}") from None

    def __contains__(self, global_rank: int) -> bool:
        return global_rank in self.ranks

    def __iter__(self):
        return iter(self.ranks)

    def __len__(self) -> int:
        return len(self.ranks)


@dataclass
class World:
    """All ranks in the job.

    Parameters
    ----------
    size:
        Total number of ranks (GPUs/GCDs from the application's view).
    ranks_per_node:
        How many ranks share a node; rank ``r`` lives on node
        ``r // ranks_per_node`` (the standard contiguous block mapping used
        by Slurm on Frontier).
    """

    size: int
    ranks_per_node: int = 8
    _groups: dict[str, Group] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"world size must be positive, got {self.size}")
        if self.ranks_per_node <= 0:
            raise ValueError(
                f"ranks_per_node must be positive, got {self.ranks_per_node}"
            )

    @property
    def n_nodes(self) -> int:
        """Number of nodes occupied (last node may be partially filled)."""
        return -(-self.size // self.ranks_per_node)

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for world of {self.size}")
        return rank // self.ranks_per_node

    def world_group(self) -> Group:
        """The group containing every rank."""
        return Group(tuple(range(self.size)))

    def new_group(self, ranks: tuple[int, ...] | list[int]) -> Group:
        """Create a group from explicit ranks, validating membership."""
        ranks = tuple(ranks)
        for r in ranks:
            if not 0 <= r < self.size:
                raise ValueError(f"rank {r} out of range for world of {self.size}")
        return Group(ranks)

    def nodes_spanned(self, group: Group) -> int:
        """How many distinct nodes a group touches."""
        return len({self.node_of(r) for r in group.ranks})


def pair_group(src: int, dst: int) -> Group:
    """The 2-rank group of a point-to-point transfer (``SimComm.send``).

    Lives here because ``Group`` construction is confined to this module
    and :mod:`repro.mesh` (see ``tools/mesh_discipline_check.py``).
    """
    if src == dst:
        raise ValueError(f"a point-to-point pair needs distinct ranks, got {src}")
    return Group((src, dst))


@dataclass(frozen=True)
class HybridMesh:
    """The 2-D (replica x shard) mesh used by ``HYBRID_SHARD``.

    ``shard_groups[i]`` is the i-th contiguous block of ``shard_size``
    ranks; ``replica_groups[j]`` connects the ranks with shard index ``j``
    across all shard groups. Every rank belongs to exactly one group of
    each kind.
    """

    shard_groups: tuple[Group, ...]
    replica_groups: tuple[Group, ...]

    @property
    def shard_size(self) -> int:
        """Ranks per shard group."""
        return self.shard_groups[0].size

    @property
    def n_replicas(self) -> int:
        """Number of model replicas (= number of shard groups)."""
        return len(self.shard_groups)

    def shard_group_of(self, rank: int) -> Group:
        """The shard group containing ``rank``."""
        for g in self.shard_groups:
            if rank in g:
                return g
        raise ValueError(f"rank {rank} not in any shard group")

    def replica_group_of(self, rank: int) -> Group:
        """The replica group containing ``rank``."""
        for g in self.replica_groups:
            if rank in g:
                return g
        raise ValueError(f"rank {rank} not in any replica group")


def make_hybrid_mesh(world: World, shard_size: int) -> HybridMesh:
    """Build the HYBRID_SHARD mesh for ``shard_size`` ranks per shard group.

    ``shard_size=1`` degenerates to pure data parallelism (the paper's
    ``HYBRID_1GPU``); ``shard_size == world.size`` degenerates to
    ``FULL_SHARD`` over the whole world.

    .. deprecated::
        This is now a thin wrapper over the general N-D
        :class:`repro.mesh.DeviceMesh` — a 2-D ``("replica", "shard")``
        mesh whose inner (contiguous) axis is the shard axis. New code
        should build a :class:`~repro.mesh.DeviceMesh` directly; this
        wrapper stays for the HYBRID_SHARD engine and existing callers.
    """
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    if world.size % shard_size != 0:
        raise ValueError(
            f"world size {world.size} not divisible by shard size {shard_size}"
        )
    # Imported lazily: device_mesh imports Group/World from this module.
    from repro.mesh.device_mesh import DeviceMesh

    mesh = DeviceMesh(
        world,
        (world.size // shard_size, shard_size),
        ("replica", "shard"),
    )
    return HybridMesh(
        shard_groups=mesh.groups("shard"),
        replica_groups=mesh.groups("replica"),
    )
