"""Analytical time model for collectives on a hierarchical machine.

The performance simulator times every collective with the classic
alpha-beta (latency-bandwidth) model of the ring algorithms RCCL uses:

``T = steps * alpha_eff + wire_bytes / B_eff + launch``

where

- ``steps`` is ``g - 1`` for all-gather / reduce-scatter and
  ``2 * (g - 1)`` for all-reduce (ring = reduce-scatter + all-gather);
- ``wire_bytes`` is the per-rank data volume of the ring algorithm
  (see :mod:`repro.comm.collectives`);
- ``B_eff`` is the bandwidth of the slowest link on the ring. A ring is
  mapped contiguously onto the machine, so when a group spans multiple
  nodes exactly one ring edge crosses each node boundary and the NIC is
  the bottleneck. When several groups run the *same* collective
  concurrently (e.g. the per-shard-index all-reduces of HYBRID_SHARD),
  they share each NIC, dividing its bandwidth (``nic_share``);
- ``launch`` is a fixed host-side cost per collective call. This term is
  what makes strategies issuing many small collectives (DDP with small
  buckets, FULL_SHARD on huge worlds) flatten in the paper's weak-scaling
  plots.

Ring latency grows *linearly* in group size, matching the flattening the
paper observes for world-spanning FULL_SHARD groups (RCCL's tree variants
would soften, not remove, this effect; the paper's measurements show the
un-softened shape).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.world import Group, World
from repro.precision.bf16 import wire_fraction

__all__ = ["GroupPlacement", "CollectiveCostModel"]


@dataclass(frozen=True)
class GroupPlacement:
    """Where a collective group sits on the machine.

    Attributes
    ----------
    group_size:
        Number of ranks in the group.
    nodes_spanned:
        Distinct nodes the group touches.
    nic_share:
        Number of groups concurrently running the same collective whose
        rings cross each NIC (>= 1). ``1`` means exclusive NIC use.
    """

    group_size: int
    nodes_spanned: int
    nic_share: int = 1

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.nodes_spanned < 1:
            raise ValueError(f"nodes_spanned must be >= 1, got {self.nodes_spanned}")
        if self.nodes_spanned > self.group_size:
            raise ValueError(
                f"group of {self.group_size} cannot span {self.nodes_spanned} nodes"
            )
        if self.nic_share < 1:
            raise ValueError(f"nic_share must be >= 1, got {self.nic_share}")

    @classmethod
    def from_group(
        cls, world: World, group: Group, nic_share: int = 1
    ) -> "GroupPlacement":
        return cls(
            group_size=group.size,
            nodes_spanned=world.nodes_spanned(group),
            nic_share=nic_share,
        )

    @property
    def crosses_nodes(self) -> bool:
        """True when the group spans more than one node."""
        return self.nodes_spanned > 1


@dataclass(frozen=True)
class CollectiveCostModel:
    """Alpha-beta collective timing for one machine configuration.

    All bandwidths in bytes/second, latencies in seconds. Defaults are
    calibrated for Frontier (see :mod:`repro.hardware.frontier`, which
    constructs this model from the machine description).

    Latency is counted per ring *hop*, split by hop type: a contiguous
    ring over a group spanning ``m`` nodes crosses a node boundary ``m``
    times per traversal (paying ``inter_node_alpha`` each) and stays
    on-node for the remaining ``g - 1 - m`` hops (paying
    ``intra_node_alpha``). This hop-type split is what makes, e.g., a
    half-world all-reduce cheaper in latency than a full-world one only
    by its intra-node hops, matching observed RCCL behaviour.
    """

    intra_node_bw: float = 50e9  # Infinity Fabric GPU-GPU, per direction
    inter_node_bw: float = 25e9  # Slingshot-11 NIC share per MI250X/pair of GCDs
    intra_node_alpha: float = 1.5e-6
    inter_node_alpha: float = 12e-6
    launch_overhead: float = 25e-6  # host-side cost of issuing one collective

    def _effective_bandwidth(self, placement: GroupPlacement) -> float:
        if not placement.crosses_nodes:
            return self.intra_node_bw
        return min(self.intra_node_bw, self.inter_node_bw / placement.nic_share)

    def _alpha_per_pass(self, placement: GroupPlacement) -> float:
        """Total hop latency of one ring traversal (g - 1 hops)."""
        g = placement.group_size
        hops = g - 1
        inter_hops = min(hops, placement.nodes_spanned) if placement.crosses_nodes else 0
        intra_hops = hops - inter_hops
        # Concurrent rings sharing a NIC queue behind each other on every
        # node-boundary hop, inflating the effective hop latency.
        inter_alpha = self.inter_node_alpha * placement.nic_share
        return inter_hops * inter_alpha + intra_hops * self.intra_node_alpha

    def _ring(self, passes: int, wire_bytes: float, placement: GroupPlacement) -> float:
        if placement.group_size == 1:
            return 0.0
        bw = self._effective_bandwidth(placement)
        return (
            self.launch_overhead
            + passes * self._alpha_per_pass(placement)
            + wire_bytes / bw
        )

    def all_gather(
        self, nbytes: float, placement: GroupPlacement, wire_dtype: str = "fp32"
    ) -> float:
        """Time to all-gather a tensor of ``nbytes`` total (unsharded) size.

        ``nbytes`` is the native (fp32) size; ``wire_dtype`` scales the
        on-wire payload (bf16 halves it), leaving latency terms alone.
        """
        g = placement.group_size
        wire = wire_fraction(wire_dtype) * nbytes
        return self._ring(1, (g - 1) / g * wire, placement)

    def reduce_scatter(
        self, nbytes: float, placement: GroupPlacement, wire_dtype: str = "fp32"
    ) -> float:
        """Time to reduce-scatter a tensor of ``nbytes`` total size (native
        fp32; ``wire_dtype`` scales the on-wire payload)."""
        g = placement.group_size
        wire = wire_fraction(wire_dtype) * nbytes
        return self._ring(1, (g - 1) / g * wire, placement)

    def all_reduce(
        self, nbytes: float, placement: GroupPlacement, wire_dtype: str = "fp32"
    ) -> float:
        """Time to all-reduce a tensor of ``nbytes`` size (RS + AG ring;
        ``wire_dtype`` scales the on-wire payload)."""
        g = placement.group_size
        wire = wire_fraction(wire_dtype) * nbytes
        return self._ring(2, 2 * (g - 1) / g * wire, placement)

    def broadcast(self, nbytes: float, placement: GroupPlacement) -> float:
        """Binomial-tree broadcast (used only for initial parameter sync)."""
        import math

        g = placement.group_size
        if g == 1:
            return 0.0
        steps = math.ceil(math.log2(g))
        bw = self._effective_bandwidth(placement)
        alpha = (
            self.inter_node_alpha if placement.crosses_nodes else self.intra_node_alpha
        )
        return self.launch_overhead + steps * (alpha + nbytes / bw)
