"""Fault injection ("chaos") for the simulated collective stack.

At the paper's scale (up to 64 Frontier nodes) rank failures, transient
link errors, and stragglers are routine operational facts, and a training
system's robustness claims are untestable without a way to *produce*
those faults on demand. This module provides:

- :class:`FaultSpec` / :class:`FaultPlan` — a deterministic, seedable
  description of which collective calls fail and how. The
  :class:`~repro.comm.collectives.SimComm` engine consults the plan on
  every collective invocation.
- :class:`CollectiveError` — the typed error every injected failure
  surfaces as (the analogue of an RCCL/NCCL error or watchdog timeout).
  Dropped and corrupted buffers are *detected* (CRC32 of the sender's
  buffer vs what arrived, mirroring real transport checksums) and
  converted into :class:`CollectiveError`, so the engine-facing contract
  is uniform: a faulted collective raises before producing any output.
- :class:`RetryPolicy` / :func:`call_with_retry` — bounded
  retry-with-exponential-backoff used by the DDP/FSDP engines. Backoff
  is *simulated* time: it is charged to
  :class:`~repro.comm.collectives.CommStats` (``backoff_seconds``), never
  slept for real.

Fault kinds
-----------
``transient``
    The collective fails outright (raises) before any output is written.
``drop``
    One rank's contribution is lost in flight; the receive side detects
    the missing buffer and raises.
``corrupt``
    One rank's buffer is bit-flipped in flight; the CRC32 integrity check
    detects the mismatch and raises. The caller's buffers are never
    mutated (corruption happens to the in-flight copy).
``straggler``
    One rank is slow. Numerics are unaffected; the delay is charged to
    ``CommStats.straggler_seconds_by_rank`` so the performance layer can
    account for it.

Because every failing attempt raises *before* output is produced, and the
collectives are pure functions of their input buffers, a retried
collective is bit-identical to an uninterrupted one — the invariant the
chaos test campaign (``-m chaos``) asserts end to end.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "COLLECTIVE_OPS",
    "FAULT_KINDS",
    "CollectiveError",
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "call_with_retry",
]

#: Collective op classes a fault can target.
COLLECTIVE_OPS = ("all_reduce", "all_gather", "reduce_scatter", "broadcast")

#: Supported fault kinds.
FAULT_KINDS = ("transient", "drop", "corrupt", "straggler")


class CollectiveError(RuntimeError):
    """A collective operation failed (injected or detected in flight).

    Attributes
    ----------
    op:
        The collective op class (``"all_reduce"``, ...).
    kind:
        The fault kind that caused the failure.
    ranks:
        Global ranks of the participating group.
    rank:
        The victim global rank, when the fault targets one rank.
    """

    def __init__(
        self,
        op: str,
        kind: str,
        ranks: tuple[int, ...] = (),
        rank: int | None = None,
        message: str = "",
    ):
        self.op = op
        self.kind = kind
        self.ranks = tuple(ranks)
        self.rank = rank
        detail = message or f"{kind} fault on {op}"
        where = f" (group {self.ranks}" + (
            f", rank {rank})" if rank is not None else ")"
        )
        super().__init__(detail + where)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    Parameters
    ----------
    op:
        Collective op class the fault targets.
    kind:
        One of :data:`FAULT_KINDS`.
    call_index:
        The fault arms on the ``call_index``-th invocation (0-based,
        counted per op class) and stays armed until consumed.
    times:
        How many invocations it affects once armed. ``times=1`` models a
        transient glitch (the engine's first retry succeeds);
        ``times > max_retries`` models a hard failure that exhausts the
        retry budget.
    rank:
        Group-local index of the victim rank (drop / corrupt /
        straggler); taken modulo the group size at injection time.
    delay_s:
        Straggler delay in simulated seconds.
    """

    op: str
    kind: str = "transient"
    call_index: int = 0
    times: int = 1
    rank: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {self.op!r}; expected one of {COLLECTIVE_OPS}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.call_index < 0:
            raise ValueError(f"call_index must be non-negative, got {self.call_index}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.kind == "straggler" and self.delay_s == 0.0:
            raise ValueError("straggler faults need a positive delay_s")


class FaultPlan:
    """A deterministic schedule of collective faults.

    The plan keeps one invocation counter per op class; a spec fires once
    the counter reaches its ``call_index`` and is consumed after
    ``times`` firings. Plans are single-use: they carry mutable arming
    state, so build a fresh plan per run.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._calls: dict[str, int] = defaultdict(int)
        self._remaining = [s.times for s in self.specs]

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_faults: int = 4,
        ops: Sequence[str] = COLLECTIVE_OPS,
        kinds: Sequence[str] = ("transient", "drop", "corrupt"),
        max_call_index: int = 16,
        times: int = 1,
    ) -> "FaultPlan":
        """Draw ``n_faults`` random specs deterministically from ``seed``."""
        if n_faults < 0:
            raise ValueError(f"n_faults must be non-negative, got {n_faults}")
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(n_faults):
            kind = str(rng.choice(list(kinds)))
            specs.append(
                FaultSpec(
                    op=str(rng.choice(list(ops))),
                    kind=kind,
                    call_index=int(rng.integers(max_call_index)),
                    times=times,
                    rank=int(rng.integers(64)),
                    delay_s=float(rng.uniform(1e-3, 1e-1)) if kind == "straggler" else 0.0,
                )
            )
        return cls(specs, seed=seed)

    @property
    def rng(self) -> np.random.Generator:
        """The plan's corruption-byte stream (deterministic from seed)."""
        return self._rng

    def pending(self) -> int:
        """Number of specs not yet fully consumed."""
        return sum(1 for r in self._remaining if r > 0)

    def consult(self, op: str, group_size: int) -> list[FaultSpec]:
        """Advance the op counter and return the specs firing on this call."""
        idx = self._calls[op]
        self._calls[op] += 1
        fired = []
        for i, spec in enumerate(self.specs):
            if spec.op != op or self._remaining[i] <= 0 or idx < spec.call_index:
                continue
            self._remaining[i] -= 1
            fired.append(spec)
        return fired


def corrupt_copy(buf: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """An in-flight copy of ``buf`` with one byte flipped (never mutates ``buf``)."""
    raw = bytearray(np.ascontiguousarray(buf).tobytes())
    if not raw:
        return buf.copy()
    pos = int(rng.integers(len(raw)))
    raw[pos] ^= 0xFF
    return np.frombuffer(bytes(raw), dtype=buf.dtype).reshape(buf.shape)


def buffer_crc(buf: np.ndarray) -> int:
    """CRC32 of a buffer's raw bytes (the simulated transport checksum)."""
    return zlib.crc32(np.ascontiguousarray(buf).tobytes())


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient collective failures.

    Backoff is deterministic (no jitter) and expressed in *simulated*
    seconds; engines charge it to ``CommStats.backoff_seconds`` instead
    of sleeping.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be non-negative, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


def call_with_retry(
    fn: Callable[[], object],
    policy: RetryPolicy | None,
    stats=None,
):
    """Run ``fn``, retrying on :class:`CollectiveError` per ``policy``.

    Each retry charges its backoff to ``stats`` (a
    :class:`~repro.comm.collectives.CommStats`) when given. With
    ``policy=None`` the first failure propagates unretried. Raises the
    last :class:`CollectiveError` once the retry budget is exhausted.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except CollectiveError as err:
            attempt += 1
            if policy is None or attempt > policy.max_retries:
                raise
            if stats is not None:
                stats.record_retry(err.op, policy.delay(attempt))
