"""SGD with momentum and optional (coupled) weight decay."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, ParamLike

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(self, p: ParamLike, state: dict[str, np.ndarray]) -> None:
        g = p.grad
        if self.weight_decay:
            g = g + self.weight_decay * p.data
        if self.momentum:
            if "mu" not in state:
                state["mu"] = np.zeros_like(p.data)
            mu = state["mu"]
            mu *= self.momentum
            mu += g
            g = mu
        p.data -= self.lr * g
