"""Optimizers and learning-rate schedules.

Optimizers operate on any object exposing ``.data`` and ``.grad`` NumPy
arrays — both :class:`repro.models.module.Parameter` and the FSDP
engine's flat parameter shards qualify, so the same AdamW code runs
sharded and unsharded (a correctness requirement of the equivalence
tests).

- :mod:`repro.optim.adamw` — AdamW (used for MAE pretraining, paper §V-B).
- :mod:`repro.optim.lars` — LARS (used for linear probing, paper §V-C).
- :mod:`repro.optim.sgd` — SGD with momentum (baseline/regression tests).
- :mod:`repro.optim.schedules` — cosine decay with linear warmup.
- :mod:`repro.optim.grad_clip` — global-norm gradient clipping.
"""

from repro.optim.adamw import AdamW
from repro.optim.base import Optimizer
from repro.optim.grad_clip import clip_grad_norm, global_grad_norm
from repro.optim.lars import LARS
from repro.optim.schedules import CosineWithWarmup
from repro.optim.sgd import SGD

__all__ = [
    "Optimizer",
    "AdamW",
    "LARS",
    "SGD",
    "CosineWithWarmup",
    "clip_grad_norm",
    "global_grad_norm",
]
