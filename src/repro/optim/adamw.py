"""AdamW (decoupled weight decay), matching ``torch.optim.AdamW``.

The paper pretrains with AdamW at base LR 1.5e-4 and weight decay 0.05
(Section V-B). Update order follows PyTorch exactly (decay applied to the
parameter before the Adam step, bias-corrected moments) so that loss
trajectories are comparable step-for-step across engines.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, ParamLike

__all__ = ["AdamW"]


class AdamW(Optimizer):
    def __init__(
        self,
        params,
        lr: float = 1.5e-4,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.05,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, p: ParamLike, state: dict[str, np.ndarray]) -> None:
        if "m" not in state:
            state["m"] = np.zeros_like(p.data)
            state["v"] = np.zeros_like(p.data)
        m, v = state["m"], state["v"]
        g = p.grad
        # Decoupled weight decay (multiplicative shrink, as in PyTorch).
        if self.weight_decay:
            p.data *= 1.0 - self.lr * self.weight_decay
        m *= self.b1
        m += (1.0 - self.b1) * g
        v *= self.b2
        v += (1.0 - self.b2) * g * g
        bc1 = 1.0 - self.b1**self.t
        bc2 = 1.0 - self.b2**self.t
        step = self.lr / bc1
        p.data -= step * m / (np.sqrt(v / bc2) + self.eps)
