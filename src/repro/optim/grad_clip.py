"""Global-norm gradient clipping (``torch.nn.utils.clip_grad_norm_``)."""

from __future__ import annotations

import numpy as np

__all__ = ["global_grad_norm", "clip_grad_norm"]


def global_grad_norm(params) -> float:
    """L2 norm over the concatenation of all parameter gradients."""
    total = 0.0
    for p in params:
        g = p.grad
        total += float(np.vdot(g, g).real)
    return float(np.sqrt(total))


def clip_grad_norm(params, max_norm: float) -> float:
    """Scale all gradients so the global norm is at most ``max_norm``.

    Returns the pre-clip norm (as PyTorch does).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm
