"""Learning-rate schedules.

The MAE recipe (and the paper) uses linear warmup followed by half-cosine
decay. The schedule is a pure function of the step index; callers assign
``optimizer.lr = schedule(step)`` before each step so the schedule code is
trivially shared between engines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CosineWithWarmup"]


class CosineWithWarmup:
    """Linear warmup to ``base_lr`` then cosine decay to ``min_lr``."""

    def __init__(
        self,
        base_lr: float,
        total_steps: int,
        warmup_steps: int = 0,
        min_lr: float = 0.0,
    ):
        if base_lr < 0 or min_lr < 0:
            raise ValueError("learning rates must be non-negative")
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        if not 0 <= warmup_steps <= total_steps:
            raise ValueError(
                f"warmup_steps must be in [0, total_steps], got {warmup_steps}"
            )
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr

    def __call__(self, step: int) -> float:
        """LR for 0-indexed optimizer step ``step``."""
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        span = max(1, self.total_steps - self.warmup_steps)
        # Warmup already reaches base_lr at step warmup_steps - 1, so the
        # decay phase starts one step in — otherwise the peak is held for
        # two consecutive steps.
        offset = 1 if self.warmup_steps else 0
        progress = min(1.0, (step - self.warmup_steps + offset) / span)
        cos = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cos
