"""LARS (Layer-wise Adaptive Rate Scaling; You et al. 2017).

The paper's linear-probing recipe follows the MAE reference: LARS with
base LR 0.1 and no weight decay (Section V-C). Implementation matches the
MAE repository's ``LARS`` class: SGD-with-momentum where each parameter's
step is scaled by ``trust * ||w|| / ||g + wd*w||``, skipping the scaling
for one-dimensional parameters (biases, norms).
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, ParamLike

__all__ = ["LARS"]


class LARS(Optimizer):
    def __init__(
        self,
        params,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        trust_coefficient: float = 0.001,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if trust_coefficient <= 0:
            raise ValueError(
                f"trust_coefficient must be positive, got {trust_coefficient}"
            )
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.trust = trust_coefficient

    def _update(self, p: ParamLike, state: dict[str, np.ndarray]) -> None:
        g = p.grad
        if p.data.ndim > 1:  # LARS scaling for weight matrices only
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            w_norm = float(np.linalg.norm(p.data))
            g_norm = float(np.linalg.norm(g))
            if w_norm > 0.0 and g_norm > 0.0:
                g = g * (self.trust * w_norm / g_norm)
        if "mu" not in state:
            state["mu"] = np.zeros_like(p.data)
        mu = state["mu"]
        mu *= self.momentum
        mu += g
        p.data -= self.lr * mu
