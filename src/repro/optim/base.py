"""Optimizer base class."""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

__all__ = ["Optimizer", "ParamLike"]


class ParamLike(Protocol):
    """Anything with mutable ``data`` and ``grad`` arrays of equal shape."""

    data: np.ndarray
    grad: np.ndarray


class Optimizer:
    """Base: holds parameters, the current learning rate, and a step count.

    Subclasses implement :meth:`_update` for one parameter slot. State is
    kept in per-slot dictionaries of arrays, exposed through
    :meth:`state_bytes` for the memory model.
    """

    def __init__(self, params: Sequence[ParamLike], lr: float):
        params = list(params)
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        for i, p in enumerate(params):
            if p.data.shape != p.grad.shape:
                raise ValueError(f"param {i}: data/grad shape mismatch")
        self.params = params
        self.lr = lr
        self.t = 0
        self.state: list[dict[str, np.ndarray]] = [dict() for _ in params]

    def zero_grad(self) -> None:
        """Zero every parameter gradient."""
        for p in self.params:
            p.grad[...] = 0.0

    def step(self) -> None:
        """Apply one update to every parameter slot."""
        self.t += 1
        for i, p in enumerate(self.params):
            self._update(p, self.state[i])

    def _update(self, p: ParamLike, state: dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Total bytes of optimizer state (for memory-model validation)."""
        return sum(
            arr.nbytes for slot in self.state for arr in slot.values()
        )

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable snapshot: step count, lr, and per-slot arrays."""
        return {
            "t": self.t,
            "lr": self.lr,
            "slots": [
                {k: v.copy() for k, v in slot.items()} for slot in self.state
            ],
        }

    def load_state_dict(self, sd: dict) -> None:
        """Restore a snapshot (parameter layout must match)."""
        slots = sd["slots"]
        if len(slots) != len(self.params):
            raise ValueError(
                f"checkpoint has {len(slots)} slots, optimizer has "
                f"{len(self.params)}"
            )
        for i, (slot, p) in enumerate(zip(slots, self.params)):
            for k, v in slot.items():
                v = np.asarray(v)
                if v.shape != p.data.shape:
                    raise ValueError(
                        f"slot {i}[{k}]: shape {v.shape} != param "
                        f"{p.data.shape}"
                    )
                if v.dtype != p.data.dtype:
                    # Moments must round-trip bit-exactly through disk;
                    # a silent cast here would break resumed trajectories.
                    raise ValueError(
                        f"slot {i}[{k}]: dtype {v.dtype} != param {p.data.dtype}"
                    )
            self.state[i] = {k: np.array(v) for k, v in slot.items()}
        self.t = int(sd["t"])
        self.lr = float(sd["lr"])
