"""Optimizer base class.

Mixed precision: :meth:`Optimizer.use_master_weights` attaches a
full-precision master copy per parameter slot. Each :meth:`step` then
runs the subclass update on the master values (restored into ``p.data``
in place — flat-shard views stay valid), saves the result back into the
master, and re-quantizes ``p.data`` onto the reduced-precision grid.
This is the standard bf16-params / fp32-master-and-moments recipe, and
it is what keeps long bf16 trajectories from stalling on update sizes
below one bf16 ulp.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

__all__ = ["Optimizer", "ParamLike"]


class ParamLike(Protocol):
    """Anything with mutable ``data`` and ``grad`` arrays of equal shape."""

    data: np.ndarray
    grad: np.ndarray


class Optimizer:
    """Base: holds parameters, the current learning rate, and a step count.

    Subclasses implement :meth:`_update` for one parameter slot. State is
    kept in per-slot dictionaries of arrays, exposed through
    :meth:`state_bytes` for the memory model.
    """

    def __init__(self, params: Sequence[ParamLike], lr: float):
        params = list(params)
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        for i, p in enumerate(params):
            if p.data.shape != p.grad.shape:
                raise ValueError(f"param {i}: data/grad shape mismatch")
        self.params = params
        self.lr = lr
        self.t = 0
        self.state: list[dict[str, np.ndarray]] = [dict() for _ in params]
        self.master: list[np.ndarray] | None = None
        self._quantize: Callable[[np.ndarray], np.ndarray] | None = None

    def zero_grad(self) -> None:
        """Zero every parameter gradient."""
        for p in self.params:
            p.grad[...] = 0.0

    def use_master_weights(
        self, quantize: Callable[[np.ndarray], np.ndarray] | None = None
    ) -> None:
        """Attach full-precision master copies of every parameter.

        ``quantize`` (e.g. :func:`repro.precision.bf16_round`) is applied
        to ``p.data`` after every update — and once right here, so the
        working parameters start on the reduced-precision grid while the
        masters keep the exact initialization. ``p.data`` is only ever
        mutated in place (``p.data[...] = ...``): FSDP flat-shard views
        must keep aliasing their unit's flat buffer.
        """
        self.master = [p.data.copy() for p in self.params]
        self._quantize = quantize
        if quantize is not None:
            for p in self.params:
                p.data[...] = quantize(p.data)

    def step(self) -> None:
        """Apply one update to every parameter slot.

        With master weights attached, the update runs on (and persists
        to) the master values; the working parameter receives the
        re-quantized result.
        """
        self.t += 1
        if self.master is None:
            for i, p in enumerate(self.params):
                self._update(p, self.state[i])
            return
        for i, p in enumerate(self.params):
            p.data[...] = self.master[i]
            self._update(p, self.state[i])
            self.master[i][...] = p.data
            if self._quantize is not None:
                p.data[...] = self._quantize(p.data)

    def _update(self, p: ParamLike, state: dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Total bytes of optimizer state (for memory-model validation).

        Master weights, when attached, are optimizer state too — they
        are exactly the fp32 shard ZeRO's accounting charges to the
        optimizer in mixed precision.
        """
        slot_bytes = sum(
            arr.nbytes for slot in self.state for arr in slot.values()
        )
        if self.master is not None:
            slot_bytes += sum(m.nbytes for m in self.master)
        return slot_bytes

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable snapshot: step count, lr, per-slot arrays, and —
        when master weights are attached — the master copies."""
        sd = {
            "t": self.t,
            "lr": self.lr,
            "slots": [
                {k: v.copy() for k, v in slot.items()} for slot in self.state
            ],
        }
        if self.master is not None:
            sd["master"] = [m.copy() for m in self.master]
        return sd

    def load_state_dict(self, sd: dict) -> None:
        """Restore a snapshot (parameter layout and precision must match)."""
        slots = sd["slots"]
        if len(slots) != len(self.params):
            raise ValueError(
                f"checkpoint has {len(slots)} slots, optimizer has "
                f"{len(self.params)}"
            )
        for i, (slot, p) in enumerate(zip(slots, self.params)):
            for k, v in slot.items():
                v = np.asarray(v)
                if v.shape != p.data.shape:
                    raise ValueError(
                        f"slot {i}[{k}]: shape {v.shape} != param "
                        f"{p.data.shape}"
                    )
                if v.dtype != p.data.dtype:
                    # Moments must round-trip bit-exactly through disk;
                    # a silent cast here would break resumed trajectories.
                    raise ValueError(
                        f"slot {i}[{k}]: dtype {v.dtype} != param {p.data.dtype}"
                    )
            self.state[i] = {k: np.array(v) for k, v in slot.items()}
        if self.master is not None:
            if "master" not in sd:
                raise ValueError(
                    "optimizer has master weights but the checkpoint has "
                    "none (was it saved from a full-precision run?)"
                )
            masters = sd["master"]
            if len(masters) != len(self.params):
                raise ValueError(
                    f"checkpoint has {len(masters)} master weights, "
                    f"optimizer has {len(self.params)} parameters"
                )
            for i, (m, p) in enumerate(zip(masters, self.params)):
                m = np.asarray(m)
                if m.shape != p.data.shape or m.dtype != p.data.dtype:
                    # Masters must round-trip bit-exactly, like moments.
                    raise ValueError(
                        f"master {i}: {m.dtype}{m.shape} != param "
                        f"{p.data.dtype}{p.data.shape}"
                    )
                self.master[i] = np.array(m)
        elif "master" in sd:
            raise ValueError(
                "checkpoint carries master weights but the optimizer has "
                "none (construct the engine with precision='bf16')"
            )
        self.t = int(sd["t"])
        self.lr = float(sd["lr"])
