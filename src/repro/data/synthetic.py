"""Procedural remote-sensing scene generator.

Generates small RGB "satellite scenes" whose classes mimic land-cover
categories: each class is a texture program (gratings for crop fields,
block grids for urban fabric, smooth gradients with ripples for water,
correlated blob noise for forest, linear structures for roads, bimodal
splits for coastlines) with class-specific *statistics* (spatial
frequency band, orientation concentration, palette) and heavy nuisance
variation (rotation, phase, brightness, sensor noise).

Design intent, mirroring what makes MillionAID-style data hard:

- class identity lives in second-order texture statistics, not in mean
  color — a linear probe on raw pixels is weak, learned features win;
- nuisance transforms (rotation/phase/brightness) force invariance;
- the same generator with a different ``salt`` yields a *different
  dataset* from the same family space, emulating the UCM/AID/NWPU
  domain shifts relative to MillionAID.

Everything is vectorized over the pixel lattice; per-image parameters are
drawn from explicitly passed generators (no global RNG).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SceneGenerator", "FAMILY_NAMES"]

FAMILY_NAMES = ("fields", "urban", "water", "forest", "roads", "coast")


@dataclass(frozen=True)
class _ClassParams:
    family: int
    freq: float  # dominant spatial frequency (cycles per image)
    orient_mean: float  # preferred orientation (radians)
    orient_kappa: float  # orientation concentration (0 = isotropic)
    palette: np.ndarray  # (3,) base color
    palette2: np.ndarray  # (3,) secondary color
    contrast: float


class SceneGenerator:
    """Deterministic class-conditional scene synthesis.

    Parameters
    ----------
    img_size:
        Output side length (square images).
    n_classes:
        Number of classes; class ``c`` uses family ``c % 6`` with
        class-specific parameters drawn from ``SeedSequence([salt, c])``.
    salt:
        Dataset identity; different salts give different class parameter
        sets (and hence different datasets).
    noise_std:
        Additive sensor-noise sigma.
    """

    def __init__(
        self,
        img_size: int = 32,
        n_classes: int = 12,
        salt: int = 0,
        noise_std: float = 0.12,
    ):
        if img_size < 8:
            raise ValueError(f"img_size must be >= 8, got {img_size}")
        if n_classes < 2:
            raise ValueError(f"need at least 2 classes, got {n_classes}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        self.img_size = img_size
        self.n_classes = n_classes
        self.salt = salt
        self.noise_std = noise_std
        coords = (np.arange(img_size) + 0.5) / img_size - 0.5
        self._yy, self._xx = np.meshgrid(coords, coords, indexing="ij")
        self._class_params = [self._make_class_params(c) for c in range(n_classes)]

    def _make_class_params(self, c: int) -> _ClassParams:
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.salt, 7321, c]))
        )
        family = c % len(FAMILY_NAMES)
        return _ClassParams(
            family=family,
            freq=float(rng.uniform(2.5, 9.0)),
            orient_mean=float(rng.uniform(0, np.pi)),
            orient_kappa=float(rng.uniform(0.0, 6.0)),
            palette=rng.uniform(0.25, 0.75, size=3),
            palette2=rng.uniform(0.25, 0.75, size=3),
            contrast=float(rng.uniform(0.35, 0.65)),
        )

    # -- texture programs (each returns a (H, W) field in [-1, 1]) ----------

    def _orientation(self, p: _ClassParams, rng: np.random.Generator) -> float:
        if p.orient_kappa <= 0:
            return float(rng.uniform(0, np.pi))
        # Von Mises jitter (halved: orientations live on [0, pi)) around
        # the class's preferred direction.
        return p.orient_mean + float(rng.vonmises(0.0, p.orient_kappa)) / 2.0

    def _grating(self, p: _ClassParams, rng: np.random.Generator) -> np.ndarray:
        theta = self._orientation(p, rng)
        f = p.freq * rng.uniform(0.85, 1.15)
        phase = rng.uniform(0, 2 * np.pi)
        u = self._xx * np.cos(theta) + self._yy * np.sin(theta)
        return np.sin(2 * np.pi * f * u + phase)

    def _urban(self, p: _ClassParams, rng: np.random.Generator) -> np.ndarray:
        theta = self._orientation(p, rng)
        f = p.freq * rng.uniform(0.9, 1.1)
        ph1, ph2 = rng.uniform(0, 2 * np.pi, size=2)
        u = self._xx * np.cos(theta) + self._yy * np.sin(theta)
        v = -self._xx * np.sin(theta) + self._yy * np.cos(theta)
        return np.sign(
            np.sin(2 * np.pi * f * u + ph1) * np.sin(2 * np.pi * f * v + ph2)
        ).astype(np.float64)

    def _smooth(
        self, p: _ClassParams, rng: np.random.Generator, n_waves: int = 6
    ) -> np.ndarray:
        """Random low-frequency Fourier field (water / forest base)."""
        field = np.zeros_like(self._xx)
        freqs = rng.uniform(0.4, 1.0, size=n_waves) * p.freq
        thetas = rng.uniform(0, np.pi, size=n_waves)
        phases = rng.uniform(0, 2 * np.pi, size=n_waves)
        amps = rng.uniform(0.3, 1.0, size=n_waves)
        for f, t, ph, a in zip(freqs, thetas, phases, amps):
            u = self._xx * np.cos(t) + self._yy * np.sin(t)
            field += a * np.sin(2 * np.pi * f * u + ph)
        m = np.abs(field).max()
        return field / m if m > 0 else field

    def _forest(self, p: _ClassParams, rng: np.random.Generator) -> np.ndarray:
        base = self._smooth(p, rng, n_waves=10)
        # Thresholded blobs: correlated clumps at the class's scale.
        return np.tanh(3.0 * base)

    def _roads(self, p: _ClassParams, rng: np.random.Generator) -> np.ndarray:
        field = -np.ones_like(self._xx)
        n_lines = 1 + int(p.freq // 3) + int(rng.integers(0, 2))
        width = 0.035 * rng.uniform(0.8, 1.3)
        for _ in range(n_lines):
            theta = self._orientation(p, rng)
            offset = rng.uniform(-0.4, 0.4)
            d = np.abs(
                self._xx * np.cos(theta) + self._yy * np.sin(theta) - offset
            )
            field = np.maximum(field, np.where(d < width, 1.0, -1.0))
        return field

    def _coast(self, p: _ClassParams, rng: np.random.Generator) -> np.ndarray:
        theta = self._orientation(p, rng)
        offset = rng.uniform(-0.2, 0.2)
        u = self._xx * np.cos(theta) + self._yy * np.sin(theta) - offset
        edge = np.tanh(u * p.freq * 3.0)
        ripple = 0.3 * np.sin(2 * np.pi * p.freq * u + rng.uniform(0, 2 * np.pi))
        return np.clip(edge + np.where(u < 0, ripple, 0.0), -1.0, 1.0)

    # -- assembly ------------------------------------------------------------

    def _render(
        self, class_id: int, rng: np.random.Generator
    ) -> np.ndarray:
        """One clean (noise-free) scene of ``class_id``."""
        p = self._class_params[class_id]
        program = (
            self._grating,
            self._urban,
            lambda pp, r: self._smooth(pp, r),
            self._forest,
            self._roads,
            self._coast,
        )[p.family]
        field = program(p, rng)
        brightness = rng.uniform(0.85, 1.15)
        mix = 0.5 * (field + 1.0)  # to [0, 1]
        return (
            p.palette[:, None, None] * (1.0 - p.contrast * mix)
            + p.palette2[:, None, None] * (p.contrast * mix)
        ) * brightness

    def generate(self, class_id: int, rng: np.random.Generator) -> np.ndarray:
        """One (3, H, W) scene of ``class_id`` in roughly [0, 1]."""
        if not 0 <= class_id < self.n_classes:
            raise ValueError(
                f"class_id {class_id} out of range [0, {self.n_classes})"
            )
        img = self._render(class_id, rng)
        img = img + self.noise_std * rng.standard_normal(img.shape)
        return np.clip(img, 0.0, 1.0)

    def generate_composite(
        self, class_a: int, class_b: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """A two-region scene plus its per-pixel land-cover labels.

        Two classes' textures are split by a smooth random region; every
        pixel is labeled with the *family* index of its visible layer
        (the semantic-segmentation label space). Returns
        ``(image (3, H, W), labels (H, W) in [0, len(FAMILY_NAMES)))``.
        """
        for c in (class_a, class_b):
            if not 0 <= c < self.n_classes:
                raise ValueError(f"class_id {c} out of range")
        img_a = self._render(class_a, rng)
        img_b = self._render(class_b, rng)
        # The region boundary: a random low-frequency field's sign.
        boundary_params = self._class_params[class_a]
        region = self._smooth(boundary_params, rng, n_waves=3) > rng.uniform(
            -0.3, 0.3
        )
        img = np.where(region[None, :, :], img_a, img_b)
        img = img + self.noise_std * rng.standard_normal(img.shape)
        fam_a = self._class_params[class_a].family
        fam_b = self._class_params[class_b].family
        labels = np.where(region, fam_a, fam_b).astype(np.int64)
        return np.clip(img, 0.0, 1.0), labels

    def generate_batch(
        self, class_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """(B, 3, H, W) batch for the given class labels."""
        class_ids = np.asarray(class_ids)
        out = np.empty(
            (len(class_ids), 3, self.img_size, self.img_size), dtype=np.float64
        )
        for i, c in enumerate(class_ids):
            out[i] = self.generate(int(c), rng)
        return out
