"""Image transforms: normalization and light augmentation.

Operates on ``(B, C, H, W)`` or ``(C, H, W)`` arrays; all vectorized, all
pure functions of their RNG argument.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize_images",
    "denormalize_images",
    "random_flip",
    "augment_view",
    "IMAGENET_MEAN",
    "IMAGENET_STD",
]

#: Channel statistics used throughout (ImageNet convention, as the MAE
#: reference code applies to RS imagery too).
IMAGENET_MEAN = np.array([0.485, 0.456, 0.406])
IMAGENET_STD = np.array([0.229, 0.224, 0.225])


def _bcast(v: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape a per-channel vector for broadcasting over (..., C, H, W)."""
    return v.reshape((1,) * (ndim - 3) + (-1, 1, 1))


def normalize_images(
    images: np.ndarray,
    mean: np.ndarray = IMAGENET_MEAN,
    std: np.ndarray = IMAGENET_STD,
) -> np.ndarray:
    """Standardize channels: ``(x - mean) / std``."""
    if images.ndim not in (3, 4):
        raise ValueError(f"expected (B, C, H, W) or (C, H, W), got {images.shape}")
    if images.shape[-3] != len(mean):
        raise ValueError(
            f"channel count {images.shape[-3]} does not match stats ({len(mean)})"
        )
    return (images - _bcast(mean, images.ndim)) / _bcast(std, images.ndim)


def denormalize_images(
    images: np.ndarray,
    mean: np.ndarray = IMAGENET_MEAN,
    std: np.ndarray = IMAGENET_STD,
) -> np.ndarray:
    """Inverse of :func:`normalize_images`."""
    return images * _bcast(std, images.ndim) + _bcast(mean, images.ndim)


def random_flip(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Horizontal flip with probability 0.5 per image (returns a copy)."""
    if images.ndim != 4:
        raise ValueError(f"expected (B, C, H, W), got {images.shape}")
    out = images.copy()
    flips = rng.random(len(images)) < 0.5
    out[flips] = out[flips, :, :, ::-1]
    return out


def augment_view(
    images: np.ndarray,
    rng: np.random.Generator,
    max_shift: int = 4,
    brightness: float = 0.2,
    noise_std: float = 0.05,
) -> np.ndarray:
    """One stochastic view for contrastive pretraining.

    Composition (all per image): horizontal flip, circular translation
    of up to ``max_shift`` pixels (the periodic stand-in for random
    cropping), multiplicative brightness jitter, and additive Gaussian
    noise. Returns a new array.
    """
    if images.ndim != 4:
        raise ValueError(f"expected (B, C, H, W), got {images.shape}")
    out = random_flip(images, rng)
    b = len(out)
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, size=(b, 2))
        for i, (dy, dx) in enumerate(shifts):  # per-image roll amounts
            out[i] = np.roll(out[i], (int(dy), int(dx)), axis=(1, 2))
    if brightness > 0:
        out *= rng.uniform(1 - brightness, 1 + brightness, size=(b, 1, 1, 1))
    if noise_std > 0:
        out += noise_std * rng.standard_normal(out.shape)
    return out
