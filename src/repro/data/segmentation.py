"""Semantic-segmentation dataset (paper future work, made concrete).

Composite two-region scenes with per-pixel land-cover-family labels,
down-mapped to *patch-level* labels (majority vote within each patch) —
the label granularity a plain-ViT dense head predicts at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import FAMILY_NAMES, SceneGenerator

__all__ = ["SegmentationDataset", "build_segmentation_dataset", "patch_majority_labels"]

N_SEG_CLASSES = len(FAMILY_NAMES)


def patch_majority_labels(pixel_labels: np.ndarray, patch: int) -> np.ndarray:
    """(H, W) pixel labels -> (grid*grid,) majority label per patch."""
    h, w = pixel_labels.shape
    if h % patch or w % patch:
        raise ValueError(f"labels {h}x{w} not divisible by patch {patch}")
    gh, gw = h // patch, w // patch
    tiles = pixel_labels.reshape(gh, patch, gw, patch).transpose(0, 2, 1, 3)
    tiles = tiles.reshape(gh * gw, patch * patch)
    counts = np.apply_along_axis(
        lambda row: np.bincount(row, minlength=N_SEG_CLASSES), 1, tiles
    )
    return counts.argmax(axis=1)


@dataclass
class SegmentationDataset:
    """Images plus patch-level segmentation targets."""

    images: np.ndarray  # (N, 3, H, W)
    patch_labels: np.ndarray  # (N, grid*grid)
    pixel_labels: np.ndarray  # (N, H, W)
    patch: int
    n_classes: int = N_SEG_CLASSES

    def __len__(self) -> int:
        return len(self.images)


def build_segmentation_dataset(
    n_images: int,
    img_size: int = 32,
    patch: int = 8,
    salt: int = 1001,
    n_scene_classes: int = 20,
    noise_std: float = 0.15,
    seed: int = 0,
) -> SegmentationDataset:
    """Materialize composite scenes with segmentation labels.

    Uses the MillionAID-analogue salt by default so a pretrained encoder
    is in-domain for the textures (the standard transfer setting).
    """
    if n_images <= 0:
        raise ValueError(f"n_images must be positive, got {n_images}")
    gen = SceneGenerator(
        img_size=img_size, n_classes=n_scene_classes, salt=salt,
        noise_std=noise_std,
    )
    rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, 60013]))
    )
    images = np.empty((n_images, 3, img_size, img_size))
    pixel_labels = np.empty((n_images, img_size, img_size), dtype=np.int64)
    grid = img_size // patch
    patch_labels = np.empty((n_images, grid * grid), dtype=np.int64)
    for i in range(n_images):
        a, b = rng.choice(n_scene_classes, size=2, replace=False)
        img, labels = gen.generate_composite(int(a), int(b), rng)
        images[i] = img
        pixel_labels[i] = labels
        patch_labels[i] = patch_majority_labels(labels, patch)
    return SegmentationDataset(
        images=images,
        patch_labels=patch_labels,
        pixel_labels=pixel_labels,
        patch=patch,
    )
