"""Dataset analogues of the paper's Table II, scaled down.

The paper's datasets and our substitutes:

=============  =======  =================  =================  ==============
paper dataset  classes  train (probe)      test               our scale
=============  =======  =================  =================  ==============
MillionAID     51       1000 (TR=10%)      9000 (+990848 pre) 20 cls, ~1/10x
UCM            21       1050 (TR=50%)      1050               14 cls, ~1/2.5x
AID            30       2000 (TR=20%)      8000               16 cls, ~1/6x
NWPU           45       3150 (TR=10%)      28350              20 cls, ~1/10x
=============  =======  =================  =================  ==============

What is preserved exactly: the *training ratio* (TR) of each probe split
— the paper argues its splits are more rigorous than prior work because
TR is small, and the relative trend across model scales must survive
that. What is scaled: class counts and absolute sizes (NumPy training
budget). Each dataset uses a distinct generator ``salt`` so the probe
sets are genuinely shifted domains relative to the pretraining corpus,
except the MillionAID probe split, which shares the pretraining salt by
construction (the paper highlights this same-distribution property when
discussing Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SceneGenerator

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "ArrayDataset",
    "SplitDataset",
    "build_dataset",
    "build_pretraining_corpus",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One scene-classification dataset's recipe."""

    name: str
    n_classes: int
    n_train: int
    n_test: int
    salt: int
    noise_std: float
    paper_classes: int
    paper_train: int
    paper_test: int

    @property
    def train_ratio(self) -> float:
        """Realized training ratio (train / (train + test))."""
        return self.n_train / (self.n_train + self.n_test)

    @property
    def paper_train_ratio(self) -> float:
        """The paper's training ratio for the original dataset."""
        return self.paper_train / (self.paper_train + self.paper_test)


#: The MillionAID generator salt — shared by the pretraining corpus and
#: the MillionAID probe split (same distribution, as in the paper).
MILLION_AID_SALT = 1001

DATASET_SPECS: dict[str, DatasetSpec] = {
    # name              cls  train test   salt  noise  paper: cls train test
    "millionaid": DatasetSpec(
        "millionaid", 20, 400, 3600, MILLION_AID_SALT, 0.20, 51, 1000, 9000
    ),
    "ucm": DatasetSpec("ucm", 14, 420, 420, 2002, 0.20, 21, 1050, 1050),
    "aid": DatasetSpec("aid", 16, 320, 1280, 3003, 0.20, 30, 2000, 8000),
    "nwpu": DatasetSpec("nwpu", 20, 320, 2880, 4004, 0.24, 45, 3150, 28350),
}


class ArrayDataset:
    """In-memory labeled image dataset."""

    def __init__(self, images: np.ndarray, labels: np.ndarray, name: str = ""):
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {images.shape}")
        if len(images) != len(labels):
            raise ValueError(
                f"images/labels length mismatch: {len(images)} vs {len(labels)}"
            )
        self.images = images
        self.labels = np.asarray(labels, dtype=np.int64)
        self.name = name

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, idx):
        return self.images[idx], self.labels[idx]

    @property
    def n_classes(self) -> int:
        """Number of distinct labels (max label + 1)."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0


@dataclass
class SplitDataset:
    """Train/test pair plus provenance."""

    spec: DatasetSpec
    train: ArrayDataset
    test: ArrayDataset


def _balanced_labels(n: int, n_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Near-balanced label vector, shuffled."""
    reps = -(-n // n_classes)
    labels = np.tile(np.arange(n_classes), reps)[:n]
    rng.shuffle(labels)
    return labels


def build_dataset(
    name: str, img_size: int = 32, seed: int = 0
) -> SplitDataset:
    """Materialize one probe dataset (train and test splits)."""
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[name]
    gen = SceneGenerator(
        img_size=img_size,
        n_classes=spec.n_classes,
        salt=spec.salt,
        noise_std=spec.noise_std,
    )
    rng_tr = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, spec.salt, 1]))
    )
    rng_te = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, spec.salt, 2]))
    )
    y_tr = _balanced_labels(spec.n_train, spec.n_classes, rng_tr)
    y_te = _balanced_labels(spec.n_test, spec.n_classes, rng_te)
    return SplitDataset(
        spec=spec,
        train=ArrayDataset(gen.generate_batch(y_tr, rng_tr), y_tr, f"{name}/train"),
        test=ArrayDataset(gen.generate_batch(y_te, rng_te), y_te, f"{name}/test"),
    )


def build_pretraining_corpus(
    n_images: int = 2048, img_size: int = 32, seed: int = 0
) -> ArrayDataset:
    """The MillionAID-analogue *unlabeled* pretraining corpus.

    Uses the MillionAID salt and class space so that the MillionAID probe
    split is in-distribution for pretraining (paper Section V-C). Labels
    are returned but MUST NOT be used for pretraining (self-supervised).
    """
    spec = DATASET_SPECS["millionaid"]
    gen = SceneGenerator(
        img_size=img_size, n_classes=spec.n_classes, salt=spec.salt,
        noise_std=spec.noise_std,
    )
    rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, spec.salt, 0]))
    )
    labels = _balanced_labels(n_images, spec.n_classes, rng)
    return ArrayDataset(
        gen.generate_batch(labels, rng), labels, "millionaid/pretrain"
    )
