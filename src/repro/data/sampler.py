"""Rank-sharded sampling (the analogue of ``DistributedSampler``).

Every rank sees a disjoint, equally-sized *strided* slice of each epoch's
permutation (rank r takes positions ``r, r + W, r + 2W, ...`` — the same
convention as PyTorch's ``DistributedSampler``); the permutation depends
only on (seed, epoch), so the union over ranks is exactly the
single-process epoch — which keeps distributed training equivalent to the
single-process reference.

When ``n_items`` does not divide by the world size, ``drop_last=True``
truncates the permutation to the largest multiple (some samples are
skipped that epoch) while ``drop_last=False`` pads it by wrapping around
to the front of the permutation (some samples repeat), again matching
``DistributedSampler``. Either way every rank draws the same per-epoch
count, so lockstep collectives never see ragged batches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DistributedSampler"]


class DistributedSampler:
    """Deterministic rank-sharded epoch sampler (see module docstring)."""

    def __init__(
        self,
        n_items: int,
        world_size: int,
        rank: int,
        seed: int = 0,
        drop_last: bool = True,
    ):
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world {world_size}")
        self.n_items = n_items
        self.world_size = world_size
        self.rank = rank
        self.seed = seed
        self.drop_last = drop_last
        if drop_last:
            self.per_rank = n_items // world_size
        else:
            self.per_rank = -(-n_items // world_size)

    def epoch_indices(self, epoch: int) -> np.ndarray:
        """This rank's indices for ``epoch`` (strided slice of the perm).

        ``drop_last=True`` truncates the permutation to ``per_rank * W``
        entries; ``drop_last=False`` wraps it around to that length
        instead, so the union over ranks covers every item at least once
        and all ranks stay the same size.
        """
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 31337, epoch]))
        )
        perm = rng.permutation(self.n_items)
        total = self.per_rank * self.world_size
        if self.drop_last:
            perm = perm[:total]
        elif total > self.n_items:
            perm = np.concatenate([perm, perm[: total - self.n_items]])
        return perm[self.rank :: self.world_size]
