"""Rank-sharded sampling (the analogue of ``DistributedSampler``).

Every rank sees a disjoint, equally-sized *strided* slice of each epoch's
permutation (rank r takes positions ``r, r + W, r + 2W, ...`` — the same
convention as PyTorch's ``DistributedSampler``); the permutation depends
only on (seed, epoch), so the union over ranks is exactly the
single-process epoch — which keeps distributed training equivalent to the
single-process reference.

When ``n_items`` does not divide by the world size, ``drop_last=True``
truncates the permutation to the largest multiple (some samples are
skipped that epoch) while ``drop_last=False`` pads it by wrapping around
to the front of the permutation (some samples repeat), again matching
``DistributedSampler``. Either way every rank draws the same per-epoch
count, so lockstep collectives never see ragged batches.
"""

from __future__ import annotations

import numpy as np

from repro.elastic.errors import ElasticCompatibilityError

__all__ = ["DistributedSampler"]


class DistributedSampler:
    """Deterministic rank-sharded epoch sampler (see module docstring).

    The sampler also carries an elastic *cursor* — ``(epoch, consumed)``
    where ``consumed`` counts the items this rank has drawn from the
    current epoch — checkpointable via :meth:`state_dict` and restorable
    into a **different** world size: because ranks stride the shared
    permutation, "rank ``r`` consumed ``c`` items" is equivalent to "the
    world consumed the first ``c * W`` positions", which re-strides
    exactly onto any world ``W'`` dividing that global position. Legacy
    cursors that predate the world-size record are refused with a typed
    error instead of silently mis-striding.
    """

    def __init__(
        self,
        n_items: int,
        world_size: int,
        rank: int,
        seed: int = 0,
        drop_last: bool = True,
    ):
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world {world_size}")
        self.n_items = n_items
        self.world_size = world_size
        self.rank = rank
        self.seed = seed
        self.drop_last = drop_last
        if drop_last:
            self.per_rank = n_items // world_size
        else:
            self.per_rank = -(-n_items // world_size)
        self.epoch = 0
        self.consumed = 0

    def epoch_indices(self, epoch: int) -> np.ndarray:
        """This rank's indices for ``epoch`` (strided slice of the perm).

        ``drop_last=True`` truncates the permutation to ``per_rank * W``
        entries; ``drop_last=False`` wraps it around to that length
        instead, so the union over ranks covers every item at least once
        and all ranks stay the same size.
        """
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 31337, epoch]))
        )
        perm = rng.permutation(self.n_items)
        total = self.per_rank * self.world_size
        if self.drop_last:
            perm = perm[:total]
        elif total > self.n_items:
            perm = np.concatenate([perm, perm[: total - self.n_items]])
        return perm[self.rank :: self.world_size]

    # -- elastic cursor ----------------------------------------------------

    def advance(self, n: int) -> None:
        """Record that this rank consumed ``n`` more items; epochs roll
        over automatically when the rank's slice is exhausted."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.consumed += n
        while self.consumed >= self.per_rank:
            self.consumed -= self.per_rank
            self.epoch += 1

    def remaining_indices(self) -> np.ndarray:
        """This rank's not-yet-consumed indices of the current epoch."""
        return self.epoch_indices(self.epoch)[self.consumed :]

    def state_dict(self) -> dict:
        """Elastic cursor: position plus the world shape it strides."""
        return {
            "epoch": self.epoch,
            "consumed": self.consumed,
            "world_size": self.world_size,
            "n_items": self.n_items,
            "seed": self.seed,
            "drop_last": self.drop_last,
        }

    def load_state_dict(self, sd: dict) -> None:
        """Restore a cursor, re-striding across world sizes.

        A cursor saved at world size ``W`` with ``consumed = c`` means
        the permutation's first ``c * W`` positions are done globally;
        restoring into world size ``W'`` requires ``c * W`` to divide by
        ``W'`` (i.e. the save happened on a global batch boundary shared
        by both worlds — always true when the global batch size is
        preserved, as the elastic requeue driver does).

        Raises :class:`~repro.elastic.errors.ElasticCompatibilityError`
        for legacy cursors that never recorded their world size: the
        old format striding silently into a resized world is exactly the
        divergence this method exists to prevent.
        """
        if "world_size" not in sd:
            raise ElasticCompatibilityError(
                "legacy DistributedSampler cursor: it records no world_size, "
                f"so restoring it into a world of {self.world_size} rank(s) "
                "would silently mis-stride the epoch permutation (rank r "
                "reads positions r, r+W, ... — a different W reassigns every "
                "sample). Re-save the cursor with this version, or restart "
                "from an epoch boundary via epoch_indices(epoch)."
            )
        for field in ("n_items", "seed", "drop_last"):
            if field in sd and sd[field] != getattr(self, field):
                raise ElasticCompatibilityError(
                    f"sampler cursor {field}={sd[field]!r} does not match "
                    f"this sampler's {field}={getattr(self, field)!r}; the "
                    "permutation stream would differ"
                )
        old_world = int(sd["world_size"])
        global_consumed = int(sd["consumed"]) * old_world
        if global_consumed % self.world_size != 0:
            raise ElasticCompatibilityError(
                f"cursor at global position {global_consumed} (consumed "
                f"{sd['consumed']} x world {old_world}) does not fall on a "
                f"boundary of the new world size {self.world_size}; resume "
                "at a step whose global sample count divides by both world "
                "sizes, or restart the epoch"
            )
        consumed = global_consumed // self.world_size
        if consumed > self.per_rank:
            raise ElasticCompatibilityError(
                f"cursor global position {global_consumed} exceeds this "
                f"world's epoch capacity ({self.per_rank} items/rank x "
                f"{self.world_size} ranks); drop_last truncation differs "
                "between the two worlds — restart from an epoch boundary"
            )
        self.epoch = int(sd["epoch"])
        self.consumed = consumed
