"""Rank-sharded sampling (the analogue of ``DistributedSampler``).

Every rank sees a disjoint, equally-sized slice of each epoch's
permutation; the permutation depends only on (seed, epoch), so the union
over ranks is exactly the single-process epoch — which keeps distributed
training equivalent to the single-process reference.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DistributedSampler"]


class DistributedSampler:
    """Deterministic rank-sharded epoch sampler (see module docstring)."""
    def __init__(
        self,
        n_items: int,
        world_size: int,
        rank: int,
        seed: int = 0,
        drop_last: bool = True,
    ):
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items}")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world {world_size}")
        if not drop_last and n_items % world_size != 0:
            raise NotImplementedError(
                "padding mode is not implemented; use drop_last=True"
            )
        self.n_items = n_items
        self.world_size = world_size
        self.rank = rank
        self.seed = seed
        self.per_rank = n_items // world_size

    def epoch_indices(self, epoch: int) -> np.ndarray:
        """This rank's indices for ``epoch`` (contiguous slice of the perm)."""
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 31337, epoch]))
        )
        perm = rng.permutation(self.n_items)[: self.per_rank * self.world_size]
        return perm[self.rank :: self.world_size]
