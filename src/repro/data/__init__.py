"""Data substrate: synthetic geospatial imagery and loading machinery.

The paper pretrains on MillionAID and probes on UCM / AID / NWPU — none
redistributable or usable offline at this scale. This package provides
the synthetic equivalent: a procedural remote-sensing scene generator
with land-cover-like classes (fields, urban grids, water, forest, ...)
whose parameters control intra-class variation and sensor noise, plus
dataset builders matching each paper dataset's class count and
train/test ratio (scaled down), a deterministic dataloader, and a
distributed sampler.

- :mod:`repro.data.synthetic` — the scene generator.
- :mod:`repro.data.datasets` — MillionAID/UCM/AID/NWPU analogues.
- :mod:`repro.data.dataloader` — batching and shuffling.
- :mod:`repro.data.transforms` — normalization / augmentation.
- :mod:`repro.data.sampler` — rank-sharded sampling.
"""

from repro.data.dataloader import DataLoader
from repro.data.datasets import (
    DATASET_SPECS,
    ArrayDataset,
    DatasetSpec,
    SplitDataset,
    build_dataset,
    build_pretraining_corpus,
)
from repro.data.sampler import DistributedSampler
from repro.data.segmentation import (
    SegmentationDataset,
    build_segmentation_dataset,
    patch_majority_labels,
)
from repro.data.synthetic import SceneGenerator
from repro.data.transforms import augment_view, normalize_images, random_flip

__all__ = [
    "SceneGenerator",
    "ArrayDataset",
    "SplitDataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "build_dataset",
    "build_pretraining_corpus",
    "DataLoader",
    "DistributedSampler",
    "normalize_images",
    "random_flip",
    "augment_view",
    "SegmentationDataset",
    "build_segmentation_dataset",
    "patch_majority_labels",
]
