"""Deterministic batching over in-memory datasets.

A minimal analogue of ``torch.utils.data.DataLoader`` for NumPy arrays:
per-epoch shuffling from an explicit seed, optional last-batch dropping,
and fancy-indexed (vectorized) batch assembly.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.telemetry import NULL_BUS, TelemetryBus

__all__ = ["DataLoader"]


class DataLoader:
    """Deterministic mini-batch iterator over an :class:`ArrayDataset`.

    When a ``telemetry`` bus is attached, every batch assembly is timed
    as a ``data.fetch`` span (batch size attached), so input latency
    shows up alongside compute/comm in the same trace.
    """
    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
        telemetry: TelemetryBus | None = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if drop_last and batch_size > len(dataset):
            # With drop_last the loader would yield nothing at all. Without
            # it, torch semantics apply: one short batch of the whole set.
            raise ValueError(
                f"batch_size {batch_size} exceeds dataset size {len(dataset)} "
                "and drop_last=True would yield no batches"
            )
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self._epoch = 0
        self._batch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def set_epoch(self, epoch: int) -> None:
        """Select which epoch's permutation the next iteration uses.

        Also rewinds the batch cursor to the start of that epoch.
        """
        self._epoch = epoch
        self._batch = 0

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """The loader's resume cursor: ``(epoch, batch)`` plus the seed.

        Permutations are a pure function of (seed, epoch), so the cursor
        is the loader's entire persistent state: restoring it makes
        iteration resume at exactly the next batch an uninterrupted run
        would have delivered — *including mid-epoch*. Resolution is one
        batch: the cursor advances when a batch is handed to the
        consumer, so a snapshot taken while a batch is being processed
        counts that batch as consumed and resume starts at the one
        after it (batches are never replayed and never skipped, but
        there is no intra-batch resume point).
        """
        return {"epoch": self._epoch, "batch": self._batch, "seed": self.seed}

    def load_state_dict(self, sd: dict) -> None:
        """Restore a cursor taken from a loader with the same seed.

        Cursors from before batch-granularity resume (no ``"batch"``
        key) restore at the epoch boundary, as they always did.
        """
        if int(sd["seed"]) != self.seed:
            raise ValueError(
                f"cursor was saved with seed {sd['seed']}, loader has {self.seed}"
            )
        self._epoch = int(sd["epoch"])
        self._batch = int(sd.get("batch", 0))

    def _order(self) -> np.ndarray:
        if not self.shuffle:
            return np.arange(len(self.dataset))
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 517, self._epoch]))
        )
        return rng.permutation(len(self.dataset))

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield the remainder of the current epoch (all of it when the
        batch cursor sits at an epoch boundary, which is the usual case).

        The cursor advances *before* each batch is yielded, so a
        ``state_dict()`` taken after receiving batch ``k`` resumes at
        batch ``k + 1`` — a partially-consumed iterator never causes a
        batch to be replayed or skipped.
        """
        order = self._order()
        epoch = self._epoch
        n = len(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        n_batches = -(-stop // self.batch_size)
        bus = self.telemetry
        for b in range(self._batch, n_batches):
            idx = order[b * self.batch_size : min((b + 1) * self.batch_size, stop)]
            if b + 1 >= n_batches:
                self._epoch = epoch + 1
                self._batch = 0
            else:
                self._batch = b + 1
            if not bus.enabled:
                yield self.dataset.images[idx], self.dataset.labels[idx]
                continue
            with bus.span("data.fetch", batch=len(idx)):
                batch = (self.dataset.images[idx], self.dataset.labels[idx])
            yield batch
