"""Dynamic micro-batching policy: close on size or on age, whichever first.

Dash et al.'s Frontier serving study makes the core trade explicit:
larger batches amortize per-launch overhead and raise device utilization,
but every queued request pays the wait. The classic resolution — the one
production servers (Triton, vLLM, TF-Serving) all converge on — is a
*dynamic micro-batcher* with two knobs:

``max_batch_size``
    A batch closes the moment this many requests are waiting (throughput
    bound).
``max_wait_s``
    A batch closes once its *oldest* member has waited this long, full
    or not (latency bound).

Whichever trips first wins. The policy itself is a pure function of the
queue state and the virtual clock: :meth:`MicroBatcher.ready_at` reports
the earliest virtual time a batch could close, which is exactly the
event the serving loop schedules; :meth:`MicroBatcher.take` pops the
batch. Nothing here sleeps or reads wall time, so every schedule the
batcher produces is replayable.
"""

from __future__ import annotations

import math

from repro.serve.queue import Request, RequestQueue

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Close-on-size-or-age batching policy over a :class:`RequestQueue`."""

    def __init__(self, max_batch_size: int = 8, max_wait_s: float = 0.0):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0 or not math.isfinite(max_wait_s):
            raise ValueError(f"max_wait_s must be finite and >= 0, got {max_wait_s}")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s

    def ready_at(self, queue: RequestQueue, now_s: float) -> float | None:
        """Earliest virtual time a batch could close; None when queue empty.

        ``now_s`` when the size trigger has already tripped (or the
        oldest request has already aged out); otherwise the future
        instant the oldest request reaches ``max_wait_s``.
        """
        if len(queue) == 0:
            return None
        if len(queue) >= self.max_batch_size:
            return now_s
        return max(now_s, queue.peek().arrival_s + self.max_wait_s)

    def take(self, queue: RequestQueue) -> list[Request]:
        """Pop the closing batch: up to ``max_batch_size`` oldest requests.

        The caller decides *when* (via :meth:`ready_at`); ``take`` only
        decides *what*. Expired requests are the server's concern — it
        filters them against the clock before dispatching.
        """
        batch = []
        while len(queue) and len(batch) < self.max_batch_size:
            batch.append(queue.pop())
        return batch
