"""SLO-driven autoscaling of the serving replica fleet.

The paper's scaling study sizes a *training* fleet offline; a serving
fleet has to size itself online, because open-loop traffic (diurnal
cycles, flash crowds) does not wait for capacity. This module adds that
control loop: a deterministic state machine that watches the same
telemetry the operator would — queue depth per replica and the windowed
p99 latency — and grows or shrinks the
:class:`~repro.serve.replica.ReplicaPool` between event-loop steps.

**State machine.** The autoscaler evaluates every ``interval_s`` of
virtual time. At each tick it computes

- ``backlog`` — queued requests per active replica, and
- ``p99_s`` — the 99th percentile latency over the last ``window``
  served or timed-out responses (timeouts count as their full
  time-to-verdict, so a timing-out system reads as slow, not fast;
  instant door rejections are excluded — they would read as fast);

then moves through three states:

- **steady** — both signals inside their bands; no action.
- **scale-up** — ``backlog > high_backlog`` *or* ``p99_s > slo_s``:
  add ``step`` replicas (clamped to ``max_replicas``). New replicas
  are busy for ``warmup_s`` before their first batch (model load /
  container start analogue). Another scale-up is suppressed for
  ``up_cooldown_s`` (hysteresis against thrashing on a single burst).
- **scale-down** — ``backlog < low_backlog`` *and* ``p99_s`` under
  ``slo_s * down_slo_fraction``: retire one replica (drain, never
  interrupt an in-flight batch), clamped to ``min_replicas``,
  suppressed for ``down_cooldown_s`` after any scale action — scaling
  down is deliberately slower than scaling up, the standard
  production asymmetry.

Every decision is a pure function of (virtual time, telemetry history,
policy), so a seeded open-loop scenario replays its exact scale
timeline — asserted by the property campaign.

Telemetry: gauges ``serve.replicas`` / ``serve.desired_replicas`` /
``serve.autoscale_backlog`` / ``serve.autoscale_p99_ms`` on every tick,
counters ``serve.scale_up`` / ``serve.scale_down`` on transitions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["AutoscalePolicy", "ScaleEvent", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Tunable bands and bounds of the autoscaler state machine.

    ``slo_s`` is the latency objective the fleet is sized against;
    ``high_backlog``/``low_backlog`` are queued-requests-per-replica
    thresholds. Cooldowns and ``warmup_s`` are virtual seconds.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    interval_s: float = 0.5
    slo_s: float = 0.2
    high_backlog: float = 8.0
    low_backlog: float = 1.0
    down_slo_fraction: float = 0.5
    step: int = 1
    up_cooldown_s: float = 1.0
    down_cooldown_s: float = 2.0
    warmup_s: float = 0.5
    window: int = 64

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas {self.max_replicas} < min_replicas {self.min_replicas}"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")
        if self.low_backlog >= self.high_backlog:
            raise ValueError(
                f"low_backlog {self.low_backlog} must be < high_backlog "
                f"{self.high_backlog}"
            )
        if not 0 < self.down_slo_fraction <= 1:
            raise ValueError(
                f"down_slo_fraction must be in (0, 1], got {self.down_slo_fraction}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.up_cooldown_s < 0 or self.down_cooldown_s < 0:
            raise ValueError("cooldowns must be non-negative")
        if self.warmup_s < 0:
            raise ValueError(f"warmup_s must be non-negative, got {self.warmup_s}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action, for replayable scale timelines."""

    t_s: float
    action: str  # "up" | "down"
    n_replicas: int  # active replicas *after* the action
    backlog: float
    p99_s: float


class Autoscaler:
    """The control loop: policy + service factory + decision history.

    Parameters
    ----------
    policy:
        The :class:`AutoscalePolicy` bands/bounds.
    service_factory:
        Zero-arg callable returning the service model for each newly
        added replica (heterogeneous fleets pass a cycling factory).
    usd_per_hour:
        Price stamped on replicas this autoscaler adds (cost ledger).
    """

    def __init__(self, policy: AutoscalePolicy, service_factory, usd_per_hour: float = 0.0):
        self.policy = policy
        self.service_factory = service_factory
        self.usd_per_hour = usd_per_hour
        self.events: list[ScaleEvent] = []
        self._latencies: deque[float] = deque(maxlen=policy.window)
        self._next_eval_s = policy.interval_s
        self._last_up_s = float("-inf")
        self._last_action_s = float("-inf")

    def observe(self, latency_s: float) -> None:
        """Feed one terminal response latency into the p99 window."""
        self._latencies.append(latency_s)

    def next_eval_s(self) -> float:
        """Virtual time of the next scheduled evaluation tick."""
        return self._next_eval_s

    def window_p99_s(self) -> float:
        """p99 latency over the observation window (0 when empty).

        ``method="higher"`` keeps the statistic an observed latency
        (same rationale as :func:`repro.serve.server.latency_stats`).
        """
        if not self._latencies:
            return 0.0
        return float(
            np.percentile(np.array(self._latencies), 99, method="higher")
        )

    def tick(self, now_s: float, queue_depth: int, pool, telemetry) -> bool:
        """Run one evaluation if due; returns True when a tick fired.

        Mutates ``pool`` (add / begin_retire / reap) and publishes the
        autoscale gauges on ``telemetry``.
        """
        if now_s < self._next_eval_s:
            return False
        # One tick per interval, anchored to the policy grid so the
        # timeline is a pure function of the policy (never of how far
        # the event loop overshot the tick instant).
        p = self.policy
        while self._next_eval_s <= now_s:
            self._next_eval_s += p.interval_s
        pool.reap(now_s)
        n_active = pool.n_active
        backlog = queue_depth / max(1, n_active)
        p99_s = self.window_p99_s()
        desired = n_active

        if (backlog > p.high_backlog or p99_s > p.slo_s) and (
            now_s - self._last_up_s >= p.up_cooldown_s
        ):
            desired = min(p.max_replicas, n_active + p.step)
            for _ in range(desired - n_active):
                pool.add_replica(
                    self.service_factory(),
                    now_s,
                    warmup_s=p.warmup_s,
                    usd_per_hour=self.usd_per_hour,
                )
            if desired > n_active:
                self._last_up_s = now_s
                self._last_action_s = now_s
                telemetry.counter("serve.scale_up", desired - n_active)
                self.events.append(
                    ScaleEvent(now_s, "up", desired, backlog, p99_s)
                )
        elif (
            backlog < p.low_backlog
            and p99_s <= p.slo_s * p.down_slo_fraction
            and n_active > p.min_replicas
            and now_s - self._last_action_s >= p.down_cooldown_s
        ):
            if pool.begin_retire(now_s) is not None:
                desired = n_active - 1
                self._last_action_s = now_s
                telemetry.counter("serve.scale_down", 1)
                self.events.append(
                    ScaleEvent(now_s, "down", desired, backlog, p99_s)
                )
        pool.reap(now_s)
        telemetry.gauge("serve.replicas", pool.n_active)
        telemetry.gauge("serve.desired_replicas", desired)
        telemetry.gauge("serve.autoscale_backlog", backlog)
        telemetry.gauge("serve.autoscale_p99_ms", p99_s * 1e3)
        return True
