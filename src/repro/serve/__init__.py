"""Online inference serving for the frozen geospatial encoder.

The paper's downstream artifact (Section V) — a frozen MAE/ViT encoder
whose class-token features drive scene classification — is exactly what
a production geospatial service puts behind an endpoint. This package
makes that endpoint real *and testable*: a dynamic micro-batching queue
(:mod:`~repro.serve.batcher`), a bounded admission queue with
backpressure (:mod:`~repro.serve.queue`), a replica pool balanced by the
hardware cost model (:mod:`~repro.serve.replica`), a content-addressed
LRU feature cache (:mod:`~repro.serve.cache`), and the deterministic
event loop that runs them (:mod:`~repro.serve.server`) — all on virtual
time (:mod:`~repro.serve.clock`), so every concurrency behaviour is a
replayable function of the workload and seeds.

The open-loop production layer (PR 10) sits on top: seeded multi-tenant
traffic generation (:mod:`~repro.serve.traffic`), tenant-aware
admission with priorities, weighted fair queueing and token buckets
(:mod:`~repro.serve.admission`), SLO-driven fleet autoscaling
(:mod:`~repro.serve.autoscale`), and cost-aware capacity planning with
predicted-vs-measured reconciliation (:mod:`~repro.serve.planner`).

Quick start::

    from repro.serve import InferenceServer, VirtualClock

    clock = VirtualClock()
    server = InferenceServer(model, n_replicas=2, max_batch_size=16,
                             max_wait_s=0.002, cache_capacity=1024,
                             clock=clock)
    responses = server.run([(t, image) for t, image in workload])
"""

from repro.serve.admission import (
    AdmissionController,
    FairRequestQueue,
    TenantSpec,
    TokenBucket,
)
from repro.serve.autoscale import Autoscaler, AutoscalePolicy, ScaleEvent
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import LRUFeatureCache, image_digest
from repro.serve.clock import VirtualClock
from repro.serve.planner import (
    CapacityPlan,
    PlanReconciliation,
    ReconRow,
    ReplicaType,
    plan_capacity,
    reconcile_plan,
)
from repro.serve.queue import Request, RequestQueue, Response
from repro.serve.replica import (
    FixedServiceModel,
    Replica,
    ReplicaError,
    ReplicaFaultPlan,
    ReplicaFaultSpec,
    ReplicaPool,
    ServiceTimeModel,
)
from repro.serve.server import (
    InferenceServer,
    ServerStats,
    TenantCounts,
    latency_stats,
)
from repro.serve.traffic import (
    OpenLoopResult,
    RateProfile,
    SyntheticEncoder,
    TenantTraffic,
    TrafficEvent,
    generate_workload,
    run_open_loop,
    slo_attainment,
)

__all__ = [
    "VirtualClock",
    "Request",
    "Response",
    "RequestQueue",
    "MicroBatcher",
    "LRUFeatureCache",
    "image_digest",
    "ServiceTimeModel",
    "FixedServiceModel",
    "Replica",
    "ReplicaPool",
    "ReplicaError",
    "ReplicaFaultSpec",
    "ReplicaFaultPlan",
    "InferenceServer",
    "ServerStats",
    "TenantCounts",
    "latency_stats",
    "TenantSpec",
    "TokenBucket",
    "FairRequestQueue",
    "AdmissionController",
    "AutoscalePolicy",
    "ScaleEvent",
    "Autoscaler",
    "RateProfile",
    "TenantTraffic",
    "TrafficEvent",
    "SyntheticEncoder",
    "generate_workload",
    "slo_attainment",
    "OpenLoopResult",
    "run_open_loop",
    "ReplicaType",
    "CapacityPlan",
    "plan_capacity",
    "ReconRow",
    "PlanReconciliation",
    "reconcile_plan",
]
