"""Online inference serving for the frozen geospatial encoder.

The paper's downstream artifact (Section V) — a frozen MAE/ViT encoder
whose class-token features drive scene classification — is exactly what
a production geospatial service puts behind an endpoint. This package
makes that endpoint real *and testable*: a dynamic micro-batching queue
(:mod:`~repro.serve.batcher`), a bounded admission queue with
backpressure (:mod:`~repro.serve.queue`), a replica pool balanced by the
hardware cost model (:mod:`~repro.serve.replica`), a content-addressed
LRU feature cache (:mod:`~repro.serve.cache`), and the deterministic
event loop that runs them (:mod:`~repro.serve.server`) — all on virtual
time (:mod:`~repro.serve.clock`), so every concurrency behaviour is a
replayable function of the workload and seeds.

Quick start::

    from repro.serve import InferenceServer, VirtualClock

    clock = VirtualClock()
    server = InferenceServer(model, n_replicas=2, max_batch_size=16,
                             max_wait_s=0.002, cache_capacity=1024,
                             clock=clock)
    responses = server.run([(t, image) for t, image in workload])
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cache import LRUFeatureCache, image_digest
from repro.serve.clock import VirtualClock
from repro.serve.queue import Request, RequestQueue, Response
from repro.serve.replica import (
    FixedServiceModel,
    Replica,
    ReplicaError,
    ReplicaFaultPlan,
    ReplicaFaultSpec,
    ReplicaPool,
    ServiceTimeModel,
)
from repro.serve.server import InferenceServer, ServerStats, latency_stats

__all__ = [
    "VirtualClock",
    "Request",
    "Response",
    "RequestQueue",
    "MicroBatcher",
    "LRUFeatureCache",
    "image_digest",
    "ServiceTimeModel",
    "FixedServiceModel",
    "Replica",
    "ReplicaPool",
    "ReplicaError",
    "ReplicaFaultSpec",
    "ReplicaFaultPlan",
    "InferenceServer",
    "ServerStats",
    "latency_stats",
]
