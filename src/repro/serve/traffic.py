"""Seeded open-loop synthetic traffic: the load side of the serving story.

The ROADMAP's north star is a service carrying "heavy traffic from
millions of users". Users at that scale are never simulated one by one
— what reaches the fleet is an *aggregate arrival process*, so that is
what this module generates: seeded, open-loop (arrivals never wait for
completions) request streams on the existing
:class:`~repro.serve.clock.VirtualClock`, scaling to millions of
virtual users in O(1) memory because only the aggregate rate — not the
user population — is materialized.

Three composable ingredients per tenant:

- **inter-arrival process** — ``"poisson"`` (memoryless, the classic
  open-loop model) or ``"pareto"`` (heavy-tailed: bursts and long gaps,
  the self-similar traffic shape measured on real request logs).
  Non-homogeneous rates use Lewis thinning for Poisson and local rate
  scaling for Pareto, both exact under a fixed seed.
- **rate profile** — ``rate_at(t)`` composes a base rate (optionally
  ``virtual_users × rate_per_user``), a sinusoidal *diurnal* cycle, and
  a *flash crowd* (linear ramp to ``flash_magnitude×``, hold, ramp
  down) — the three regimes an autoscaler must survive.
- **request mix** — each tenant draws from its own image pool of
  ``working_set`` distinct images (Zipf-like popularity via uniform
  draws over a small pool), so cache behaviour is tenant-dependent, and
  stamps its deadline/priority on every request.

:func:`generate_workload` merges the per-tenant streams into one
time-ordered event list with a deterministic tie-break, and
:func:`run_open_loop` drives an :class:`~repro.serve.server.InferenceServer`
with it, returning the :class:`OpenLoopResult` ledger (per-tenant
verdicts, SLO attainment, measured fleet cost) that the capacity
planner reconciles against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.serve.admission import TenantSpec
from repro.serve.queue import Response

__all__ = [
    "ARRIVAL_PROCESSES",
    "RateProfile",
    "TenantTraffic",
    "TrafficEvent",
    "SyntheticEncoder",
    "generate_workload",
    "slo_attainment",
    "OpenLoopResult",
    "run_open_loop",
]

#: Supported inter-arrival processes.
ARRIVAL_PROCESSES = ("poisson", "pareto")


@dataclass(frozen=True)
class RateProfile:
    """Time-varying offered rate (requests per virtual second).

    ``rate_at(t) = base · diurnal(t) · flash(t)`` with

    - ``diurnal(t) = 1 + diurnal_amplitude · sin(2πt / diurnal_period_s)``
    - ``flash(t)``: 1 outside the flash window; ramps linearly to
      ``flash_magnitude`` over ``flash_ramp_s`` starting at
      ``flash_at_s``, holds for ``flash_hold_s``, ramps back down.

    ``base_rate_ips`` may be given directly or as
    ``virtual_users × rate_per_user`` — a million light users is just a
    number here, which is exactly the point.
    """

    base_rate_ips: float = 0.0
    virtual_users: int = 0
    rate_per_user_ips: float = 0.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 86_400.0
    flash_at_s: float | None = None
    flash_magnitude: float = 1.0
    flash_ramp_s: float = 1.0
    flash_hold_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_ips < 0:
            raise ValueError(f"base_rate_ips must be >= 0, got {self.base_rate_ips}")
        if self.virtual_users < 0 or self.rate_per_user_ips < 0:
            raise ValueError("virtual_users and rate_per_user_ips must be >= 0")
        if self.base_rate() <= 0:
            raise ValueError(
                "profile needs a positive rate: set base_rate_ips or "
                "virtual_users × rate_per_user_ips"
            )
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.diurnal_period_s <= 0:
            raise ValueError(
                f"diurnal_period_s must be positive, got {self.diurnal_period_s}"
            )
        if self.flash_magnitude < 1.0:
            raise ValueError(
                f"flash_magnitude must be >= 1, got {self.flash_magnitude}"
            )
        if self.flash_ramp_s <= 0 or self.flash_hold_s < 0:
            raise ValueError("flash_ramp_s must be > 0 and flash_hold_s >= 0")

    def base_rate(self) -> float:
        """The un-modulated aggregate rate (requests/s)."""
        return self.base_rate_ips + self.virtual_users * self.rate_per_user_ips

    def _flash_factor(self, t_s: float) -> float:
        if self.flash_at_s is None or t_s < self.flash_at_s:
            return 1.0
        dt = t_s - self.flash_at_s
        up, hold = self.flash_ramp_s, self.flash_hold_s
        if dt < up:  # ramping up
            return 1.0 + (self.flash_magnitude - 1.0) * dt / up
        if dt < up + hold:  # holding
            return self.flash_magnitude
        if dt < up + hold + up:  # ramping down
            return self.flash_magnitude - (self.flash_magnitude - 1.0) * (
                dt - up - hold
            ) / up
        return 1.0

    def rate_at(self, t_s: float) -> float:
        """Instantaneous offered rate at virtual time ``t_s``."""
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * t_s / self.diurnal_period_s
        )
        return self.base_rate() * diurnal * self._flash_factor(t_s)

    def max_rate(self) -> float:
        """Tight upper bound on ``rate_at`` (the thinning majorant, and
        the peak the capacity planner provisions for)."""
        return (
            self.base_rate()
            * (1.0 + self.diurnal_amplitude)
            * (self.flash_magnitude if self.flash_at_s is not None else 1.0)
        )

    def mean_rate(self, horizon_s: float, samples: int = 512) -> float:
        """Mean offered rate over ``[0, horizon_s]`` (trapezoidal)."""
        ts = np.linspace(0.0, horizon_s, samples)
        rates = np.array([self.rate_at(float(t)) for t in ts])
        return float(np.trapezoid(rates, ts) / horizon_s)


@dataclass(frozen=True)
class TenantTraffic:
    """One tenant's open-loop stream: who, how fast, and what they ask.

    ``deadline_s`` is a *relative* per-request deadline (None =
    best-effort); ``working_set`` is the number of distinct images the
    tenant's requests draw from (its cache locality); ``image_shape``
    is the per-request image shape (C, H, W).
    """

    spec: TenantSpec
    profile: RateProfile
    process: str = "poisson"
    pareto_alpha: float = 1.5
    deadline_s: float | None = None
    working_set: int = 8
    image_shape: tuple = (1, 4, 4)

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown process {self.process!r}; expected one of "
                f"{ARRIVAL_PROCESSES}"
            )
        if self.pareto_alpha <= 1.0:
            raise ValueError(
                f"pareto_alpha must be > 1 (finite mean), got {self.pareto_alpha}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.working_set < 1:
            raise ValueError(f"working_set must be >= 1, got {self.working_set}")
        if len(self.image_shape) != 3:
            raise ValueError(f"image_shape must be (C, H, W), got {self.image_shape}")


@dataclass(frozen=True)
class TrafficEvent:
    """One generated arrival: when, who, what, and by-when."""

    t_s: float
    tenant: str
    image: np.ndarray = field(compare=False)
    deadline_s: float | None = None


class SyntheticEncoder:
    """Deterministic row-independent toy encoder for traffic studies.

    Open-loop scheduling experiments are about *time*, not features;
    this encoder keeps them fast while preserving the contract the
    serving numerics rely on (each output row is a pure function of its
    own image, so features are schedule-independent). Width-4 rows:
    sum / min / max / mean of the image.
    """

    width = 4

    def encode_features(self, images: np.ndarray) -> np.ndarray:
        """Per-row reductions of each image: shape ``(B, 4)``."""
        flat = images.reshape(images.shape[0], -1)
        return np.stack(
            [flat.sum(axis=1), flat.min(axis=1), flat.max(axis=1), flat.mean(axis=1)],
            axis=1,
        )


def _tenant_arrivals(
    traffic: TenantTraffic, horizon_s: float, rng: np.random.Generator
) -> list[float]:
    """Arrival instants of one tenant over ``[0, horizon_s)``."""
    profile = traffic.profile
    out: list[float] = []
    t = 0.0
    if traffic.process == "poisson":
        # Lewis thinning against the analytic majorant: exact
        # non-homogeneous Poisson, deterministic under the rng.
        majorant = profile.max_rate()
        while True:
            t += rng.exponential(1.0 / majorant)
            if t >= horizon_s:
                break
            if rng.random() <= profile.rate_at(t) / majorant:
                out.append(t)
    else:  # pareto
        # Heavy-tailed renewal process: each gap is Pareto with mean
        # 1/rate(t), so the local intensity tracks the profile while
        # the tail stays power-law (bursts + long silences).
        alpha = traffic.pareto_alpha
        mean_unit = alpha / (alpha - 1.0)  # mean of (1 + Lomax(alpha))
        while True:
            gap_unit = 1.0 + rng.pareto(alpha)
            rate = profile.rate_at(t)
            t += gap_unit / (mean_unit * rate)
            if t >= horizon_s:
                break
            out.append(t)
    return out


def generate_workload(
    traffics: list[TenantTraffic] | tuple,
    horizon_s: float,
    seed: int,
    start_s: float = 0.0,
) -> list[TrafficEvent]:
    """Merge every tenant's seeded stream into one time-ordered workload.

    Each tenant draws from its own child generator of ``seed`` (streams
    are independent and per-tenant reproducible); the merge tie-breaks
    on (time, tenant position, sequence), so the full workload — images
    and deadlines included — is a pure function of (traffics, horizon,
    seed). ``start_s`` shifts all arrivals (e.g. onto a clock that has
    already advanced).
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    names = [tr.spec.name for tr in traffics]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in traffics: {names}")
    root = np.random.default_rng(seed)
    children = root.spawn(len(list(traffics)))
    events: list[tuple[float, int, int, TrafficEvent]] = []
    for ti, (traffic, rng) in enumerate(zip(traffics, children)):
        shape = (traffic.working_set, *traffic.image_shape)
        # One small pool per tenant; requests hold views, so a
        # million-request workload stores working_set images, not a
        # million.
        pool = rng.standard_normal(shape)
        for si, t in enumerate(_tenant_arrivals(traffic, horizon_s, rng)):
            image = pool[int(rng.integers(traffic.working_set))]
            deadline = (
                start_s + t + traffic.deadline_s
                if traffic.deadline_s is not None
                else None
            )
            events.append(
                (
                    start_s + t,
                    ti,
                    si,
                    TrafficEvent(
                        t_s=start_s + t,
                        tenant=traffic.spec.name,
                        image=image,
                        deadline_s=deadline,
                    ),
                )
            )
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return [e[3] for e in events]


def slo_attainment(
    responses: list[Response], slo_s: float, tenant: str | None = None
) -> float:
    """Fraction of requests served ``ok`` within ``slo_s`` of arrival.

    Rejections and timeouts count against attainment (the user saw a
    failure); an empty response set attains vacuously (1.0).
    """
    if slo_s <= 0:
        raise ValueError(f"slo_s must be positive, got {slo_s}")
    pool = [r for r in responses if tenant is None or r.tenant == tenant]
    if not pool:
        return 1.0
    good = sum(1 for r in pool if r.status == "ok" and r.latency_s <= slo_s)
    return good / len(pool)


@dataclass(frozen=True)
class OpenLoopResult:
    """Ledger of one open-loop run (what the planner reconciles)."""

    responses: list[Response]
    horizon_s: float
    offered: int
    served: int
    rejected: int
    timed_out: int
    slo_s: float
    attainment: float
    attainment_by_tenant: dict
    measured_cost_usd: float
    mean_replicas: float
    max_replicas: int
    scale_events: int

    @property
    def admitted_attainment(self) -> float:
        """Attainment over requests the admission policy let through.

        Rate-limited door rejections are the token bucket doing its
        job, not the fleet failing; capacity reconciliation scores the
        fleet on the traffic it was actually sized for. Queue-full
        rejections and timeouts still count against it.
        """
        admitted = [r for r in self.responses if r.reason != "rate_limited"]
        return slo_attainment(admitted, self.slo_s)

    @property
    def measured_cost_per_hour(self) -> float:
        """Measured fleet spend normalized to one hour of virtual time."""
        if self.horizon_s <= 0:
            return 0.0
        return self.measured_cost_usd * 3600.0 / self.horizon_s

    @property
    def served_rate_ips(self) -> float:
        """Delivered throughput over the horizon (requests/s, virtual)."""
        return self.served / self.horizon_s if self.horizon_s > 0 else 0.0


def run_open_loop(
    server,
    traffics: list[TenantTraffic] | tuple,
    horizon_s: float,
    seed: int,
    slo_s: float,
) -> OpenLoopResult:
    """Generate a seeded workload, serve it to completion, and settle
    the books.

    ``server`` is an :class:`~repro.serve.server.InferenceServer`
    (optionally with admission and an autoscaler attached). The run is
    open-loop: arrivals are fixed up front and never react to the
    server. Returns the :class:`OpenLoopResult` ledger; the cost column
    reads the replica pool's priced active time at the drained clock.
    """
    events = generate_workload(traffics, horizon_s, seed, start_s=server.clock.now())
    responses = server.run_traffic(events)
    end_s = max(server.clock.now(), horizon_s)
    by_tenant = {
        tr.spec.name: slo_attainment(responses, slo_s, tenant=tr.spec.name)
        for tr in traffics
    }
    # Verdict counts come from this run's responses, not the server's
    # cumulative ledger, so reusing a server across runs stays honest.
    n_ok = sum(1 for r in responses if r.status == "ok")
    n_rej = sum(1 for r in responses if r.status == "rejected")
    n_to = sum(1 for r in responses if r.status == "timeout")
    autoscaler = getattr(server, "autoscaler", None)
    pool = server.pool
    # Mean fleet size over the horizon from priced-or-not active time.
    everyone = list(pool.replicas) + list(pool.retired)
    active_s = sum(r.active_seconds(end_s) for r in everyone)
    return OpenLoopResult(
        responses=responses,
        horizon_s=end_s,
        offered=len(events),
        served=n_ok,
        rejected=n_rej,
        timed_out=n_to,
        slo_s=slo_s,
        attainment=slo_attainment(responses, slo_s),
        attainment_by_tenant=by_tenant,
        measured_cost_usd=pool.fleet_cost_usd(end_s),
        mean_replicas=active_s / end_s if end_s > 0 else 0.0,
        max_replicas=len(everyone),
        scale_events=len(autoscaler.events) if autoscaler is not None else 0,
    )
