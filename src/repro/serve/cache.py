"""Content-addressed LRU cache of encoder features.

The frozen encoder is a pure function of its input image, so its output
is perfectly cacheable: two requests carrying byte-identical images are
guaranteed byte-identical features. Geospatial serving traffic makes
this pay off — popular tiles (cities, coastlines, basemap zoom levels)
are requested over and over, and a hit skips the entire ViT forward.

Keys are content digests (SHA-256 over dtype, shape, and raw bytes), so
caching is invisible to numerics by construction: a hit returns a copy
of exactly the array a miss would have computed. Eviction is
least-recently-*used* (hits refresh recency), capacity is counted in
entries, and hit/miss counts are kept on the cache itself so the server
can export a hit-rate without reaching into telemetry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

__all__ = ["image_digest", "LRUFeatureCache"]


def image_digest(image: np.ndarray) -> str:
    """SHA-256 content digest of an array (dtype + shape + raw bytes).

    Dtype and shape are folded in so e.g. a float32 and float64 encoding
    of the same pixels — which produce different features — never
    collide on one key.
    """
    h = hashlib.sha256()
    h.update(str(image.dtype).encode())
    h.update(str(image.shape).encode())
    h.update(np.ascontiguousarray(image).tobytes())
    return h.hexdigest()


class LRUFeatureCache:
    """Bounded mapping ``digest -> feature row`` with LRU eviction."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, digest: str) -> bool:
        return digest in self._items

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, digest: str) -> np.ndarray | None:
        """Cached features for ``digest`` (a defensive copy), else None.

        A hit refreshes the entry's recency; both outcomes are counted.
        """
        row = self._items.get(digest)
        if row is None:
            self.misses += 1
            return None
        self._items.move_to_end(digest)
        self.hits += 1
        return row.copy()

    def put(self, digest: str, features: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry if full."""
        if digest in self._items:
            self._items.move_to_end(digest)
            return
        if len(self._items) >= self.capacity:
            self._items.popitem(last=False)
        self._items[digest] = features.copy()
