"""The online inference server: one deterministic discrete-event loop.

:class:`InferenceServer` turns a frozen encoder into a load-servable
model by composing the pieces of this package around a single event
loop on virtual time:

- **admission** — :meth:`InferenceServer.submit` stamps the request with
  the clock, consults the :class:`~repro.serve.cache.LRUFeatureCache`
  (a hit is served instantly, skipping the encoder entirely), and pushes
  into the bounded :class:`~repro.serve.queue.RequestQueue`; a full
  queue rejects at the door (backpressure);
- **batching** — the :class:`~repro.serve.batcher.MicroBatcher` closes a
  batch at ``max_batch_size`` requests or ``max_wait_s`` of head-of-line
  age, whichever first;
- **dispatch** — the :class:`~repro.serve.replica.ReplicaPool` runs the
  real NumPy forward on the least-loaded replica, occupying it for a
  service window estimated by the hardware cost model;
- **delivery** — completions land back on the loop; requests whose
  deadline passed get ``timeout`` verdicts, replica faults trigger
  requeue-once-then-fail.

The loop processes one event per iteration in a fixed priority order
(completions, then arrivals, then autoscale ticks, then dispatch, then
expiry sweeps), so the entire schedule — every batch composition, every
latency, every verdict — is a pure function of (workload,
configuration). Numerics are schedule-independent by construction:
whatever batches the policy forms, the delivered features are
bit-identical to :func:`repro.eval.features.extract_features` on the
same images (tested in ``tests/test_serve``).

Multi-tenant serving (PR 10): an optional
:class:`~repro.serve.admission.AdmissionController` puts per-tenant
token buckets and a priority/weighted-fair queue in front of the
batcher, and an optional :class:`~repro.serve.autoscale.Autoscaler`
resizes the replica pool from queue-depth/p99 telemetry between
events. Without either, behaviour is byte-identical to the PR 5
single-tenant server (pinned by the differential suite).

Telemetry: with a bus attached (ideally sharing the server's virtual
clock), the loop publishes ``serve.queue_depth``/``serve.batch_size``
gauges, ``serve.batch``/``serve.infer`` spans, and
``serve.submitted``/``serve.served``/``serve.rejected``/``serve.timeout``
/``serve.cache_hit``/``serve.cache_miss``/``serve.requeued``/
``serve.replica_fault`` counters that reconcile exactly:
``submitted == served + rejected + timed out`` — in aggregate and,
via the ``tenant=`` attribute, per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import GemmPool
from repro.hardware.gpu import GpuSpec
from repro.serve.admission import AdmissionController
from repro.serve.autoscale import Autoscaler
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import LRUFeatureCache, image_digest
from repro.serve.clock import VirtualClock
from repro.serve.queue import Request, RequestQueue, Response
from repro.serve.replica import (
    Replica,
    ReplicaError,
    ReplicaFaultPlan,
    ReplicaPool,
    ServiceTimeModel,
)
from repro.telemetry import NULL_BUS, TelemetryBus

__all__ = ["TenantCounts", "ServerStats", "InferenceServer", "latency_stats"]


@dataclass
class TenantCounts:
    """Per-tenant slice of the conservation ledger."""

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    timed_out: int = 0

    def reconciles(self) -> bool:
        """True iff submitted == served + rejected + timed_out."""
        return self.submitted == self.served + self.rejected + self.timed_out

    def to_json(self) -> dict:
        """The counters as one flat JSON-ready dict."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
        }


@dataclass
class ServerStats:
    """Authoritative serving counters (telemetry mirrors these).

    Every admitted request ends in exactly one of ``served``,
    ``rejected_queue_full``, ``rejected_replica_failure``, or
    ``timed_out`` — :meth:`reconciles` is the conservation law the chaos
    suite asserts under fault injection.
    """

    submitted: int = 0
    served: int = 0
    rejected_queue_full: int = 0
    rejected_replica_failure: int = 0
    rejected_rate_limited: int = 0
    timed_out: int = 0
    requeued: int = 0
    replica_faults: int = 0
    batches: int = 0
    batched_images: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    tenants: dict = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        """Total rejections (backpressure + rate limits + post-retry
        replica failures)."""
        return (
            self.rejected_queue_full
            + self.rejected_replica_failure
            + self.rejected_rate_limited
        )

    def tenant(self, name: str) -> TenantCounts:
        """The (auto-created) per-tenant ledger slice for ``name``."""
        counts = self.tenants.get(name)
        if counts is None:
            counts = self.tenants[name] = TenantCounts()
        return counts

    def reconciles(self) -> bool:
        """True iff submitted == served + rejected + timed_out, both in
        aggregate and within every tenant's slice."""
        return self.submitted == self.served + self.rejected + self.timed_out and all(
            t.reconciles() for t in self.tenants.values()
        )

    def to_json(self) -> dict:
        """All counters as one flat JSON-ready dict (plus tenant slices)."""
        out = {
            "submitted": self.submitted,
            "served": self.served,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_replica_failure": self.rejected_replica_failure,
            "rejected_rate_limited": self.rejected_rate_limited,
            "timed_out": self.timed_out,
            "requeued": self.requeued,
            "replica_faults": self.replica_faults,
            "batches": self.batches,
            "batched_images": self.batched_images,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        if self.tenants:
            out["tenants"] = {
                name: t.to_json() for name, t in sorted(self.tenants.items())
            }
        return out


@dataclass
class _Inflight:
    """One dispatched batch awaiting its virtual completion instant."""

    finish_s: float
    batch_id: int
    replica: Replica
    requests: list[Request]
    dispatch_s: float
    service_s: float
    features: np.ndarray | None = None
    error: ReplicaError | None = None
    attrs: dict = field(default_factory=dict)


class InferenceServer:
    """Deterministic online serving of a frozen encoder.

    Parameters
    ----------
    model:
        Anything with ``encode_features(images) -> (B, W)`` — the frozen
        MAE/ViT encoder (optionally wrapped with a probe head upstream).
    services:
        One service-time model per replica (heterogeneous pools allowed).
        When omitted, ``n_replicas`` copies of a
        :class:`~repro.serve.replica.ServiceTimeModel` are built from
        ``model.cfg.encoder`` and ``gpu``.
    n_replicas, gpu:
        Pool size and GCD spec for the default service models
        (``gpu=None`` uses the Frontier MI250X GCD defaults).
    max_batch_size, max_wait_s:
        The micro-batcher's close-on-size / close-on-age knobs.
    queue_capacity:
        Bound of the admission queue (backpressure point).
    cache_capacity:
        LRU feature-cache entries; ``0`` disables caching.
    stall_timeout_s:
        Watchdog: virtual seconds after which a stalled replica's batch
        is declared failed.
    clock:
        The virtual clock; supply your own to share it with a telemetry
        bus (``TelemetryBus(sink, clock=clock.now)``).
    telemetry:
        Bus for gauges/spans/counters; defaults to the disabled bus.
    fault_plan:
        Deterministic replica-fault schedule for chaos testing.
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`:
        per-tenant token buckets in front of a priority/weighted-fair
        queue. When given, the server runs on the controller's
        :class:`~repro.serve.admission.FairRequestQueue` (its capacity
        wins; ``queue_capacity`` is ignored). ``None`` keeps the plain
        single-tenant FIFO — byte-identical to the pre-admission
        server.
    autoscaler:
        Optional :class:`~repro.serve.autoscale.Autoscaler` that
        grows/shrinks the replica pool between events from queue-depth
        and windowed-p99 telemetry. ``None`` keeps the fixed fleet.
    replica_prices:
        Optional per-replica USD/hour aligned with ``services`` (the
        capacity planner's :meth:`~repro.serve.planner.CapacityPlan.prices`),
        feeding the pool's measured-cost ledger. ``None`` prices the
        initial fleet at zero.
    intra_op_threads:
        Threads for the encoder's blocked GEMMs (shared across replicas
        via one :class:`~repro.backend.GemmPool`). ``1`` (default) keeps
        the serial kernels. Thread count is part of the numerical
        configuration: delivered features are bit-identical to
        ``extract_features`` on a model threaded with the same count.
        Call :meth:`close` when done to release the pool's threads.
    """

    def __init__(
        self,
        model,
        *,
        services: list | None = None,
        n_replicas: int = 1,
        gpu: GpuSpec | None = None,
        max_batch_size: int = 8,
        max_wait_s: float = 0.0,
        queue_capacity: int = 64,
        cache_capacity: int = 0,
        stall_timeout_s: float = 1.0,
        clock: VirtualClock | None = None,
        telemetry: TelemetryBus | None = None,
        fault_plan: ReplicaFaultPlan | None = None,
        intra_op_threads: int = 1,
        admission: AdmissionController | None = None,
        autoscaler: Autoscaler | None = None,
        replica_prices: list | None = None,
    ):
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if intra_op_threads < 1:
            raise ValueError(
                f"intra_op_threads must be >= 1, got {intra_op_threads}"
            )
        if stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be positive, got {stall_timeout_s}"
            )
        if services is None:
            try:
                encoder_cfg = model.cfg.encoder
            except AttributeError as err:
                raise ValueError(
                    "model has no .cfg.encoder; pass explicit per-replica "
                    "`services` (e.g. FixedServiceModel) instead"
                ) from err
            services = [
                ServiceTimeModel(encoder_cfg, gpu if gpu is not None else GpuSpec())
            ] * n_replicas
        self.clock = clock if clock is not None else VirtualClock()
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self.batcher = MicroBatcher(max_batch_size, max_wait_s)
        self.admission = admission
        self.queue = (
            admission.queue if admission is not None else RequestQueue(queue_capacity)
        )
        self.autoscaler = autoscaler
        self.pool = ReplicaPool(model, services, prices=replica_prices)
        # All replicas share the model object and the event loop is
        # single-threaded, so one GEMM pool threads every replica's
        # encoder. Thread count is part of the numerical configuration
        # (see repro.backend.threads): features stay bit-identical to
        # extract_features on a model using the same pool size.
        self.gemm_pool = (
            GemmPool(intra_op_threads) if intra_op_threads > 1 else None
        )
        if self.gemm_pool is not None:
            try:
                model.use_gemm_pool(self.gemm_pool)
            except AttributeError as err:
                raise ValueError(
                    "intra_op_threads > 1 needs a model with use_gemm_pool "
                    "(a repro Module encoder); got "
                    f"{type(model).__name__}"
                ) from err
        self.cache = LRUFeatureCache(cache_capacity) if cache_capacity else None
        self.stall_timeout_s = stall_timeout_s
        self.fault_plan = fault_plan
        self.stats = ServerStats()
        self.responses: list[Response] = []
        self._by_id: dict[int, Response] = {}
        self._inflight: list[_Inflight] = []
        self._next_req_id = 0
        self._next_batch_id = 0

    def close(self) -> None:
        """Release the GEMM thread pool (if any). Idempotent; the server
        keeps working afterwards — the pool lazily restarts on use."""
        if self.gemm_pool is not None:
            self.gemm_pool.close()

    # -- admission -----------------------------------------------------------

    def _tenant_attrs(self, tenant: str) -> dict:
        """Counter attrs for one tenant (empty on the anonymous path,
        keeping single-tenant event streams byte-stable)."""
        return {"tenant": tenant} if tenant else {}

    def submit(
        self,
        image: np.ndarray,
        deadline_s: float | None = None,
        tenant: str = "",
    ) -> int:
        """Admit one image at the current virtual time; returns its req_id.

        The verdict may be immediate (rate-limited or full queue ->
        ``rejected``; cache hit -> ``ok``); otherwise the request waits
        for the batcher. ``deadline_s`` is an *absolute* virtual time;
        ``tenant`` selects the admission lane (priority, weight, rate
        limit) when an :class:`AdmissionController` is attached.
        """
        if image.ndim != 3:
            raise ValueError(f"image must be (C, H, W), got {image.shape}")
        now = self.clock.now()
        if deadline_s is not None and deadline_s < now:
            raise ValueError(
                f"deadline {deadline_s} is already past (now={now})"
            )
        req_id = self._next_req_id
        self._next_req_id += 1
        self.stats.submitted += 1
        self.stats.tenant(tenant).submitted += 1
        tattrs = self._tenant_attrs(tenant)
        self.telemetry.counter("serve.submitted", **tattrs)
        priority = 0
        if self.admission is not None:
            priority = self.admission.priority_of(tenant)
            reason = self.admission.admit_reason(tenant, now)
            if reason is not None:
                self.stats.rejected_rate_limited += 1
                self.stats.tenant(tenant).rejected += 1
                self.telemetry.counter("serve.rejected", reason=reason, **tattrs)
                self._finish(
                    Response(
                        req_id=req_id,
                        status="rejected",
                        arrival_s=now,
                        done_s=now,
                        reason=reason,
                        tenant=tenant,
                    )
                )
                return req_id
        digest = ""
        if self.cache is not None:
            digest = image_digest(image)
            row = self.cache.get(digest)
            if row is not None:
                self.stats.cache_hits += 1
                self.telemetry.counter("serve.cache_hit", **tattrs)
                self.stats.served += 1
                self.stats.tenant(tenant).served += 1
                self.telemetry.counter("serve.served", **tattrs)
                self._finish(
                    Response(
                        req_id=req_id,
                        status="ok",
                        arrival_s=now,
                        done_s=now,
                        features=row,
                        cache_hit=True,
                        tenant=tenant,
                    )
                )
                return req_id
            self.stats.cache_misses += 1
            self.telemetry.counter("serve.cache_miss", **tattrs)
        request = Request(
            req_id=req_id,
            image=image,
            arrival_s=now,
            deadline_s=deadline_s,
            digest=digest,
            tenant=tenant,
            priority=priority,
        )
        if not self.queue.push(request):
            self.stats.rejected_queue_full += 1
            self.stats.tenant(tenant).rejected += 1
            self.telemetry.counter("serve.rejected", reason="queue_full", **tattrs)
            self._finish(
                Response(
                    req_id=req_id,
                    status="rejected",
                    arrival_s=now,
                    done_s=now,
                    reason="queue_full",
                    tenant=tenant,
                )
            )
            return req_id
        self.telemetry.gauge("serve.queue_depth", len(self.queue))
        return req_id

    # -- the event loop ------------------------------------------------------

    def run(self, workload) -> list[Response]:
        """Serve a timed workload to completion; returns its responses.

        ``workload`` is a sequence of ``(arrival_s, image)``,
        ``(arrival_s, image, deadline_s)``, or
        ``(arrival_s, image, deadline_s, tenant)`` tuples with
        non-decreasing arrival times (absolute virtual seconds, not
        before the clock's current time). The loop drains everything —
        queue and in-flight batches included — and returns this
        workload's responses sorted by request id.
        """
        arrivals = []
        for item in workload:
            if len(item) == 2:
                t, image, deadline, tenant = *item, None, ""
            elif len(item) == 3:
                t, image, deadline, tenant = *item, ""
            else:
                t, image, deadline, tenant = item
            arrivals.append((float(t), image, deadline, tenant))
        for (t0, *_), (t1, *_) in zip(arrivals, arrivals[1:]):
            if t1 < t0:
                raise ValueError(f"arrival times must be non-decreasing ({t1} < {t0})")
        if arrivals and arrivals[0][0] < self.clock.now():
            raise ValueError(
                f"first arrival {arrivals[0][0]} is before now ({self.clock.now()})"
            )
        first_new = len(self.responses)
        self._loop(arrivals)
        return sorted(self.responses[first_new:], key=lambda r: r.req_id)

    def run_traffic(self, events) -> list[Response]:
        """Serve a generated open-loop workload to completion.

        ``events`` is a time-ordered list of
        :class:`~repro.serve.traffic.TrafficEvent` (the output of
        :func:`~repro.serve.traffic.generate_workload`); each event's
        tenant rides into :meth:`submit`, so admission and the per-tenant
        ledger see the same stream the generator drew.
        """
        return self.run(
            [(ev.t_s, ev.image, ev.deadline_s, ev.tenant) for ev in events]
        )

    def drain(self) -> list[Response]:
        """Run the loop with no new arrivals until queue and replicas are idle."""
        first_new = len(self.responses)
        self._loop([])
        return sorted(self.responses[first_new:], key=lambda r: r.req_id)

    def response_for(self, req_id: int) -> Response | None:
        """The terminal response of ``req_id``, or None while undecided."""
        return self._by_id.get(req_id)

    def _loop(self, arrivals: list[tuple]) -> None:
        i = 0
        while i < len(arrivals) or len(self.queue) or self._inflight:
            now = self.clock.now()
            t_arr = arrivals[i][0] if i < len(arrivals) else None
            t = self._next_event_s(t_arr, now)
            self.clock.advance_to(t)
            if self._deliver_due(t):
                continue
            if t_arr is not None and t_arr <= t:
                _, image, deadline, tenant = arrivals[i]
                i += 1
                self.submit(image, deadline_s=deadline, tenant=tenant)
                continue
            if self.autoscaler is not None and self.autoscaler.tick(
                t, len(self.queue), self.pool, self.telemetry
            ):
                continue
            if self._dispatch_due(t):
                continue
            if not self._sweep_expired(t):
                raise RuntimeError(
                    f"serving loop made no progress at t={t} "
                    f"(queue={len(self.queue)}, inflight={len(self._inflight)})"
                )

    def _next_event_s(self, next_arrival_s: float | None, now: float) -> float:
        """Earliest instant any event category can fire."""
        candidates = []
        if next_arrival_s is not None:
            candidates.append(next_arrival_s)
        if self._inflight:
            candidates.append(min(b.finish_s for b in self._inflight))
        ready = self.batcher.ready_at(self.queue, now)
        if ready is not None:
            candidates.append(max(ready, self.pool.earliest_free_s(now)))
        deadline = self.queue.min_deadline_s()
        if deadline is not None:
            candidates.append(max(deadline, now))
        if self.autoscaler is not None:
            # Ticks only matter while the loop is live; the loop exits
            # (and ticking stops) once queue, arrivals and flight are
            # all drained.
            candidates.append(max(self.autoscaler.next_eval_s(), now))
        return min(candidates)

    # -- event handlers ------------------------------------------------------

    def _dispatch_due(self, now: float) -> bool:
        """Close and dispatch one batch if the policy and a replica allow."""
        ready = self.batcher.ready_at(self.queue, now)
        if ready is None or ready > now:
            return False
        if self.pool.earliest_free_s(now) > now:
            return False
        # Expired requests must not burn a replica window: time them out
        # before the batch forms.
        self._sweep_expired(now)
        batch = self.batcher.take(self.queue)
        self.telemetry.gauge("serve.queue_depth", len(self.queue))
        if not batch:
            return True  # the sweep consumed the event
        replica = self.pool.select(now, len(batch))
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self.stats.batches += 1
        self.stats.batched_images += len(batch)
        self.telemetry.gauge(
            "serve.batch_size", len(batch), replica=replica.replica_id
        )
        fault = None
        if self.fault_plan is not None:
            fault = self.fault_plan.consult(replica.replica_id, replica.dispatches)
        images = np.stack([r.image for r in batch])
        try:
            features, service_s = replica.run_batch(
                images, now, fault=fault, stall_timeout_s=self.stall_timeout_s
            )
        except ReplicaError as err:
            self.stats.replica_faults += 1
            self.telemetry.counter(
                "serve.replica_fault", kind=err.kind, replica=err.replica_id
            )
            self._inflight.append(
                _Inflight(
                    finish_s=now + err.detect_delay_s,
                    batch_id=batch_id,
                    replica=replica,
                    requests=batch,
                    dispatch_s=now,
                    service_s=err.detect_delay_s,
                    error=err,
                )
            )
            return True
        self._inflight.append(
            _Inflight(
                finish_s=now + service_s,
                batch_id=batch_id,
                replica=replica,
                requests=batch,
                dispatch_s=now,
                service_s=service_s,
                features=features,
            )
        )
        return True

    def _deliver_due(self, now: float) -> bool:
        """Deliver every in-flight batch whose completion instant arrived."""
        due = sorted(
            (b for b in self._inflight if b.finish_s <= now),
            key=lambda b: (b.finish_s, b.batch_id),
        )
        if not due:
            return False
        self._inflight = [b for b in self._inflight if b.finish_s > now]
        for batch in due:
            if batch.error is not None:
                self._deliver_failed(batch)
            else:
                self._deliver_ok(batch)
        return True

    def _deliver_ok(self, batch: _Inflight) -> None:
        done = batch.finish_s
        self.telemetry.record_span(
            "serve.infer",
            batch.dispatch_s,
            batch.service_s,
            replica=batch.replica.replica_id,
            batch=len(batch.requests),
        )
        oldest = min(r.arrival_s for r in batch.requests)
        self.telemetry.record_span(
            "serve.batch",
            oldest,
            done - oldest,
            batch_id=batch.batch_id,
            replica=batch.replica.replica_id,
            batch=len(batch.requests),
        )
        for i, req in enumerate(batch.requests):
            row = batch.features[i]
            if self.cache is not None and req.digest:
                self.cache.put(req.digest, row)
            tattrs = self._tenant_attrs(req.tenant)
            # A positive service window means finish > dispatch, so only
            # requests dispatched strictly before their deadline can
            # still make it; late completions are honest timeouts.
            if req.deadline_s is not None and done > req.deadline_s:
                self.stats.timed_out += 1
                self.stats.tenant(req.tenant).timed_out += 1
                self.telemetry.counter("serve.timeout", where="inflight", **tattrs)
                self._finish(
                    Response(
                        req_id=req.req_id,
                        status="timeout",
                        arrival_s=req.arrival_s,
                        done_s=done,
                        replica_id=batch.replica.replica_id,
                        batch_id=batch.batch_id,
                        tenant=req.tenant,
                    )
                )
                continue
            self.stats.served += 1
            self.stats.tenant(req.tenant).served += 1
            self.telemetry.counter("serve.served", **tattrs)
            self._finish(
                Response(
                    req_id=req.req_id,
                    status="ok",
                    arrival_s=req.arrival_s,
                    done_s=done,
                    features=row.copy(),
                    replica_id=batch.replica.replica_id,
                    batch_id=batch.batch_id,
                    tenant=req.tenant,
                )
            )

    def _deliver_failed(self, batch: _Inflight) -> None:
        done = batch.finish_s
        # Requeue at the head in original order so recovered requests
        # keep their place in the FIFO; a request that already burned
        # its retry is rejected (requeue-once-then-fail).
        for req in reversed(batch.requests):
            tattrs = self._tenant_attrs(req.tenant)
            if req.retries == 0:
                req.retries = 1
                self.queue.push_front(req)
                self.stats.requeued += 1
                self.telemetry.counter("serve.requeued", **tattrs)
            else:
                self.stats.rejected_replica_failure += 1
                self.stats.tenant(req.tenant).rejected += 1
                self.telemetry.counter(
                    "serve.rejected", reason="replica_failure", **tattrs
                )
                self._finish(
                    Response(
                        req_id=req.req_id,
                        status="rejected",
                        arrival_s=req.arrival_s,
                        done_s=done,
                        reason="replica_failure",
                        replica_id=batch.replica.replica_id,
                        batch_id=batch.batch_id,
                        tenant=req.tenant,
                    )
                )
        self.telemetry.gauge("serve.queue_depth", len(self.queue))

    def _sweep_expired(self, now: float) -> bool:
        """Time out every queued request whose deadline has arrived."""
        expired = self.queue.remove_expired(now)
        for req in expired:
            self.stats.timed_out += 1
            self.stats.tenant(req.tenant).timed_out += 1
            self.telemetry.counter(
                "serve.timeout", where="queued", **self._tenant_attrs(req.tenant)
            )
            self._finish(
                Response(
                    req_id=req.req_id,
                    status="timeout",
                    arrival_s=req.arrival_s,
                    done_s=max(now, req.deadline_s),
                    tenant=req.tenant,
                )
            )
        if expired:
            self.telemetry.gauge("serve.queue_depth", len(self.queue))
        return bool(expired)

    def _finish(self, response: Response) -> None:
        if response.req_id in self._by_id:
            raise RuntimeError(
                f"request {response.req_id} already has a terminal response"
            )
        self._by_id[response.req_id] = response
        self.responses.append(response)
        # Feed the autoscaler's p99 window: serves and timeouts carry a
        # real time-to-verdict; instant door rejections would read as
        # zero latency and mask the very overload that caused them.
        if self.autoscaler is not None and response.status in ("ok", "timeout"):
            self.autoscaler.observe(response.latency_s)


def _latency_block(lat: np.ndarray) -> dict:
    """The aggregate latency keys over one set of ok-latencies."""
    if lat.size == 0:
        return {
            "n_ok": 0,
            "p50_ms": None,
            "p99_ms": None,
            "mean_ms": None,
            "max_ms": None,
        }
    return {
        "n_ok": int(lat.size),
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        # method="higher" keeps the tail statistic an actually-observed
        # latency: linear interpolation would report a p99 *below* the
        # worst response whenever fewer than ~100 samples are in hand.
        "p99_ms": float(np.percentile(lat, 99, method="higher") * 1e3),
        "mean_ms": float(lat.mean() * 1e3),
        "max_ms": float(lat.max() * 1e3),
    }


def latency_stats(responses: list[Response]) -> dict:
    """p50/p99/mean/max latency (ms, virtual) over the ``ok`` responses.

    The aggregate keys are unchanged from the single-tenant server; when
    any response carries a tenant, a ``"tenants"`` key is added mapping
    each tenant name to the same block computed over that tenant's ok
    responses (sorted by name, so the dict renders deterministically).
    """
    lat = np.array([r.latency_s for r in responses if r.status == "ok"], dtype=float)
    out = _latency_block(lat)
    tenants = sorted({r.tenant for r in responses if r.tenant})
    if tenants:
        out["tenants"] = {
            name: _latency_block(
                np.array(
                    [
                        r.latency_s
                        for r in responses
                        if r.status == "ok" and r.tenant == name
                    ],
                    dtype=float,
                )
            )
            for name in tenants
        }
    return out
