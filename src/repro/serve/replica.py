"""Engine replicas, cost-model service estimates, and fault injection.

A *replica* is one copy of the frozen encoder pinned to one (simulated)
GCD. Replicas do the real NumPy forward pass — serving numerics are the
training substrate's numerics — while their *time* behaviour lives on
the virtual clock: each batch occupies the replica for a service window
estimated with the same :mod:`repro.hardware` cost model the perf
simulator uses (encoder FLOPs at the width-dependent achieved
throughput, plus a fixed per-batch launch overhead). That gives the
dispatcher honest, hardware-grounded estimates to balance load with —
:class:`ReplicaPool` sends every batch to the replica whose *estimated
completion time* is smallest (least-loaded dispatch), which with
heterogeneous replicas correctly prefers a fast-busy device over a
slow-idle one when the math says so.

Faults follow the :mod:`repro.comm.faults` pattern: a deterministic,
seedable :class:`ReplicaFaultPlan` arms :class:`ReplicaFaultSpec` entries
against per-replica dispatch counters, and every injected failure
surfaces as a typed :class:`ReplicaError` *before any output is
produced*. Two kinds are modelled: ``raise`` (the batch dies
immediately — an OOM/driver error analogue, detected at dispatch) and
``stall`` (the replica hangs and a watchdog detects it after
``stall_timeout_s`` of virtual time — the wedged-kernel analogue). In
both cases the server requeues the batch's requests exactly once;
a request that faults twice is rejected with ``replica_failure``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ViTConfig
from repro.hardware.gpu import GpuSpec
from repro.perf.compute_model import vit_forward_flops

__all__ = [
    "REPLICA_FAULT_KINDS",
    "ReplicaError",
    "ReplicaFaultSpec",
    "ReplicaFaultPlan",
    "ServiceTimeModel",
    "FixedServiceModel",
    "Replica",
    "ReplicaPool",
]

#: Supported replica fault kinds.
REPLICA_FAULT_KINDS = ("raise", "stall")


class ReplicaError(RuntimeError):
    """A replica failed (or was detected hung) while serving a batch.

    Attributes
    ----------
    replica_id:
        The failing replica.
    kind:
        One of :data:`REPLICA_FAULT_KINDS`.
    detect_delay_s:
        Virtual seconds between dispatch and the failure being
        *detected*: 0 for ``raise`` (the error surfaces immediately),
        the watchdog timeout for ``stall``.
    """

    def __init__(self, replica_id: int, kind: str, detect_delay_s: float = 0.0):
        self.replica_id = replica_id
        self.kind = kind
        self.detect_delay_s = detect_delay_s
        super().__init__(
            f"{kind} fault on replica {replica_id} "
            f"(detected after {detect_delay_s:.3f}s)"
        )


@dataclass(frozen=True)
class ReplicaFaultSpec:
    """One injected replica fault (mirrors :class:`repro.comm.faults.FaultSpec`).

    Parameters
    ----------
    replica_id:
        Which replica misbehaves.
    kind:
        ``"raise"`` or ``"stall"``.
    dispatch_index:
        Arms on the ``dispatch_index``-th batch dispatched *to that
        replica* (0-based) and stays armed until consumed.
    times:
        How many dispatches it affects once armed.
    """

    replica_id: int
    kind: str = "raise"
    dispatch_index: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in REPLICA_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {REPLICA_FAULT_KINDS}"
            )
        if self.replica_id < 0:
            raise ValueError(f"replica_id must be non-negative, got {self.replica_id}")
        if self.dispatch_index < 0:
            raise ValueError(
                f"dispatch_index must be non-negative, got {self.dispatch_index}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


class ReplicaFaultPlan:
    """Deterministic schedule of replica faults (single-use, like FaultPlan)."""

    def __init__(self, specs: list[ReplicaFaultSpec] | tuple = ()):
        self.specs = list(specs)
        self._remaining = [s.times for s in self.specs]

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_faults: int = 4,
        n_replicas: int = 2,
        kinds: tuple = REPLICA_FAULT_KINDS,
        max_dispatch_index: int = 8,
        times: int = 1,
    ) -> "ReplicaFaultPlan":
        """Draw ``n_faults`` random specs deterministically from ``seed``."""
        if n_faults < 0:
            raise ValueError(f"n_faults must be non-negative, got {n_faults}")
        rng = np.random.default_rng(seed)
        specs = [
            ReplicaFaultSpec(
                replica_id=int(rng.integers(n_replicas)),
                kind=str(rng.choice(list(kinds))),
                dispatch_index=int(rng.integers(max_dispatch_index)),
                times=times,
            )
            for _ in range(n_faults)
        ]
        return cls(specs)

    def pending(self) -> int:
        """Number of specs not yet fully consumed."""
        return sum(1 for r in self._remaining if r > 0)

    def consult(self, replica_id: int, dispatch_index: int) -> ReplicaFaultSpec | None:
        """The spec firing on this dispatch, consuming one charge; else None."""
        for i, spec in enumerate(self.specs):
            if (
                spec.replica_id == replica_id
                and self._remaining[i] > 0
                and dispatch_index >= spec.dispatch_index
            ):
                self._remaining[i] -= 1
                return spec
        return None


@dataclass(frozen=True)
class ServiceTimeModel:
    """Hardware-cost-model service time for one replica.

    ``estimate(b)`` = per-batch launch overhead + encoder forward FLOPs
    for ``b`` images at the GCD's width-dependent achieved throughput
    (:meth:`repro.hardware.gpu.GpuSpec.time_for_flops`). The same
    accounting the perf simulator applies to training steps, minus the
    backward pass (serving is inference-only).
    """

    encoder: ViTConfig
    gpu: GpuSpec
    overhead_s: float = 1e-4

    def __post_init__(self) -> None:
        if self.overhead_s < 0:
            raise ValueError(f"overhead_s must be non-negative, got {self.overhead_s}")

    def estimate(self, batch_size: int) -> float:
        """Virtual seconds to serve a batch of ``batch_size`` images."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        flops = vit_forward_flops(self.encoder) * batch_size
        return self.overhead_s + self.gpu.time_for_flops(flops, self.encoder.width)


@dataclass(frozen=True)
class FixedServiceModel:
    """Constant-rate service model (for tests and synthetic studies)."""

    images_per_s: float
    overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.images_per_s <= 0:
            raise ValueError(f"images_per_s must be positive, got {self.images_per_s}")
        if self.overhead_s < 0:
            raise ValueError(f"overhead_s must be non-negative, got {self.overhead_s}")

    def estimate(self, batch_size: int) -> float:
        """Virtual seconds to serve ``batch_size`` images at the fixed rate."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return self.overhead_s + batch_size / self.images_per_s


class Replica:
    """One encoder replica: real compute, virtual service time.

    Autoscaling extensions (PR 10): a replica knows when it joined the
    fleet (``added_at_s``; new replicas start busy until their warm-up
    window passes), whether it is draining toward retirement
    (``retiring`` — it finishes its in-flight batch but takes no new
    ones), and optionally what its device costs (``usd_per_hour``, for
    the capacity planner's measured-cost ledger).
    """

    def __init__(
        self,
        replica_id: int,
        model,
        service,
        *,
        added_at_s: float = 0.0,
        warmup_s: float = 0.0,
        usd_per_hour: float = 0.0,
    ):
        self.replica_id = replica_id
        self.model = model
        self.service = service
        self.added_at_s = added_at_s
        self.busy_until_s = added_at_s + warmup_s
        self.total_busy_s = 0.0
        self.dispatches = 0
        self.retiring = False
        self.retired_at_s: float | None = None
        self.usd_per_hour = usd_per_hour

    def free_at(self, now_s: float) -> float:
        """Earliest virtual time this replica can start a new batch."""
        return max(now_s, self.busy_until_s)

    def active_seconds(self, now_s: float) -> float:
        """Virtual seconds this replica has been part of the fleet."""
        end = self.retired_at_s if self.retired_at_s is not None else now_s
        return max(0.0, end - self.added_at_s)

    def completion_estimate(self, now_s: float, batch_size: int) -> float:
        """Estimated virtual finish time of a batch dispatched now."""
        return self.free_at(now_s) + self.service.estimate(batch_size)

    def run_batch(
        self,
        images: np.ndarray,
        now_s: float,
        fault: ReplicaFaultSpec | None = None,
        stall_timeout_s: float = 1.0,
    ) -> tuple[np.ndarray, float]:
        """Serve one batch: returns ``(features, service_s)`` or raises.

        The forward pass is the model's real :meth:`encode_features`;
        ``service_s`` is the cost-model window the batch occupies on the
        virtual clock. An armed fault raises :class:`ReplicaError`
        *before* any features are produced (and skips the compute — a
        failed batch yields nothing a caller could observe).
        """
        self.dispatches += 1
        if fault is not None:
            if fault.kind == "stall":
                # The wedged replica holds the device until the watchdog
                # fires; charge the full timeout window.
                self.busy_until_s = now_s + stall_timeout_s
                self.total_busy_s += stall_timeout_s
                raise ReplicaError(self.replica_id, "stall", stall_timeout_s)
            raise ReplicaError(self.replica_id, "raise", 0.0)
        service_s = self.service.estimate(len(images))
        features = self.model.encode_features(images)
        self.busy_until_s = now_s + service_s
        self.total_busy_s += service_s
        return features, service_s


class ReplicaPool:
    """N replicas over one frozen model, with least-loaded dispatch.

    All replicas share the model object (weights are frozen and the
    event loop is single-threaded, so sharing is safe); what differs per
    replica is its service model — heterogeneous pools (e.g. one fast
    and one slow GCD) are supported and exercised in tests.

    The pool is *elastic*: an autoscaler may :meth:`add_replica` (it
    joins after a warm-up window) or :meth:`begin_retire` one
    (it drains its in-flight batch, then :meth:`reap` removes it).
    Dispatch only ever considers active, non-retiring replicas; retired
    replicas stay on the books for the measured-cost ledger.
    """

    def __init__(self, model, services: list, prices: list | None = None):
        if not services:
            raise ValueError("pool needs at least one replica service model")
        if prices is not None and len(prices) != len(services):
            raise ValueError(
                f"{len(prices)} prices for {len(services)} services"
            )
        self.model = model
        self.replicas = [
            Replica(
                i,
                model,
                svc,
                usd_per_hour=prices[i] if prices is not None else 0.0,
            )
            for i, svc in enumerate(services)
        ]
        self.retired: list[Replica] = []
        self._next_id = len(self.replicas)

    def __len__(self) -> int:
        return len(self.replicas)

    @property
    def n_active(self) -> int:
        """Replicas accepting new batches (not draining)."""
        return sum(1 for r in self.replicas if not r.retiring)

    def _dispatchable(self) -> list[Replica]:
        return [r for r in self.replicas if not r.retiring]

    def earliest_free_s(self, now_s: float) -> float:
        """Virtual time the first non-retiring replica becomes available.

        ``inf`` when every replica is draining (transient state the
        autoscaler resolves at its next tick; the min-replicas bound
        keeps it from persisting).
        """
        candidates = self._dispatchable()
        if not candidates:
            return float("inf")
        return min(r.free_at(now_s) for r in candidates)

    def select(self, now_s: float, batch_size: int) -> Replica:
        """The replica with the smallest estimated completion time.

        Ties break on replica id, keeping dispatch fully deterministic.
        """
        return min(
            self._dispatchable(),
            key=lambda r: (r.completion_estimate(now_s, batch_size), r.replica_id),
        )

    def add_replica(
        self,
        service,
        now_s: float,
        *,
        warmup_s: float = 0.0,
        usd_per_hour: float = 0.0,
    ) -> Replica:
        """Grow the fleet by one replica, ready after ``warmup_s``."""
        replica = Replica(
            self._next_id,
            self.model,
            service,
            added_at_s=now_s,
            warmup_s=warmup_s,
            usd_per_hour=usd_per_hour,
        )
        self._next_id += 1
        self.replicas.append(replica)
        return replica

    def begin_retire(self, now_s: float) -> Replica | None:
        """Mark one replica for retirement (drain, don't interrupt).

        Prefers an idle replica; otherwise the one finishing soonest.
        Among candidates the highest id goes first (newest-out, fully
        deterministic). Returns the replica, or ``None`` when every
        replica is already retiring.
        """
        candidates = self._dispatchable()
        if not candidates:
            return None
        replica = min(
            candidates, key=lambda r: (r.free_at(now_s), -r.replica_id)
        )
        replica.retiring = True
        return replica

    def reap(self, now_s: float) -> list[Replica]:
        """Remove retiring replicas whose in-flight work has drained."""
        done = [
            r for r in self.replicas if r.retiring and r.busy_until_s <= now_s
        ]
        if done:
            gone = {r.replica_id for r in done}
            self.replicas = [
                r for r in self.replicas if r.replica_id not in gone
            ]
            for r in done:
                r.retired_at_s = now_s
            self.retired.extend(done)
        return done

    def fleet_cost_usd(self, now_s: float) -> float:
        """Measured cost: Σ replica active-seconds × its hourly price."""
        everyone = list(self.replicas) + list(self.retired)
        return sum(
            r.active_seconds(now_s) * r.usd_per_hour / 3600.0 for r in everyone
        )
