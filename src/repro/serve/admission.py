"""Tenant-aware admission: priority classes, weighted fair queueing,
and per-tenant token-bucket rate limits.

A production endpoint serving millions of users is always multi-tenant:
an interactive product surface, batch analytics jobs, and free-tier
traffic all share one replica fleet, and the front door must keep one
tenant's burst from starving the others. This module is that front
door, layered *in front of* the bounded queue of
:mod:`repro.serve.queue`:

- **priority classes** — every :class:`TenantSpec` carries a priority
  (0 = highest). The scheduler is strict across classes: as long as a
  higher class has queued work, lower classes wait.
- **weighted fair queueing** — inside a priority class, tenants share
  capacity in proportion to their weights via start-time fair queueing
  (SFQ, Goyal et al.): each request gets a virtual *finish tag*
  ``F = max(V, F_prev_of_tenant) + 1/weight`` and the queue always pops
  the smallest tag. Backlogged tenants therefore drain at a
  weight-proportional rate, and no backlogged tenant starves —
  the fairness property the hypothesis campaign pins.
- **token-bucket rate limits** — each tenant may carry a sustained
  ``rate_limit`` (requests/s of virtual time) with a ``burst`` bucket.
  Requests beyond the bucket are rejected at the door with reason
  ``rate_limited`` *before* touching the shared queue, so an abusive
  tenant cannot consume the backpressure budget of the others.

Everything runs on virtual time and is a pure function of the workload
and the specs — scheduling decisions replay bit-identically, which is
what lets the property campaign assert fairness on exact counts.

The default single-tenant path (no :class:`AdmissionController`) is the
plain bounded FIFO from PR 5, byte-identical schedules included — the
differential suite pins that no-behaviour-change contract.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.serve.queue import Request

__all__ = [
    "TenantSpec",
    "TokenBucket",
    "FairRequestQueue",
    "AdmissionController",
]


@dataclass(frozen=True)
class TenantSpec:
    """Admission contract of one tenant.

    Parameters
    ----------
    name:
        Tenant id, stamped onto every request and response.
    weight:
        Fair-queueing weight inside the tenant's priority class; a
        tenant with twice the weight drains twice as fast under
        contention.
    priority:
        Priority class, 0 = highest; strict priority across classes.
    rate_limit:
        Sustained admission rate in requests per virtual second, or
        ``None`` for unlimited.
    burst:
        Token-bucket depth (requests admitted back-to-back from a full
        bucket). Defaults to ``max(1, rate_limit)`` when rate-limited.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    rate_limit: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {self.rate_limit}")
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


class TokenBucket:
    """Deterministic token bucket on virtual time.

    Refills continuously at ``rate`` tokens per virtual second up to
    ``burst``; :meth:`try_take` consumes one token or refuses. Lazy
    refill (computed from the last take's timestamp) keeps the bucket
    O(1) per request with no background events.
    """

    def __init__(self, rate: float, burst: float, start_s: float = 0.0):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_s = float(start_s)

    def available(self, now_s: float) -> float:
        """Tokens in the bucket at virtual time ``now_s`` (no side effect)."""
        return min(self.burst, self._tokens + (now_s - self._last_s) * self.rate)

    def try_take(self, now_s: float) -> bool:
        """Consume one token at ``now_s``; False when the bucket is dry."""
        self._tokens = self.available(now_s)
        self._last_s = now_s
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class _TenantLane:
    """Per-tenant FIFO plus its SFQ finish-tag state."""

    __slots__ = ("spec", "items", "last_finish")

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.items: deque[tuple[float, Request]] = deque()  # (finish_tag, req)
        self.last_finish = 0.0


class FairRequestQueue:
    """Bounded multi-tenant queue: strict priority, then weighted fair.

    Duck-types :class:`repro.serve.queue.RequestQueue` (``push`` /
    ``push_front`` / ``pop`` / ``peek`` / ``min_deadline_s`` /
    ``remove_expired`` / ``len`` / ``full``), so the micro-batcher and
    the serving loop run unchanged on top of it — only the *order*
    requests leave the queue differs from the plain FIFO.

    The capacity bound is global across tenants (it models the shared
    admission buffer); per-tenant protection against a hog filling it
    is the token bucket's job, upstream in the
    :class:`AdmissionController`.
    """

    def __init__(self, capacity: int, specs: list[TenantSpec] | tuple = ()):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lanes: dict[str, _TenantLane] = {}
        for spec in specs:
            if spec.name in self._lanes:
                raise ValueError(f"duplicate tenant spec {spec.name!r}")
            self._lanes[spec.name] = _TenantLane(spec)
        self._virtual = 0.0
        self._n = 0

    def spec_for(self, tenant: str) -> TenantSpec:
        """The tenant's spec; unknown tenants get a default lane
        (weight 1, priority 0, unlimited) created on first sight."""
        lane = self._lanes.get(tenant)
        if lane is None:
            # Spec names must be non-empty; the anonymous tenant's lane
            # is keyed "" but carries the placeholder name "-".
            lane = _TenantLane(TenantSpec(tenant or "-"))
            self._lanes[tenant] = lane
        return lane.spec

    def __len__(self) -> int:
        return self._n

    @property
    def full(self) -> bool:
        """True when a ``push`` would be refused."""
        return self._n >= self.capacity

    def _lane(self, tenant: str) -> _TenantLane:
        self.spec_for(tenant)
        return self._lanes[tenant]

    def push(self, request: Request) -> bool:
        """Admit at the tenant's tail with a fresh SFQ finish tag."""
        if self.full:
            return False
        lane = self._lane(request.tenant)
        tag = max(self._virtual, lane.last_finish) + 1.0 / lane.spec.weight
        lane.last_finish = tag
        lane.items.append((tag, request))
        self._n += 1
        return True

    def push_front(self, request: Request) -> None:
        """Requeue a faulted request at its tenant's head (bound-exempt).

        The request re-enters with a tag no later than the current
        virtual time, so it is the next thing its lane serves — the
        FIFO-order-preserving requeue contract of the fault path.
        """
        lane = self._lane(request.tenant)
        head_tag = lane.items[0][0] if lane.items else lane.last_finish
        lane.items.appendleft((min(self._virtual, head_tag), request))
        self._n += 1

    def _head_lane(self) -> _TenantLane | None:
        """The lane whose head request the scheduler picks next."""
        best: _TenantLane | None = None
        best_key: tuple | None = None
        for tenant in self._lanes:
            lane = self._lanes[tenant]
            if not lane.items:
                continue
            tag, req = lane.items[0]
            # Strict priority first, then smallest finish tag; req_id is
            # the total deterministic tie-break.
            key = (lane.spec.priority, tag, req.req_id)
            if best_key is None or key < best_key:
                best, best_key = lane, key
        return best

    def peek(self) -> Request:
        """The request :meth:`pop` would return, without removing it."""
        lane = self._head_lane()
        if lane is None:
            raise IndexError("peek from an empty FairRequestQueue")
        return lane.items[0][1]

    def pop(self) -> Request:
        """Remove and return the scheduler's next request (SFQ order)."""
        lane = self._head_lane()
        if lane is None:
            raise IndexError("pop from an empty FairRequestQueue")
        tag, request = lane.items.popleft()
        self._virtual = max(self._virtual, tag)
        self._n -= 1
        return request

    def min_deadline_s(self) -> float | None:
        """Earliest deadline among waiting requests (any tenant)."""
        deadlines = [
            r.deadline_s
            for lane in self._lanes.values()
            for _, r in lane.items
            if r.deadline_s is not None
        ]
        return min(deadlines) if deadlines else None

    def remove_expired(self, now_s: float) -> list[Request]:
        """Remove every request whose deadline is ``<= now_s`` (all lanes).

        Returned in req_id order so the server's timeout responses are
        emitted deterministically.
        """
        expired: list[Request] = []
        for lane in self._lanes.values():
            dead = [
                (t, r)
                for t, r in lane.items
                if r.deadline_s is not None and r.deadline_s <= now_s
            ]
            if dead:
                gone = {r.req_id for _, r in dead}
                lane.items = deque(
                    (t, r) for t, r in lane.items if r.req_id not in gone
                )
                expired.extend(r for _, r in dead)
                self._n -= len(dead)
        return sorted(expired, key=lambda r: r.req_id)

    def depth_by_tenant(self) -> dict[str, int]:
        """Waiting requests per tenant (observability hook)."""
        return {
            tenant: len(lane.items)
            for tenant, lane in self._lanes.items()
            if lane.items
        }


class AdmissionController:
    """Front-door policy: per-tenant token buckets over a fair queue.

    Built from the tenant specs, it owns the
    :class:`FairRequestQueue` the server should run on and answers one
    question per arriving request: *may this tenant enqueue right now?*
    (``None`` = yes, else a reject reason from
    :data:`repro.serve.queue.REJECT_REASONS`). The queue-full check
    stays with the queue itself — the controller only adds the
    rate-limit layer in front.
    """

    def __init__(self, specs: list[TenantSpec] | tuple, capacity: int):
        self.specs = {s.name: s for s in specs}
        if len(self.specs) != len(list(specs)):
            raise ValueError("duplicate tenant names in admission specs")
        self.queue = FairRequestQueue(capacity, list(specs))
        self._buckets: dict[str, TokenBucket] = {}
        for spec in specs:
            if spec.rate_limit is not None:
                burst = spec.burst if spec.burst is not None else max(
                    1.0, spec.rate_limit
                )
                self._buckets[spec.name] = TokenBucket(spec.rate_limit, burst)

    def priority_of(self, tenant: str) -> int:
        """The tenant's priority class (default lane when unknown)."""
        spec = self.specs.get(tenant)
        return spec.priority if spec is not None else 0

    def admit_reason(self, tenant: str, now_s: float) -> str | None:
        """``None`` to admit, else the reject reason (``rate_limited``)."""
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.try_take(now_s):
            return "rate_limited"
        return None
