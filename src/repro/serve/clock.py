"""Deterministic virtual time for the serving event loop.

Every concurrency decision in :mod:`repro.serve` — batch-close
deadlines, request timeouts, replica busy windows, latency percentiles —
is driven by a :class:`VirtualClock` instead of the wall clock. Time
only moves when the event loop advances it, so a serving schedule is a
pure function of the workload (arrival times, deadlines) and the
configuration: every run replays bit-identically, wall-clock sleeps
never appear in tests, and a p99 latency computed on one machine is the
same number on every other machine.

The clock is intentionally tiny: ``now()`` reads it, ``advance`` /
``advance_to`` move it forward, and monotonicity is enforced — a
scheduler bug that would rewind time raises immediately instead of
silently reordering events.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonic, manually-advanced clock (seconds, virtual).

    Pass ``clock.now`` anywhere a ``time.perf_counter``-style callable is
    expected (e.g. ``TelemetryBus(clock=clock.now)``) so telemetry
    timestamps land in the same virtual timeline as the scheduler.
    """

    __slots__ = ("_now",)

    def __init__(self, start_s: float = 0.0):
        if start_s < 0:
            raise ValueError(f"start_s must be non-negative, got {start_s}")
        self._now = float(start_s)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt_s: float) -> float:
        """Move time forward by ``dt_s`` seconds; returns the new time."""
        if dt_s < 0:
            raise ValueError(f"cannot advance by negative dt {dt_s}")
        self._now += dt_s
        return self._now

    def advance_to(self, t_s: float) -> float:
        """Move time forward to absolute ``t_s``; returns the new time.

        Advancing to the current time is a no-op; advancing backwards is
        a scheduler bug and raises.
        """
        if t_s < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {t_s}")
        self._now = float(t_s)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f}s)"
