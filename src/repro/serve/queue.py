"""Requests, responses, and the bounded admission queue.

The serving front door. A :class:`Request` is one image with an arrival
time and an optional absolute deadline; a :class:`Response` is its single
terminal record — exactly one per submitted request, whatever happens in
between (cache hit, batching, replica fault, timeout). The
:class:`RequestQueue` is the only buffer between admission and the
replica pool: it is bounded, and a full queue *rejects at submit time*
(backpressure) rather than growing without limit — the load-shedding
behaviour a saturated service needs so queueing delay cannot grow
unboundedly past every deadline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "REQUEST_STATUSES",
    "REJECT_REASONS",
    "Request",
    "Response",
    "RequestQueue",
]

#: Terminal statuses a request can end in.
REQUEST_STATUSES = ("ok", "timeout", "rejected")

#: Why a request was rejected (attribute on ``rejected`` responses).
REJECT_REASONS = ("queue_full", "replica_failure", "rate_limited")


@dataclass
class Request:
    """One admitted inference request.

    Attributes
    ----------
    req_id:
        Server-assigned monotonically increasing id.
    image:
        The ``(C, H, W)`` input image.
    arrival_s:
        Virtual time the request was submitted.
    deadline_s:
        Absolute virtual deadline, or ``None`` for best-effort. A request
        whose deadline passes before its features are delivered receives
        a ``timeout`` response, never a late ``ok``.
    digest:
        Content digest of ``image`` (cache key); empty when caching is
        disabled.
    retries:
        How many times the request has been requeued after a replica
        fault. The pool's contract is requeue-once-then-fail.
    tenant:
        Admission tenant the request belongs to (``""`` = the default,
        anonymous tenant — the single-tenant path of PR 5).
    priority:
        Admission priority class (0 = highest). Only meaningful under a
        :class:`~repro.serve.admission.FairRequestQueue`; the plain FIFO
        ignores it.
    """

    req_id: int
    image: np.ndarray
    arrival_s: float
    deadline_s: float | None = None
    digest: str = ""
    retries: int = 0
    tenant: str = ""
    priority: int = 0

    def expired(self, now_s: float) -> bool:
        """True when the deadline has passed at virtual time ``now_s``."""
        return self.deadline_s is not None and now_s > self.deadline_s


@dataclass(frozen=True)
class Response:
    """The single terminal record of one request.

    ``latency_s`` is ``done_s - arrival_s`` in virtual time; for
    ``rejected``/``timeout`` responses it measures time-to-verdict, and
    ``features`` is ``None``. ``tenant`` carries the admission tenant
    (``""`` on the single-tenant path) so per-tenant breakdowns can be
    computed from responses alone.
    """

    req_id: int
    status: str
    arrival_s: float
    done_s: float
    features: np.ndarray | None = None
    reason: str = ""
    cache_hit: bool = False
    replica_id: int | None = None
    batch_id: int | None = None
    tenant: str = ""
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in REQUEST_STATUSES:
            raise ValueError(
                f"unknown status {self.status!r}; expected one of {REQUEST_STATUSES}"
            )
        if self.status == "rejected" and self.reason not in REJECT_REASONS:
            raise ValueError(
                f"rejected responses need a reason from {REJECT_REASONS}, "
                f"got {self.reason!r}"
            )

    @property
    def latency_s(self) -> float:
        """Virtual seconds from arrival to the terminal verdict."""
        return self.done_s - self.arrival_s


class RequestQueue:
    """Bounded FIFO of admitted requests (the backpressure point).

    ``push`` refuses work once ``capacity`` requests are waiting —
    the caller turns that refusal into a ``rejected(queue_full)``
    response. ``push_front`` is reserved for fault requeues and
    deliberately bypasses the bound: a request the service already
    admitted is never silently dropped by its own recovery path.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque[Request] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """True when a ``push`` would be refused."""
        return len(self._items) >= self.capacity

    def push(self, request: Request) -> bool:
        """Admit ``request`` at the tail; False (refused) when full."""
        if self.full:
            return False
        self._items.append(request)
        return True

    def push_front(self, request: Request) -> None:
        """Requeue a faulted request at the head (exempt from the bound)."""
        self._items.appendleft(request)

    def pop(self) -> Request:
        """Remove and return the oldest request."""
        return self._items.popleft()

    def peek(self) -> Request:
        """The oldest request, without removing it."""
        return self._items[0]

    def min_deadline_s(self) -> float | None:
        """Earliest deadline among waiting requests; None when none carry one."""
        deadlines = [r.deadline_s for r in self._items if r.deadline_s is not None]
        return min(deadlines) if deadlines else None

    def remove_expired(self, now_s: float) -> list[Request]:
        """Remove and return every request whose deadline is ``<= now_s``.

        Requests at exactly their deadline are removed too: with strictly
        positive service times they could only ever be delivered late, so
        dispatching them would burn replica time on a guaranteed timeout.
        """
        expired = [
            r for r in self._items if r.deadline_s is not None and r.deadline_s <= now_s
        ]
        if expired:
            dead = {r.req_id for r in expired}
            self._items = deque(r for r in self._items if r.req_id not in dead)
        return expired
