"""Cost-aware capacity planning, reconciled predicted-vs-measured.

Sizing a serving fleet is the inference-side twin of the paper's
training-throughput planning: pick hardware, predict capacity from the
cost model, then *check the prediction against a measured run* (the
MESHPERF reconciliation pattern from PR 9, applied to traffic instead
of collective bytes).

**Formulation.** Given a traffic forecast (the peak offered rate of the
:class:`~repro.serve.traffic.RateProfile` mix), an SLO (latency bound +
attainment target), and a heterogeneous catalog of priced replica types
(:class:`ReplicaType` — a service-time model plus an hourly price from
:mod:`repro.hardware.pricing`), find non-negative integer counts
``n_t`` minimizing hourly spend ``Σ n_t · price_t`` subject to

``Σ n_t · capacity_t · utilization_target ≥ peak_rate``

where ``capacity_t = batch / service_t.estimate(batch)`` is the type's
saturated throughput at the planning batch size, and
``utilization_target < 1`` is the queueing headroom that keeps the
latency SLO attainable (an M/D/c fleet driven at ~70% holds its tail;
at 100% the queue is unstable). The search is exact: bounded
enumeration over count vectors with cost pruning — catalogs are small
(a handful of types, tens of replicas), so exactness is cheap and the
tie-break (cost, then fleet size, then counts) is deterministic.

**Reconciliation.** :func:`reconcile_plan` takes the plan and the
:class:`~repro.serve.traffic.OpenLoopResult` of actually serving the
forecast traffic on the planned fleet, and checks, row by row:

- measured SLO attainment ≥ the plan's target (the SLO holds in fact,
  not just in algebra);
- measured cost/hour within ``cost_tolerance`` of the predicted
  cost/hour (the spend model is honest — warm-up windows and autoscale
  churn are the usual sources of drift);
- measured peak utilization ≤ 1 (the fleet was never asked for more
  than it has).

``check_regression.py`` gates on the resulting ``reconciled`` flag, so
a planner whose predictions drift from the measured open-loop behaviour
fails CI the same way a drifting perf model does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.pricing import DEFAULT_FLEET, GcdPrice
from repro.serve.replica import ServiceTimeModel
from repro.serve.traffic import OpenLoopResult

__all__ = [
    "ReplicaType",
    "CapacityPlan",
    "plan_capacity",
    "ReconRow",
    "PlanReconciliation",
    "reconcile_plan",
]


@dataclass(frozen=True)
class ReplicaType:
    """One deployable replica flavour: service model + hourly price."""

    name: str
    service: object  # anything with .estimate(batch_size) -> seconds
    usd_per_hour: float

    def __post_init__(self) -> None:
        if self.usd_per_hour <= 0:
            raise ValueError(
                f"usd_per_hour must be positive, got {self.usd_per_hour}"
            )

    @classmethod
    def from_price(cls, price: GcdPrice, encoder_cfg) -> "ReplicaType":
        """Build from a priced GCD and the encoder it will serve."""
        return cls(
            name=price.name,
            service=ServiceTimeModel(encoder_cfg, price.gpu),
            usd_per_hour=price.usd_per_hour,
        )

    @classmethod
    def catalog(
        cls, encoder_cfg, prices: tuple = DEFAULT_FLEET
    ) -> tuple["ReplicaType", ...]:
        """The default heterogeneous catalog for one encoder."""
        return tuple(cls.from_price(p, encoder_cfg) for p in prices)

    def capacity_ips(self, batch_size: int) -> float:
        """Saturated throughput at ``batch_size`` (images/s, virtual)."""
        return batch_size / self.service.estimate(batch_size)


@dataclass(frozen=True)
class CapacityPlan:
    """The planner's verdict: which replicas, and what it predicts."""

    mix: tuple  # ((ReplicaType, count), ...) — count > 0 entries only
    peak_rate_ips: float
    batch_size: int
    utilization_target: float
    slo_s: float
    attainment_target: float
    predicted_capacity_ips: float
    predicted_cost_per_hour: float

    @property
    def n_replicas(self) -> int:
        """Total replicas in the planned fleet."""
        return sum(count for _, count in self.mix)

    @property
    def predicted_utilization(self) -> float:
        """Offered peak over planned capacity (≤ utilization_target)."""
        if self.predicted_capacity_ips <= 0:
            return 0.0
        return self.peak_rate_ips / self.predicted_capacity_ips

    def services(self) -> list:
        """Per-replica service models, in deterministic mix order."""
        out = []
        for rtype, count in self.mix:
            out.extend([rtype.service] * count)
        return out

    def prices(self) -> list[float]:
        """Per-replica hourly prices aligned with :meth:`services`."""
        out: list[float] = []
        for rtype, count in self.mix:
            out.extend([rtype.usd_per_hour] * count)
        return out

    def describe(self) -> str:
        """Compact human-readable mix, e.g. ``2×mi250x-gcd + 1×budget``."""
        return " + ".join(f"{count}x{rtype.name}" for rtype, count in self.mix)


def plan_capacity(
    types: list[ReplicaType] | tuple,
    peak_rate_ips: float,
    *,
    batch_size: int = 8,
    utilization_target: float = 0.7,
    slo_s: float = 0.25,
    attainment_target: float = 0.95,
    max_replicas: int = 64,
) -> CapacityPlan:
    """Solve for the cheapest replica mix meeting the SLO headroom.

    Exact bounded enumeration with cost pruning; raises when even
    ``max_replicas`` of every type cannot carry the forecast.
    """
    if not types:
        raise ValueError("planner needs at least one replica type")
    if peak_rate_ips <= 0:
        raise ValueError(f"peak_rate_ips must be positive, got {peak_rate_ips}")
    if not 0 < utilization_target <= 1:
        raise ValueError(
            f"utilization_target must be in (0, 1], got {utilization_target}"
        )
    if max_replicas < 1:
        raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
    required = peak_rate_ips / utilization_target
    caps = [t.capacity_ips(batch_size) for t in types]
    if max(caps) * max_replicas < required:
        raise ValueError(
            f"forecast {peak_rate_ips:.1f} img/s needs more than "
            f"{max_replicas} replicas of every offered type"
        )

    best: tuple[float, int, tuple] | None = None  # (cost, total, counts)

    def search(i: int, counts: tuple, cost: float, total: int, cap: float) -> None:
        nonlocal best
        if best is not None and (
            cost > best[0] or (cost == best[0] and total > best[1])
        ):
            return
        if cap >= required:
            key = (cost, total, counts)
            if best is None or key < best:
                best = key
            return
        if i == len(types):
            return
        # Upper bound on how many of type i could ever help: enough to
        # cover the missing capacity alone, within the fleet bound.
        missing = required - cap
        hi = min(max_replicas - total, int(missing // caps[i]) + 1)
        for n in range(hi, -1, -1):
            search(
                i + 1,
                counts + (n,),
                cost + n * types[i].usd_per_hour,
                total + n,
                cap + n * caps[i],
            )

    search(0, (), 0.0, 0, 0.0)
    if best is None:
        raise ValueError(
            f"no mix of <= {max_replicas} replicas reaches "
            f"{required:.1f} img/s capacity"
        )
    counts = best[2]
    mix = tuple(
        (t, n) for t, n in zip(types, counts + (0,) * (len(types) - len(counts))) if n
    )
    capacity = sum(t.capacity_ips(batch_size) * n for t, n in mix)
    cost = sum(t.usd_per_hour * n for t, n in mix)
    return CapacityPlan(
        mix=mix,
        peak_rate_ips=peak_rate_ips,
        batch_size=batch_size,
        utilization_target=utilization_target,
        slo_s=slo_s,
        attainment_target=attainment_target,
        predicted_capacity_ips=capacity,
        predicted_cost_per_hour=cost,
    )


@dataclass(frozen=True)
class ReconRow:
    """One predicted-vs-measured comparison of the reconciliation."""

    quantity: str
    predicted: float
    measured: float
    ok: bool
    gate: str  # how `ok` was decided, e.g. ">=", "rel<=0.10"


@dataclass(frozen=True)
class PlanReconciliation:
    """The full reconciliation verdict (rows + one flag CI gates on)."""

    rows: tuple
    reconciled: bool

    def to_json(self) -> dict:
        """JSON-ready form for the bench artifact."""
        return {
            "reconciled": self.reconciled,
            "rows": [
                {
                    "quantity": r.quantity,
                    "predicted": r.predicted,
                    "measured": r.measured,
                    "ok": r.ok,
                    "gate": r.gate,
                }
                for r in self.rows
            ],
        }

    def render(self) -> str:
        """Aligned predicted-vs-measured table."""
        lines = [
            f"{'quantity':<22} {'predicted':>12} {'measured':>12} {'gate':>12} ok"
        ]
        for r in self.rows:
            lines.append(
                f"{r.quantity:<22} {r.predicted:>12.4f} {r.measured:>12.4f} "
                f"{r.gate:>12} {'yes' if r.ok else 'NO'}"
            )
        verdict = "reconciled" if self.reconciled else "DRIFTED"
        lines.append(f"-> {verdict}")
        return "\n".join(lines)


def reconcile_plan(
    plan: CapacityPlan,
    result: OpenLoopResult,
    cost_tolerance: float = 0.10,
) -> PlanReconciliation:
    """Settle the plan against a measured open-loop run on the planned fleet.

    Gates: measured attainment ≥ the plan's target, measured cost/hour
    within ``cost_tolerance`` (relative) of predicted, and measured
    offered load within the planned capacity (utilization ≤ 1).

    Attainment is scored over *admitted* requests
    (:attr:`OpenLoopResult.admitted_attainment`): the plan is sized for
    the peak that survives the token buckets, so traffic the admission
    policy turns away at the door is not the fleet's to serve.
    """
    if cost_tolerance < 0:
        raise ValueError(f"cost_tolerance must be >= 0, got {cost_tolerance}")
    att_ok = result.admitted_attainment >= plan.attainment_target
    predicted_cost = plan.predicted_cost_per_hour
    measured_cost = result.measured_cost_per_hour
    cost_drift = (
        abs(measured_cost - predicted_cost) / predicted_cost
        if predicted_cost > 0
        else 0.0
    )
    cost_ok = cost_drift <= cost_tolerance
    measured_util = (
        result.served_rate_ips / plan.predicted_capacity_ips
        if plan.predicted_capacity_ips > 0
        else 0.0
    )
    util_ok = measured_util <= 1.0 + 1e-9
    rows = (
        ReconRow(
            "slo_attainment",
            plan.attainment_target,
            result.admitted_attainment,
            att_ok,
            ">=",
        ),
        ReconRow(
            "cost_per_hour_usd",
            predicted_cost,
            measured_cost,
            cost_ok,
            f"rel<={cost_tolerance:.2f}",
        ),
        ReconRow(
            "utilization", plan.utilization_target, measured_util, util_ok, "<=1"
        ),
    )
    return PlanReconciliation(rows=rows, reconciled=all(r.ok for r in rows))
