"""Chrome-trace (``chrome://tracing`` / Perfetto) export of simulated steps.

Serializes a scheduled :class:`~repro.perf.events.Timeline` to the Trace
Event JSON format so simulated steps can be inspected visually, the same
way one would inspect a real PyTorch profiler trace of an FSDP step.
"""

from __future__ import annotations

import json

from repro.perf.events import ScheduledTask, Timeline

__all__ = ["to_chrome_trace", "write_chrome_trace", "write_trace_json"]

_US = 1e6  # trace event timestamps are microseconds


def to_chrome_trace(timeline: Timeline, process_name: str = "rank0") -> list[dict]:
    """Convert a timeline into a list of Chrome 'X' (complete) events."""
    sched: list[ScheduledTask] = timeline.run()
    resources = sorted({s.task.resource for s in sched})
    tid_of = {r: i for i, r in enumerate(resources)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": resource},
        }
        for resource, tid in tid_of.items()
    )
    events.extend(
        {
            "name": s.task.name,
            "ph": "X",
            "pid": 0,
            "tid": tid_of[s.task.resource],
            "ts": s.start * _US,
            "dur": s.task.duration * _US,
            "cat": s.task.resource,
        }
        for s in sched
    )
    return events


def write_trace_json(trace_events: list[dict], path: str) -> None:
    """Write raw Trace Event dicts to ``path`` (the shared trace writer).

    Used both for simulated timelines (:func:`write_chrome_trace`) and
    for measured telemetry spans
    (:func:`repro.telemetry.chrome.write_span_trace`).
    """
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": trace_events}, f)


def write_chrome_trace(
    timeline: Timeline, path: str, process_name: str = "rank0"
) -> None:
    """Write the trace JSON to ``path`` (open with chrome://tracing)."""
    write_trace_json(to_chrome_trace(timeline, process_name), path)
