"""Deterministic discrete-event engine (list scheduling over streams).

The simulated device executes tasks on named *resources* (streams): a
``compute`` stream, a ``comm`` stream, etc. Each resource runs its tasks
in submission order (FIFO, non-preemptive, like a GPU stream); a task
starts when its resource is free *and* all its dependencies have
finished. This is exactly the execution model of one CUDA/HIP device with
events between streams, which is what FSDP's overlap behaviour lives on.

The engine is O(n log n)-free by construction: a single pass in submission
order computes all start times because FIFO resources make ``start =
max(resource_available, deps_done)`` well-defined without global event
queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Task", "Timeline", "ScheduledTask"]


@dataclass(frozen=True)
class Task:
    """One unit of work bound to a resource."""

    name: str
    resource: str
    duration: float
    deps: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name}: negative duration {self.duration}")


@dataclass(frozen=True)
class ScheduledTask:
    task: Task
    start: float
    end: float


@dataclass
class Timeline:
    """Builds and schedules a task graph."""

    tasks: list[Task] = field(default_factory=list)

    def add(
        self, name: str, resource: str, duration: float, deps: tuple[int, ...] | list[int] = ()
    ) -> int:
        """Append a task; returns its id for use in later ``deps``."""
        for d in deps:
            if not 0 <= d < len(self.tasks):
                raise ValueError(
                    f"task {name}: dependency {d} does not exist yet "
                    f"(tasks must be added after their dependencies)"
                )
        self.tasks.append(Task(name, resource, float(duration), tuple(deps)))
        return len(self.tasks) - 1

    def run(self) -> list[ScheduledTask]:
        """Schedule all tasks; FIFO per resource, dependency-respecting."""
        resource_free: dict[str, float] = {}
        ends: list[float] = []
        out: list[ScheduledTask] = []
        for t in self.tasks:
            deps_done = max((ends[d] for d in t.deps), default=0.0)
            start = max(resource_free.get(t.resource, 0.0), deps_done)
            end = start + t.duration
            resource_free[t.resource] = end
            ends.append(end)
            out.append(ScheduledTask(task=t, start=start, end=end))
        return out

    def makespan(self) -> float:
        """Total time from 0 to the last task's end."""
        sched = self.run()
        return max((s.end for s in sched), default=0.0)

    def busy_time(self, resource: str) -> float:
        """Sum of task durations on one resource."""
        return sum(t.duration for t in self.tasks if t.resource == resource)
