"""FLOP counts and per-unit compute costs for ViT / MAE workloads.

FLOPs use the standard dense-transformer accounting (one multiply-add =
2 FLOPs):

per image, per encoder block of width W, mlp M, sequence N:
  ``N * (8 W^2 + 4 W M) + 4 N^2 W``
(qkv ``6W^2`` + output proj ``2W^2`` + MLP ``4WM`` per token; the two
attention matmuls QK^T and AV contribute ``4 N^2 W`` per image.)

Backward is counted as twice forward (the usual 2x rule for dense nets),
so a training step costs ~3x forward FLOPs.

The *workload units* produced here mirror the FSDP wrapping: one unit per
transformer block plus a root unit (embeddings/norm/head). Each unit
carries its parameter bytes and per-microbatch forward seconds, which the
schedule builder turns into tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MAEConfig, ViTConfig, vit_block_params
from repro.hardware.gpu import GpuSpec

__all__ = [
    "UnitCost",
    "block_forward_flops",
    "vit_forward_flops",
    "mae_forward_flops",
    "vit_workload_units",
    "mae_workload_units",
    "BYTES_PER_PARAM",
]

#: The paper's runs are plain fp32 (no mention of AMP; FSDP default).
BYTES_PER_PARAM = 4


@dataclass(frozen=True)
class UnitCost:
    """One FSDP wrapping unit's static cost profile.

    ``fwd_seconds`` is the forward compute time of this unit for one
    *local* microbatch; backward costs ``backward_ratio`` times more.
    """

    name: str
    param_bytes: int
    fwd_seconds: float
    backward_ratio: float = 2.0

    @property
    def bwd_seconds(self) -> float:
        """Backward compute time (forward x backward_ratio)."""
        return self.fwd_seconds * self.backward_ratio


def block_forward_flops(width: int, mlp: int, seq: int) -> float:
    """Forward FLOPs of one transformer block for one image."""
    return seq * (8 * width * width + 4 * width * mlp) + 4 * seq * seq * width


def vit_forward_flops(cfg: ViTConfig, seq: int | None = None) -> float:
    """Forward FLOPs of the full ViT encoder for one image."""
    n = seq if seq is not None else cfg.seq_len
    embed = 2 * cfg.n_patches * cfg.patch_dim * cfg.width
    return embed + cfg.depth * block_forward_flops(cfg.width, cfg.mlp, n)


def mae_forward_flops(cfg: MAEConfig) -> float:
    """Forward FLOPs of the full MAE (masked encoder + decoder)."""
    enc = cfg.encoder
    enc_seq = cfg.n_visible + 1
    embed = 2 * enc.n_patches * enc.patch_dim * enc.width
    enc_flops = embed + enc.depth * block_forward_flops(enc.width, enc.mlp, enc_seq)
    dec_seq = enc.n_patches + 1
    dec_embed = 2 * enc_seq * enc.width * cfg.dec_width
    dec_blocks = cfg.dec_depth * block_forward_flops(
        cfg.dec_width, 4 * cfg.dec_width, dec_seq
    )
    dec_pred = 2 * dec_seq * cfg.dec_width * enc.patch_dim
    return enc_flops + dec_embed + dec_blocks + dec_pred


def _root_params_vit(cfg: ViTConfig) -> int:
    """Non-block parameters of a ViT: patch embed + cls + final norm."""
    return (cfg.patch_dim * cfg.width + cfg.width) + cfg.width + 2 * cfg.width


def vit_workload_units(
    cfg: ViTConfig, local_batch: int, gpu: GpuSpec
) -> list[UnitCost]:
    """FSDP units for a plain-ViT training step (Figs. 2-4 workload)."""
    if local_batch <= 0:
        raise ValueError(f"local_batch must be positive, got {local_batch}")
    seq = cfg.seq_len
    units = [
        UnitCost(
            name="root",
            param_bytes=_root_params_vit(cfg) * BYTES_PER_PARAM,
            fwd_seconds=gpu.time_for_flops(
                2 * cfg.n_patches * cfg.patch_dim * cfg.width * local_batch, cfg.width
            ),
        )
    ]
    block_flops = block_forward_flops(cfg.width, cfg.mlp, seq) * local_batch
    block_bytes = vit_block_params(cfg.width, cfg.mlp) * BYTES_PER_PARAM
    block_s = gpu.time_for_flops(block_flops, cfg.width)
    units.extend(
        UnitCost(name=f"block{i}", param_bytes=block_bytes, fwd_seconds=block_s)
        for i in range(cfg.depth)
    )
    return units


def mae_workload_units(
    cfg: MAEConfig, local_batch: int, gpu: GpuSpec
) -> list[UnitCost]:
    """FSDP units for an MAE pretraining step (Fig. 1 workload)."""
    enc = cfg.encoder
    enc_seq = cfg.n_visible + 1
    dec_seq = enc.n_patches + 1
    units = [
        UnitCost(
            name="root",
            param_bytes=(
                _root_params_vit(enc)
                + (enc.width * cfg.dec_width + cfg.dec_width)  # decoder embed
                + cfg.dec_width  # mask token
                + 2 * cfg.dec_width  # decoder norm
                + (cfg.dec_width * enc.patch_dim + enc.patch_dim)  # pred head
            )
            * BYTES_PER_PARAM,
            fwd_seconds=gpu.time_for_flops(
                (
                    2 * enc.n_patches * enc.patch_dim * enc.width
                    + 2 * enc_seq * enc.width * cfg.dec_width
                    + 2 * dec_seq * cfg.dec_width * enc.patch_dim
                )
                * local_batch,
                enc.width,
            ),
        )
    ]
    enc_block_s = gpu.time_for_flops(
        block_forward_flops(enc.width, enc.mlp, enc_seq) * local_batch, enc.width
    )
    enc_block_bytes = vit_block_params(enc.width, enc.mlp) * BYTES_PER_PARAM
    units.extend(
        UnitCost(f"enc_block{i}", enc_block_bytes, enc_block_s)
        for i in range(enc.depth)
    )
    dec_block_s = gpu.time_for_flops(
        block_forward_flops(cfg.dec_width, 4 * cfg.dec_width, dec_seq) * local_batch,
        cfg.dec_width,
    )
    dec_block_bytes = vit_block_params(cfg.dec_width, 4 * cfg.dec_width) * BYTES_PER_PARAM
    units.extend(
        UnitCost(f"dec_block{i}", dec_block_bytes, dec_block_s)
        for i in range(cfg.dec_depth)
    )
    return units
