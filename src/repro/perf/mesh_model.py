"""Closed-form per-axis collective payloads of a TP x PP x DP mesh.

The mesh engines (:mod:`repro.mesh.engine`) *measure* per-axis wire
traffic by tagging every collective span with its mesh axis; this module
*predicts* the same quantities from the model configuration alone, so
the two can be reconciled row-by-row (``python -m repro.experiments
mesh-crossover``). Because :class:`repro.comm.sim.SimComm` is exact data
movement — every booked byte is an actually-copied NumPy byte — the
tensor- and data-parallel predictions must match the measured telemetry
*exactly*; pipeline boundary bytes are analytic on both sides (the
process backend books them through
:func:`repro.mesh.pipeline.boundary_nbytes`) and are compared within a
documented tolerance to leave room for backends that pad boundary
tensors.

Where the numbers come from (all derived, none fitted):

tensor parallel
    The engine shards the four flagged GEMMs of every transformer block
    (qkv, attention proj, MLP fc1/fc2) and round-trips each sharded
    GEMM's *output* through an all-gather. For a block of width ``W``,
    mlp ``M`` and ``R = batch * seq`` rows, one forward pass reassembles
    ``R * (3W + W + M + W)`` values and one backward (the ``dx`` of the
    same GEMMs) ``R * (W + W + W + M)``; with inline-backend pipeline
    recompute (``pp > 1``) the forward runs twice per backward.

pipeline parallel
    Boundary ``s`` carries the output activation of the last op of stage
    ``s`` forward and its gradient backward, so one microbatch moves
    ``2 * sum(boundary bytes)`` and makes ``2 * (pp - 1)`` transfers.

data parallel
    ``ddp`` reduces one concatenated full-model gradient per optimizer
    step (booked even at ``dp == 1``, matching the engine). ``full_shard``
    all-gathers every FSDP unit's padded flat twice per microbatch round
    (forward + backward regather, only when ``dp > 1``) and
    reduce-scatters each unit once per step.

The second half of the module feeds the *analytic* simulator
(:class:`repro.perf.TrainStepSimulator` with ``PerfParams.mesh``): per
workload-unit tensor-parallel gather payloads, stage-boundary activation
sizes, tp-shardable parameter fractions, mesh-aware group placements,
and a point-to-point transfer time (the collective cost model has no p2p
primitive; a boundary send is one alpha plus the payload over the link).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.cost_model import CollectiveCostModel, GroupPlacement
from repro.comm.world import World
from repro.core.config import (
    MAEConfig,
    ViTConfig,
    count_mae_params,
    count_vit_params,
    vit_block_params,
)
from repro.mesh.pipeline import partition_stages
from repro.mesh.spec import MeshSpec
from repro.perf.compute_model import BYTES_PER_PARAM

__all__ = [
    "AxisTraffic",
    "MeshTrafficPrediction",
    "UnitMeshProfile",
    "predict_mesh_traffic",
    "tp_traffic_per_micro",
    "pp_traffic_per_micro",
    "dp_traffic_per_step",
    "dp_unit_numels",
    "unit_mesh_profiles",
    "tp_shardable_fraction",
    "mesh_axis_placements",
    "pp_boundary_crosses_nodes",
    "p2p_seconds",
]

#: The executable engines run NumPy float64 end to end.
ENGINE_ITEMSIZE = 8


@dataclass(frozen=True)
class AxisTraffic:
    """Wire bytes and collective calls booked on one mesh axis."""

    bytes: float = 0.0
    calls: int = 0

    def scaled(self, factor: int) -> "AxisTraffic":
        """The same traffic repeated ``factor`` times."""
        return AxisTraffic(bytes=self.bytes * factor, calls=self.calls * factor)


@dataclass(frozen=True)
class MeshTrafficPrediction:
    """Predicted per-axis traffic of a whole run (``steps`` steps)."""

    tp: AxisTraffic
    pp: AxisTraffic
    dp: AxisTraffic

    def axis(self, name: str) -> AxisTraffic:
        """Traffic on axis ``name`` (``"tp"``/``"pp"``/``"dp"``)."""
        if name not in ("tp", "pp", "dp"):
            raise KeyError(f"unknown mesh axis {name!r}")
        return getattr(self, name)


@dataclass(frozen=True)
class _BlockStack:
    """A contiguous run of identical transformer blocks."""

    width: int
    mlp: int
    heads: int
    seq: int
    depth: int


def _stacks(model: ViTConfig | MAEConfig) -> list[_BlockStack]:
    """Block stacks of a workload, in pipeline order."""
    if isinstance(model, MAEConfig):
        enc = model.encoder
        return [
            _BlockStack(enc.width, enc.mlp, enc.heads, model.n_visible + 1, enc.depth),
            _BlockStack(
                model.dec_width,
                4 * model.dec_width,
                model.dec_heads,
                enc.n_patches + 1,
                model.dec_depth,
            ),
        ]
    return [_BlockStack(model.width, model.mlp, model.heads, model.seq_len, model.depth)]


def _block_gemm_params(width: int, mlp: int) -> int:
    """Parameters of the four tp-flagged GEMMs of one block (with biases)."""
    qkv = 3 * width * width + 3 * width
    proj = width * width + width
    fc1 = width * mlp + mlp
    fc2 = mlp * width + width
    return qkv + proj + fc1 + fc2


# -- engine-exact traffic (the reconciliation targets) ---------------------


def tp_traffic_per_micro(
    model: ViTConfig | MAEConfig,
    batch: int,
    itemsize: int = ENGINE_ITEMSIZE,
    fwd_passes: int = 1,
) -> AxisTraffic:
    """Tensor-parallel reassembly traffic of one microbatch.

    Each flagged GEMM's full (post-gather) output crosses the tp group
    once per pass: qkv ``R x 3W``, proj ``R x W``, fc1 ``R x M``, fc2
    ``R x W`` forward; each ``dx`` (``R x W`` except fc1's input grad
    fc2-side ``R x M``) backward. ``fwd_passes=2`` models the inline
    backend's recompute-before-backward when ``pp > 1``.
    """
    total_values = 0
    calls = 0
    for st in _stacks(model):
        rows = batch * st.seq
        fwd = rows * (5 * st.width + st.mlp)
        bwd = rows * (3 * st.width + st.mlp)
        total_values += st.depth * (fwd * fwd_passes + bwd)
        calls += st.depth * 4 * (fwd_passes + 1)
    return AxisTraffic(bytes=float(total_values * itemsize), calls=calls)


def pipeline_op_values(model: MAEConfig, batch: int) -> list[int]:
    """Output-activation value counts of each pipeline op, in order.

    Mirrors ``MaskedAutoencoder.pipeline_ops()``: ``[head] + enc blocks
    + [bridge] + dec blocks + [tail]``; head/encoder ops emit ``(B,
    1 + n_visible, W)``, bridge/decoder ops ``(B, 1 + n_patches,
    dec_width)``, and the tail terminates the pipeline (no output).
    """
    enc = model.encoder
    enc_v = batch * (model.n_visible + 1) * enc.width
    dec_v = batch * (enc.n_patches + 1) * model.dec_width
    return [enc_v] * (1 + enc.depth) + [dec_v] * (1 + model.dec_depth) + [0]


def pp_traffic_per_micro(
    model: MAEConfig, pp: int, batch: int, itemsize: int = ENGINE_ITEMSIZE
) -> AxisTraffic:
    """Pipeline boundary traffic of one microbatch at ``pp`` stages."""
    if not isinstance(model, MAEConfig):
        raise TypeError(
            "pipeline traffic needs a model exposing pipeline_ops(); "
            f"got {type(model).__name__} (only MAEConfig workloads pipeline)"
        )
    values = pipeline_op_values(model, batch)
    bounds = partition_stages(len(values), pp)
    boundary = sum(values[stop - 1] for _, stop in bounds[:-1])
    return AxisTraffic(bytes=float(2 * boundary * itemsize), calls=2 * (pp - 1))


def dp_unit_numels(model: ViTConfig | MAEConfig) -> list[int]:
    """Parameter counts of the FSDP wrap units, root first.

    Mirrors the default wrap policy (:func:`repro.core.sharding
    .default_wrap_units`): one unit per transformer block, everything
    else in the root unit.
    """
    if isinstance(model, MAEConfig):
        total = count_mae_params(model)
        enc = model.encoder
        blocks = [vit_block_params(enc.width, enc.mlp)] * enc.depth
        blocks += [
            vit_block_params(model.dec_width, 4 * model.dec_width)
        ] * model.dec_depth
    else:
        total = count_vit_params(model)
        blocks = [vit_block_params(model.width, model.mlp)] * model.depth
    return [total - sum(blocks)] + blocks


def dp_traffic_per_step(
    model: ViTConfig | MAEConfig,
    spec: MeshSpec,
    dp_strategy: str,
    grad_accum_steps: int,
    itemsize: int = ENGINE_ITEMSIZE,
) -> AxisTraffic:
    """Data-parallel traffic of one optimizer step.

    ``ddp``: one all-reduce of the concatenated full-model gradient,
    booked even at ``dp == 1`` (SimComm still performs the stacked-mean
    copy). ``full_shard``: per microbatch round, every unit's padded
    flat is all-gathered in forward and regathered in backward (skipped
    entirely at ``dp == 1``); per step, every unit's gradient is
    reduce-scattered once — fp32 wire, so payloads are the raw flats.
    """
    numels = dp_unit_numels(model)
    if dp_strategy == "ddp":
        return AxisTraffic(bytes=float(sum(numels) * itemsize), calls=1)
    if dp_strategy != "full_shard":
        raise ValueError(f"unknown dp strategy {dp_strategy!r}")
    padded = [-(-n // spec.dp) * spec.dp for n in numels]
    padded_bytes = float(sum(padded) * itemsize)
    gathers = 2 * grad_accum_steps * len(numels) if spec.dp > 1 else 0
    gather_bytes = 2 * grad_accum_steps * padded_bytes if spec.dp > 1 else 0.0
    return AxisTraffic(
        bytes=gather_bytes + padded_bytes, calls=gathers + len(numels)
    )


def predict_mesh_traffic(
    model: ViTConfig | MAEConfig,
    spec: MeshSpec,
    dp_strategy: str,
    steps: int,
    batch: int,
    micro_slots: int = 4,
    itemsize: int = ENGINE_ITEMSIZE,
) -> MeshTrafficPrediction:
    """Predict a mesh training run's per-axis wire bytes and calls.

    ``micro_slots`` is the *global* microbatch count per step (the mesh
    drivers fix it at 4 so every mesh consumes identical data); each of
    the ``dp`` replicas runs ``micro_slots / dp`` accumulation rounds.
    Tensor- and pipeline-axis traffic is booked once per microbatch
    execution — ``micro_slots`` of them per step across the world.
    """
    if micro_slots % spec.dp != 0:
        raise ValueError(
            f"dp={spec.dp} does not divide {micro_slots} micro slots"
        )
    k = micro_slots // spec.dp
    tp = AxisTraffic()
    if spec.tp > 1:
        tp = tp_traffic_per_micro(
            model, batch, itemsize, fwd_passes=2 if spec.pp > 1 else 1
        ).scaled(micro_slots * steps)
    pp = AxisTraffic()
    if spec.pp > 1:
        pp = pp_traffic_per_micro(model, spec.pp, batch, itemsize).scaled(
            micro_slots * steps
        )
    dp = dp_traffic_per_step(model, spec, dp_strategy, k, itemsize).scaled(steps)
    return MeshTrafficPrediction(tp=tp, pp=pp, dp=dp)


# -- analytic-simulator inputs (Frontier-scale extrapolation) --------------


@dataclass(frozen=True)
class UnitMeshProfile:
    """Mesh-relevant shape data of one workload unit (fp32 bytes).

    ``tp_fwd_payloads`` / ``tp_bwd_payloads`` are the per-gather
    reassembly payloads of one forward / backward pass over the unit
    (empty for the root unit — its GEMMs are not tp-sharded).
    ``out_bytes`` is the unit's output activation (what crosses a stage
    boundary placed after it); ``tp_param_fraction`` the share of the
    unit's parameters living in tp-sharded GEMMs.
    """

    tp_fwd_payloads: tuple[float, ...]
    tp_bwd_payloads: tuple[float, ...]
    out_bytes: float
    tp_param_fraction: float


def _block_profile(
    st: _BlockStack, local_batch: int, itemsize: int
) -> UnitMeshProfile:
    rows = local_batch * st.seq
    fwd = tuple(
        float(rows * n * itemsize)
        for n in (3 * st.width, st.width, st.mlp, st.width)
    )
    bwd = tuple(
        float(rows * n * itemsize)
        for n in (st.width, st.width, st.width, st.mlp)
    )
    return UnitMeshProfile(
        tp_fwd_payloads=fwd,
        tp_bwd_payloads=bwd,
        out_bytes=float(local_batch * st.seq * st.width * itemsize),
        tp_param_fraction=_block_gemm_params(st.width, st.mlp)
        / vit_block_params(st.width, st.mlp),
    )


def unit_mesh_profiles(
    model: ViTConfig | MAEConfig,
    local_batch: int,
    itemsize: int = BYTES_PER_PARAM,
) -> list[UnitMeshProfile]:
    """Per-unit mesh profiles, aligned with the ``*_workload_units`` order
    (root first, then every block in pipeline order)."""
    stacks = _stacks(model)
    first = stacks[0]
    root = UnitMeshProfile(
        tp_fwd_payloads=(),
        tp_bwd_payloads=(),
        out_bytes=float(local_batch * first.seq * first.width * itemsize),
        tp_param_fraction=0.0,
    )
    profiles = [root]
    for st in stacks:
        profiles.extend(_block_profile(st, local_batch, itemsize) for _ in range(st.depth))
    return profiles


def tp_shardable_fraction(model: ViTConfig | MAEConfig) -> float:
    """Share of all parameters living in tp-sharded GEMM weights."""
    total = (
        count_mae_params(model)
        if isinstance(model, MAEConfig)
        else count_vit_params(model)
    )
    shardable = sum(
        st.depth * _block_gemm_params(st.width, st.mlp) for st in _stacks(model)
    )
    return shardable / total


def mesh_axis_placements(world: World, spec: MeshSpec) -> dict[str, GroupPlacement]:
    """Group placements of the tp and dp axes on a machine.

    tp ranks are adjacent (innermost axis), so a tp group spans
    ``ceil(tp / ranks_per_node)`` nodes. dp members stride over tp
    blocks: ``max(1, ranks_per_node // tp)`` of them share a node, and
    when a dp ring crosses nodes it runs concurrently with the
    ``min(tp, ranks_per_node)`` sibling rings of the other tp indices,
    which share each NIC.
    """
    rpn = world.ranks_per_node
    tp_pl = GroupPlacement(
        group_size=spec.tp, nodes_spanned=max(1, -(-spec.tp // rpn)), nic_share=1
    )
    per_node = max(1, rpn // spec.tp)
    dp_nodes = max(1, min(spec.dp, -(-spec.dp // per_node)))
    dp_pl = GroupPlacement(
        group_size=spec.dp,
        nodes_spanned=dp_nodes,
        nic_share=min(spec.tp, rpn) if dp_nodes > 1 else 1,
    )
    return {"tp": tp_pl, "dp": dp_pl}


def pp_boundary_crosses_nodes(world: World, spec: MeshSpec) -> bool:
    """Whether neighbouring pipeline stages live on different nodes.

    Stages stride over whole ``dp x tp`` planes, so the boundary leaves
    the node as soon as one plane fills it.
    """
    return spec.pp > 1 and spec.dp * spec.tp >= world.ranks_per_node


def p2p_seconds(
    cost_model: CollectiveCostModel,
    nbytes: float,
    crosses_nodes: bool,
    wire_dtype: str = "fp32",
) -> float:
    """Point-to-point activation transfer time (pipeline boundary send).

    The collective cost model has no p2p primitive; a boundary send is
    one launch, one hop latency, and the payload over the link — NIC for
    cross-node neighbours, Infinity Fabric otherwise.
    """
    from repro.precision.bf16 import wire_fraction

    if nbytes <= 0:
        return 0.0
    bw = cost_model.inter_node_bw if crosses_nodes else cost_model.intra_node_bw
    alpha = (
        cost_model.inter_node_alpha if crosses_nodes else cost_model.intra_node_alpha
    )
    return cost_model.launch_overhead + alpha + wire_fraction(wire_dtype) * nbytes / bw
