"""End-to-end training-step simulator (drives Figures 1-4).

Combines the compute model, collective cost model, schedule builder,
memory model, and IO model into one object that answers: *for this model,
on this many Frontier nodes, under this sharding strategy, what does one
training step look like?*
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.comm.world import World
from repro.core.config import MAEConfig, ViTConfig
from repro.core.sharding import BackwardPrefetch, ShardingStrategy
from repro.hardware.frontier import Machine
from repro.hardware.power import PowerModel, PowerTrace
from repro.mesh.pipeline import partition_stages
from repro.mesh.spec import MeshSpec
from repro.perf.compute_model import (
    BYTES_PER_PARAM,
    mae_workload_units,
    vit_workload_units,
)
from repro.perf.io_model import IoModel
from repro.perf.memory_model import MemoryBreakdown, memory_breakdown
from repro.perf.mesh_model import (
    mesh_axis_placements,
    p2p_seconds,
    pp_boundary_crosses_nodes,
    unit_mesh_profiles,
)
from repro.perf.schedule import (
    MeshCommPlan,
    ScheduleParams,
    StepSchedule,
    TpUnitComm,
    build_step_schedule,
    compose_pipeline,
    pipeline_bubble_fraction,
)

__all__ = ["PerfParams", "StepBreakdown", "TrainStepSimulator"]

#: Bytes touched per parameter by a fused AdamW step (read p/g/m/v, write
#: p/m/v at fp32).
_ADAMW_BYTES_PER_PARAM = 28
#: Fixed per-step host-side overhead (python loop, dataloader handoff).
_HOST_OVERHEAD_S = 5e-3
#: Throughput tax of the real data pipeline vs cached synthetic inputs.
_DATALOADER_OVERHEAD = 0.04


@dataclass(frozen=True)
class PerfParams:
    """User-facing simulation knobs.

    The reallocation-pressure parameters model a measured Frontier
    pathology the paper's Fig. 4 observations hinge on: strategies that
    re-materialize parameters every step (FULL_SHARD and HYBRID with
    shard groups > 1) continuously allocate and free large buffers; when
    resident memory is a large fraction of HBM, the caching allocator
    falls back to slow synchronous frees and the whole step slows down.
    Statically-allocated strategies (NO_SHARD, DDP, HYBRID_1GPU, and
    SHARD_GRAD_OP's resident parameters) are immune — which is exactly
    why the paper can run a 60 GB-resident ViT-3B fastest with
    HYBRID_1GPU (Fig. 3) while the ViT-5B's HYBRID_2GPUs (memory-tight)
    loses to HYBRID_8GPUs (memory-light) at scale (Fig. 4).
    """

    local_batch: int = 32
    prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE
    limit_all_gathers: bool = True
    schedule: ScheduleParams = ScheduleParams()
    #: Training precision: "fp32" or "bf16". bf16 halves every collective
    #: payload (wire dtype) and the activation/transient widths in the
    #: memory model; the optimizer step stays fp32-bound (master-weight
    #: update traffic is unchanged, see ``_ADAMW_BYTES_PER_PARAM``).
    precision: str = "fp32"
    #: Microbatch rounds per optimizer step. Affects the memory model
    #: only (the unsharded fp32 accumulation buffer): per-step comm and
    #: compute are modeled per microbatch round, which accumulation does
    #: not change.
    grad_accum_steps: int = 1
    #: HBM-occupancy fraction above which reallocation slowdown kicks in.
    realloc_pressure_threshold: float = 0.55
    #: Compute-time inflation at 100% HBM occupancy (quadratic ramp).
    realloc_penalty: float = 6.0
    #: Mesh composition (tp x pp x dp). ``None`` keeps the historical
    #: dp-only model. When set, ``mesh.size`` must equal the machine's
    #: world size and the dp sharding ``strategy`` applies over the dp
    #: axis only.
    mesh: MeshSpec | None = None
    #: Microbatches in flight per pipelined step; ``0`` resolves to
    #: ``max(pp, grad_accum_steps)`` (enough micros to fill the pipe).
    pipeline_micros: int = 0

    def resolved_micros(self) -> int:
        """Microbatch rounds of one optimizer step under the mesh."""
        if self.pipeline_micros:
            return self.pipeline_micros
        pp = self.mesh.pp if self.mesh is not None else 1
        return max(pp, self.grad_accum_steps)

    def resolved_schedule(self, optimizer_seconds: float) -> ScheduleParams:
        """Schedule params with prefetch/limit/precision/optimizer applied."""
        return replace(
            self.schedule,
            prefetch=self.prefetch,
            limit_all_gathers=self.limit_all_gathers,
            optimizer_seconds=optimizer_seconds,
            wire_dtype=self.precision,
        )


@dataclass(frozen=True)
class StepBreakdown:
    """Everything the paper reports about one training step."""

    step_time_s: float  # 'syn': compute + communication, cached data
    step_time_no_comm_s: float  # 'syn no comm'
    io_step_time_s: float  # dataloader-only time per step ('IO')
    real_step_time_s: float  # 'real': full application
    comm_seconds: float
    exposed_comm_seconds: float
    comm_calls: int
    compute_seconds: float
    world_size: int
    local_batch: int
    memory: MemoryBreakdown
    #: Images consumed per optimizer step; ``0`` means the historical
    #: dp-only convention (``world_size * local_batch``). Mesh steps set
    #: it explicitly (only dp replicas consume data, times the
    #: microbatch rounds in flight).
    images_per_step: int = 0
    #: Pipeline fill/drain share of the step (0.0 without a mesh).
    bubble_fraction: float = 0.0
    #: Predicted per-axis communication seconds ("tp"/"pp"/"dp").
    axis_comm_seconds: dict = field(default_factory=dict)

    def _ips(self, t: float) -> float:
        # 0.0 (not inf) for degenerate non-positive times: a step that
        # "takes no time" delivers no images, and downstream tables must
        # stay finite.
        if t <= 0:
            return 0.0
        images = self.images_per_step or self.world_size * self.local_batch
        return images / t

    @property
    def ips(self) -> float:
        """Global images/second of the synthetic (compute+comm) run."""
        return self._ips(self.step_time_s)

    @property
    def ips_no_comm(self) -> float:
        """Images/second without communication ('syn no comm')."""
        return self._ips(self.step_time_no_comm_s)

    @property
    def ips_io(self) -> float:
        """Images/second of the dataloader alone ('IO')."""
        return self._ips(self.io_step_time_s)

    @property
    def ips_real(self) -> float:
        """Images/second of the full application ('real')."""
        return self._ips(self.real_step_time_s)

    @property
    def comm_fraction(self) -> float:
        """Share of the synthetic step lost to (exposed) communication."""
        return self.exposed_comm_seconds / self.step_time_s if self.step_time_s else 0.0

    @property
    def compute_occupancy(self) -> float:
        """Share of the step spent computing (0.0 for zero-time steps)."""
        if self.step_time_s <= 0:
            return 0.0
        return min(1.0, self.compute_seconds / self.step_time_s)

    @property
    def comm_occupancy(self) -> float:
        """Fraction of the step with communication in flight.

        Defined so that ``compute_occupancy + max(0, comm_occupancy -
        compute_occupancy)`` — the power model's busy fraction — equals
        the schedule's true busy share (compute plus *exposed*
        communication); overlapped communication is already inside the
        compute span. 0.0 for degenerate zero-time steps.
        """
        if self.step_time_s <= 0:
            return 0.0
        return min(
            1.0,
            self.compute_occupancy + self.exposed_comm_seconds / self.step_time_s,
        )


class TrainStepSimulator:
    """Simulates one training step of a ViT or MAE workload.

    Parameters
    ----------
    model:
        A :class:`ViTConfig` (plain encoder training, paper Figs. 2-4) or
        :class:`MAEConfig` (pretraining workload, paper Fig. 1).
    machine:
        A machine slice from :func:`repro.hardware.frontier_machine`.
    strategy / shard_size:
        Sharding configuration (shard_size for HYBRID_SHARD only).
    params:
        Simulation knobs (local batch, prefetch policy, ...).
    io:
        Dataloader model for the 'IO' and 'real' curves.
    """

    def __init__(
        self,
        model: ViTConfig | MAEConfig,
        machine: Machine,
        strategy: ShardingStrategy,
        shard_size: int | None = None,
        params: PerfParams | None = None,
        io: IoModel | None = None,
    ):
        self.model = model
        self.machine = machine
        self.strategy = strategy
        self.shard_size = shard_size
        self.params = params if params is not None else PerfParams()
        self.io = io if io is not None else IoModel()
        self.world = machine.world()
        if isinstance(model, MAEConfig):
            self.units = mae_workload_units(
                model, self.params.local_batch, machine.gpu
            )
        else:
            self.units = vit_workload_units(
                model, self.params.local_batch, machine.gpu
            )
        self.mesh = self.params.mesh
        if self.mesh is not None:
            if self.mesh.size != self.world.size:
                raise ValueError(
                    f"mesh {self.mesh.describe()} needs {self.mesh.size} ranks "
                    f"but the machine slice has {self.world.size}"
                )
            if self.mesh.pp > len(self.units):
                raise ValueError(
                    f"pp={self.mesh.pp} exceeds the {len(self.units)} "
                    "workload units available to partition"
                )
        mult = self._realloc_multiplier()
        if mult > 1.0:
            self.units = [
                replace(u, fwd_seconds=u.fwd_seconds * mult) for u in self.units
            ]

    def _realloc_multiplier(self) -> float:
        """Compute-time inflation from allocator churn under HBM pressure."""
        reallocating = self.strategy is ShardingStrategy.FULL_SHARD or (
            self.strategy is ShardingStrategy.HYBRID_SHARD
            and (self.shard_size or 1) > 1
        )
        if not reallocating:
            return 1.0
        pressure = self.memory().total / self.machine.gpu.hbm_bytes
        thresh = self.params.realloc_pressure_threshold
        if pressure <= thresh:
            return 1.0
        x = min(1.0, (pressure - thresh) / (1.0 - thresh))
        return 1.0 + self.params.realloc_penalty * x * x

    # -- pieces --------------------------------------------------------------

    def total_param_bytes(self) -> int:
        """Parameter bytes across all workload units."""
        return sum(u.param_bytes for u in self.units)

    def _local_state_params(self) -> float:
        """Parameters whose optimizer state this rank owns."""
        if self.mesh is not None:
            # This rank holds one stage's tp shard; dp sharding divides
            # further below.
            stage_units, _, _ = self._mesh_stage()
            total = sum(u.param_bytes for u in stage_units) / BYTES_PER_PARAM
            dp_size = self.mesh.dp
        else:
            total = self.total_param_bytes() / BYTES_PER_PARAM
            dp_size = self.world.size
        if self.strategy in (ShardingStrategy.NO_SHARD, ShardingStrategy.DDP):
            return total
        if self.strategy in (
            ShardingStrategy.FULL_SHARD,
            ShardingStrategy.SHARD_GRAD_OP,
        ):
            return total / dp_size
        if self.strategy is ShardingStrategy.HYBRID_SHARD:
            if self.shard_size is None:
                raise ValueError("HYBRID_SHARD requires shard_size")
            return total / self.shard_size
        raise ValueError(f"unknown strategy {self.strategy}")

    def optimizer_seconds(self) -> float:
        """HBM-bound AdamW step time on this rank's parameter shard."""
        return (
            self._local_state_params()
            * _ADAMW_BYTES_PER_PARAM
            / self.machine.gpu.hbm_bw
        )

    def _mesh_stage(self):
        """(scaled units, profiles, boundary bytes) of the heaviest stage.

        Stage selection partitions the workload units exactly as the
        engine partitions pipeline ops (earlier stages take the
        remainder) and times the busiest one — the pipeline clocks at
        the slowest stage. Tensor parallelism divides each block unit's
        GEMM compute and its tp-shardable parameter bytes ``tp`` ways;
        the root unit (embeddings/norms/heads) is replicated.
        """
        cached = getattr(self, "_mesh_stage_cache", None)
        if cached is not None:
            return cached
        mesh = self.mesh
        bounds = partition_stages(len(self.units), mesh.pp)
        sums = [sum(u.fwd_seconds for u in self.units[a:b]) for a, b in bounds]
        idx = max(range(len(bounds)), key=lambda s: sums[s])
        a, b = bounds[idx]
        profiles = unit_mesh_profiles(self.model, self.params.local_batch)
        stage_units, stage_profiles = [], []
        for u, prof in zip(self.units[a:b], profiles[a:b]):
            if mesh.tp > 1 and prof.tp_fwd_payloads:
                f = prof.tp_param_fraction
                u = replace(
                    u,
                    fwd_seconds=u.fwd_seconds / mesh.tp,
                    param_bytes=int(
                        round(u.param_bytes * ((1.0 - f) + f / mesh.tp))
                    ),
                )
            stage_units.append(u)
            stage_profiles.append(prof)
        in_bytes = profiles[a - 1].out_bytes if idx > 0 else 0.0
        out_bytes = profiles[b - 1].out_bytes if idx < mesh.pp - 1 else 0.0
        self._mesh_stage_cache = (stage_units, stage_profiles, (in_bytes, out_bytes))
        return self._mesh_stage_cache

    def _build_mesh_schedule(self) -> StepSchedule:
        """One pipelined mesh step: dp graph + injected tp/pp comm + bubble."""
        mesh = self.mesh
        stage_units, stage_profiles, (in_bytes, out_bytes) = self._mesh_stage()
        cost = self.machine.cost_model
        wire = self.params.precision
        tp_units: tuple[TpUnitComm, ...] = ()
        if mesh.tp > 1:
            tp_pl = mesh_axis_placements(self.world, mesh)["tp"]
            tp_units = tuple(
                TpUnitComm(
                    fwd_seconds=sum(
                        cost.all_gather(pb, tp_pl, wire)
                        for pb in prof.tp_fwd_payloads
                    ),
                    bwd_seconds=sum(
                        cost.all_gather(pb, tp_pl, wire)
                        for pb in prof.tp_bwd_payloads
                    ),
                    fwd_calls=len(prof.tp_fwd_payloads),
                    bwd_calls=len(prof.tp_bwd_payloads),
                )
                for prof in stage_profiles
            )
        crosses = pp_boundary_crosses_nodes(self.world, mesh)
        plan = MeshCommPlan(
            tp_units=tp_units,
            pp_in_seconds=p2p_seconds(cost, in_bytes, crosses, wire),
            pp_out_seconds=p2p_seconds(cost, out_bytes, crosses, wire),
            reduce_per_step=True,
            dp_nic_share=(
                min(mesh.tp, self.world.ranks_per_node) if mesh.tp > 1 else 1
            ),
        )
        # The dp axis strides over tp blocks: its members pack
        # ranks_per_node // tp to a node.
        dp_world = World(
            size=mesh.dp,
            ranks_per_node=max(1, self.world.ranks_per_node // mesh.tp),
        )
        sched = build_step_schedule(
            units=stage_units,
            strategy=self.strategy,
            world=dp_world,
            cost_model=cost,
            shard_size=self.shard_size,
            params=self.params.resolved_schedule(0.0),
            mesh=plan,
        )
        return compose_pipeline(
            sched,
            n_micro=self.params.resolved_micros(),
            pp=mesh.pp,
            optimizer_seconds=self.optimizer_seconds(),
        )

    def build_schedule(self) -> StepSchedule:
        """Build this configuration's one-step task graph."""
        if self.mesh is not None:
            return self._build_mesh_schedule()
        return build_step_schedule(
            units=self.units,
            strategy=self.strategy,
            world=self.world,
            cost_model=self.machine.cost_model,
            shard_size=self.shard_size,
            params=self.params.resolved_schedule(self.optimizer_seconds()),
        )

    def memory(self) -> MemoryBreakdown:
        """Per-GPU memory breakdown of this configuration."""
        return memory_breakdown(
            self.model,
            self.strategy,
            world_size=self.world.size,
            shard_size=self.shard_size,
            local_batch=self.params.local_batch,
            precision=self.params.precision,
            grad_accum_steps=self.params.grad_accum_steps,
            mesh=self.mesh,
            pipeline_micros=(
                self.params.resolved_micros() if self.mesh is not None else 1
            ),
        )

    # -- the answer ------------------------------------------------------------

    def simulate(self) -> StepBreakdown:
        """Time one training step; returns the full breakdown."""
        sched = self.build_schedule()
        syn = sched.step_time + _HOST_OVERHEAD_S
        no_comm = sched.step_time_no_comm + _HOST_OVERHEAD_S
        if self.mesh is not None:
            # Only dp-replica ranks consume data; a step drains
            # resolved_micros() microbatches per replica.
            micros = self.params.resolved_micros()
            images = self.mesh.dp * micros * self.params.local_batch
            io_t = self.io.step_time(
                micros * self.params.local_batch, max(1, self.mesh.dp)
            )
            bubble = pipeline_bubble_fraction(micros, self.mesh.pp)
        else:
            images = 0  # historical world * local_batch convention
            io_t = self.io.step_time(self.params.local_batch, self.world.size)
            bubble = 0.0
        real = max(syn, io_t) * (1.0 + _DATALOADER_OVERHEAD)
        return StepBreakdown(
            step_time_s=syn,
            step_time_no_comm_s=no_comm,
            io_step_time_s=io_t,
            real_step_time_s=real,
            comm_seconds=sched.step_comm_seconds,
            exposed_comm_seconds=sched.exposed_comm_seconds,
            comm_calls=sched.step_comm_calls,
            compute_seconds=sched.step_compute_seconds,
            world_size=self.world.size,
            local_batch=self.params.local_batch,
            memory=self.memory(),
            images_per_step=images,
            bubble_fraction=bubble,
            axis_comm_seconds=sched.step_axis_comm_seconds(),
        )

    def power_trace(
        self, n_steps: int = 50, label: str | None = None, power: PowerModel | None = None
    ) -> PowerTrace:
        """rocm-smi-style trace of this configuration (paper Fig. 4 panel)."""
        bd = self.simulate()
        pm = power if power is not None else PowerModel()
        return pm.trace(
            step_time_s=bd.step_time_s,
            compute_occupancy=bd.compute_occupancy,
            comm_occupancy=bd.comm_occupancy,
            memory_bytes=bd.memory.total,
            n_steps=n_steps,
            label=label or f"{self.strategy.value}",
        )
