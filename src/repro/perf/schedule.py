"""Builds the per-step task graph for one strategy + prefetch policy.

One training step is simulated from the perspective of a representative
rank (the workload is SPMD-homogeneous): a ``compute`` stream runs the
forward/backward of each FSDP unit, and a ``comm`` stream runs the
collectives the strategy prescribes:

==============  ==========================================================
strategy        collectives per unit per step
==============  ==========================================================
NO_SHARD        all-reduce(grad) in backward
DDP             all-reduce per *bucket* (25 MB default) in backward
FULL_SHARD      all-gather(params) in forward, all-gather(params) again in
                backward, reduce-scatter(grad)
SHARD_GRAD_OP   all-gather(params) in forward only, reduce-scatter(grad)
HYBRID(s)       all-gather / reduce-scatter inside the shard group (fwd +
                bwd regather like FULL_SHARD when s > 1), then an
                all-reduce of the grad shard across replica groups
==============  ==========================================================

Overlap realism: on the MI250X, RCCL kernels contend with the matrix
pipeline for HBM bandwidth and CUs, so communication is only partially
hideable. Each collective is therefore split into an overlappable part
(on the ``comm`` stream) and a serialized part of
``comm_compute_contention x duration`` on the ``compute`` stream; the
collective's consumers depend on the serialized part. The paper's Fig. 1
measurement — communication ~22% of the step at 64 nodes, i.e. almost
fully exposed — is what calibrates the contention factor high.

Backward prefetch (paper Fig. 2) controls when the *next* unit's
parameter all-gather is issued relative to the current unit's
reduce-scatter: ``BACKWARD_PRE`` enqueues it before the reduce-scatter as
soon as the previous gather completed (most overlap), ``BACKWARD_POST``
after the reduce-scatter enqueue, ``NONE`` only after the reduce-scatter
finished. ``limit_all_gathers`` rate-limits in-flight gathers; running
without it trades rate-limit delays for allocator stalls on the compute
stream plus congestion on the oversubscribed gathers.

Mesh composition: with a :class:`MeshCommPlan` the same per-microbatch
graph additionally carries the tensor-parallel reassembly gathers (one
comm task per unit per direction, serialized with the unit's compute —
the engine's gathers are blocking) and the pipeline boundary transfers
(activation recv before the first forward, send after the last; the
mirrored gradient pair around backward). The gradient reduction then
moves out of the microbatch graph into a per-step *tail*
(``reduce_per_step``): with accumulation the engines reduce once per
optimizer step, not per round. :func:`compose_pipeline` scales the
per-microbatch makespan by ``n_micro + pp - 1`` rounds — the gpipe/1f1b
fill-drain bubble; both schedules share it, they differ only in
activation liveness, which the memory model prices — and appends the
tail (reduction + optimizer) once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.comm.bucketing import DEFAULT_BUCKET_CAP_BYTES, bucket_gradients
from repro.comm.cost_model import CollectiveCostModel, GroupPlacement
from repro.comm.world import World
from repro.core.sharding import BackwardPrefetch, ShardingStrategy
from repro.perf.compute_model import UnitCost
from repro.perf.events import Timeline

__all__ = [
    "ScheduleParams",
    "StepSchedule",
    "TpUnitComm",
    "MeshCommPlan",
    "build_step_schedule",
    "compose_pipeline",
    "pipeline_bubble_fraction",
    "shard_group_placement",
    "replica_group_placement",
]

#: Granularity used to emulate per-tensor gradient readiness inside DDP
#: buckets (real tensors are finer than whole transformer blocks).
_DDP_PSEUDO_TENSOR_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class ScheduleParams:
    """Calibration knobs of the step schedule (rationale in DESIGN.md)."""

    prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE
    limit_all_gathers: bool = True
    #: Fraction of each collective's duration serialized onto compute
    #: (HBM/CU contention); calibrated against Fig. 1's exposed ~22%.
    comm_compute_contention: float = 0.90
    #: Host allocator stall per unrestricted in-flight gather.
    alloc_stall_s: float = 4.0e-4
    #: Gather-duration inflation when limit_all_gathers is off.
    congestion_factor: float = 0.18
    #: Duration inflation of NO_SHARD's all-reduces relative to the
    #: HYBRID_1GPU path (the paper finds HYBRID_1GPU consistently faster
    #: than the algorithmically-identical NO_SHARD; we attribute the
    #: measured gap to NO_SHARD's legacy flat-parameter reduce path).
    noshard_comm_inflation: float = 1.10
    #: Same-spirit inflation for DDP's hook-driven bucket all-reduce path.
    ddp_comm_inflation: float = 1.18
    #: In-flight gather window when limit_all_gathers is on.
    gather_window: int = 2
    ddp_bucket_cap_bytes: int = DEFAULT_BUCKET_CAP_BYTES
    #: HBM bandwidth used for DDP's bucket coalesce/scatter copies
    #: (grads are copied into and out of each bucket's flat buffer).
    ddp_copy_bw: float = 1.6e12
    #: Seconds of optimizer compute appended at the end of the step
    #: (set by the simulator from the sharded state size).
    optimizer_seconds: float = 0.0
    #: On-wire dtype of parameter gathers and gradient reductions
    #: ("fp32" or "bf16"; bf16 halves every collective payload while the
    #: latency/launch terms stay put — small collectives stay
    #: launch-bound, matching why bf16 helps bandwidth-bound strategies
    #: most).
    wire_dtype: str = "fp32"


@dataclass(frozen=True)
class TpUnitComm:
    """Tensor-parallel reassembly cost of one unit, one microbatch."""

    fwd_seconds: float = 0.0
    bwd_seconds: float = 0.0
    fwd_calls: int = 0
    bwd_calls: int = 0


@dataclass(frozen=True)
class MeshCommPlan:
    """Per-microbatch tp/pp communication injected into the dp graph.

    ``tp_units`` aligns with the builder's ``units`` (empty disables tp
    injection). ``pp_in_seconds``/``pp_in_bytes`` describe the boundary
    activation arriving from the previous stage, ``pp_out_*`` the one
    leaving toward the next; the same payloads cross back as gradients
    in backward. ``reduce_per_step`` moves the gradient reduction out of
    the microbatch graph into the step tail (gradient accumulation
    reduces once per optimizer step). ``dp_nic_share`` inflates the
    dp collectives' NIC contention by the concurrent sibling rings of
    the inner tp axis.
    """

    tp_units: tuple[TpUnitComm, ...] = ()
    pp_in_seconds: float = 0.0
    pp_out_seconds: float = 0.0
    reduce_per_step: bool = False
    dp_nic_share: int = 1


@dataclass
class StepSchedule:
    """Built task graph plus aggregate accounting.

    The timeline and the ``comm_/compute_/stall_seconds`` aggregates
    describe *one microbatch round*; ``rounds``, ``bubble_rounds`` and
    the tail fields (set by :func:`compose_pipeline`) lift them to a
    full optimizer step. The defaults (one round, no bubble, no tail)
    keep the historical single-round semantics unchanged.
    """

    timeline: Timeline
    comm_seconds: float = 0.0
    comm_calls: int = 0
    compute_seconds: float = 0.0  # pure compute incl. optimizer, no stalls
    stall_seconds: float = 0.0
    notes: dict = field(default_factory=dict)
    #: Microbatch rounds per optimizer step (pipeline: micros in flight).
    rounds: int = 1
    #: Extra fill/drain rounds of the pipeline bubble (``pp - 1``).
    bubble_rounds: int = 0
    #: Per-step compute tail (optimizer) appended after the last round.
    tail_seconds: float = 0.0
    #: Per-step communication tail (deferred gradient reduction).
    tail_comm_seconds: float = 0.0
    tail_comm_calls: int = 0
    #: Per-round comm seconds by mesh axis ("tp"/"pp"/"dp").
    axis_comm_seconds: dict = field(default_factory=dict)

    @property
    def pipeline_rounds(self) -> int:
        """Wall-clock rounds of one step, bubble included."""
        return self.rounds + self.bubble_rounds

    @property
    def step_time(self) -> float:
        """Makespan of one step (the paper's 'syn' time)."""
        return (
            self.timeline.makespan() * self.pipeline_rounds
            + self.tail_comm_seconds
            + self.tail_seconds
        )

    @property
    def step_time_no_comm(self) -> float:
        """The paper's 'syn no comm' configuration: compute only.

        A wall time: the pipeline bubble persists without communication
        (stages still wait on upstream compute), so the per-round
        compute scales by the bubble-inclusive round count.
        """
        return self.compute_seconds * self.pipeline_rounds + self.tail_seconds

    @property
    def exposed_comm_seconds(self) -> float:
        """Step time beyond pure compute (exposed communication)."""
        return max(0.0, self.step_time - self.step_time_no_comm)

    @property
    def step_comm_seconds(self) -> float:
        """Comm seconds of a full step (live rounds plus the tail)."""
        return self.comm_seconds * self.rounds + self.tail_comm_seconds

    @property
    def step_comm_calls(self) -> int:
        """Collective calls of a full step."""
        return self.comm_calls * self.rounds + self.tail_comm_calls

    @property
    def step_compute_seconds(self) -> float:
        """Busy compute seconds of a full step (no bubble idle time)."""
        return self.compute_seconds * self.rounds + self.tail_seconds

    def step_axis_comm_seconds(self) -> dict:
        """Per-step comm seconds by mesh axis (tail counts toward dp)."""
        out = {
            axis: s * self.rounds for axis, s in self.axis_comm_seconds.items()
        }
        if self.tail_comm_seconds:
            out["dp"] = out.get("dp", 0.0) + self.tail_comm_seconds
        return out


def pipeline_bubble_fraction(n_micro: int, pp: int) -> float:
    """Idle share of the gpipe/1f1b pipeline: ``(pp-1) / (m + pp - 1)``."""
    if n_micro < 1:
        raise ValueError(f"n_micro must be >= 1, got {n_micro}")
    if pp < 1:
        raise ValueError(f"pp must be >= 1, got {pp}")
    return (pp - 1) / (n_micro + pp - 1)


def compose_pipeline(
    sched: StepSchedule,
    n_micro: int,
    pp: int,
    optimizer_seconds: float = 0.0,
) -> StepSchedule:
    """Lift a per-microbatch schedule to a pipelined optimizer step.

    Scales the round count to ``n_micro`` live rounds plus the ``pp - 1``
    fill/drain bubble rounds and appends the optimizer tail. The bubble
    round count is schedule-independent (gpipe and 1f1b differ in
    activation liveness, not bubble area — the memory model prices
    that); validation is delegated to :func:`pipeline_bubble_fraction`.
    """
    pipeline_bubble_fraction(n_micro, pp)  # validates arguments
    return replace(
        sched,
        rounds=n_micro,
        bubble_rounds=pp - 1,
        tail_seconds=sched.tail_seconds + optimizer_seconds,
    )


def shard_group_placement(world: World, shard_size: int) -> GroupPlacement:
    """Placement of one contiguous shard group."""
    nodes = -(-shard_size // world.ranks_per_node)
    return GroupPlacement(group_size=shard_size, nodes_spanned=nodes, nic_share=1)


def replica_group_placement(world: World, shard_size: int) -> GroupPlacement:
    """Placement of one replica (gradient all-reduce) group.

    There are ``shard_size`` such groups running concurrently, so when
    they span nodes each NIC is shared by ``min(shard_size,
    ranks_per_node)`` rings.
    """
    members = world.size // shard_size
    if members == 1:
        return GroupPlacement(group_size=1, nodes_spanned=1)
    if shard_size >= world.ranks_per_node:
        nodes = members  # one member per shard group, each on its own node(s)
    else:
        nodes = world.n_nodes
    nodes = max(1, min(nodes, members))
    nic_share = min(shard_size, world.ranks_per_node) if nodes > 1 else 1
    return GroupPlacement(group_size=members, nodes_spanned=nodes, nic_share=nic_share)


def world_placement(world: World) -> GroupPlacement:
    """Placement of a collective spanning the whole world."""
    return GroupPlacement(
        group_size=world.size, nodes_spanned=world.n_nodes, nic_share=1
    )


class _StepBuilder:
    def __init__(
        self,
        world: World,
        cost_model: CollectiveCostModel,
        params: ScheduleParams,
    ):
        self.tl = Timeline()
        self.world = world
        self.cost = cost_model
        self.p = params
        self.comm_seconds = 0.0
        self.comm_calls = 0
        self.compute_seconds = 0.0
        self.stall_seconds = 0.0
        self.tail_comm_seconds = 0.0
        self.tail_comm_calls = 0
        self.axis_seconds: dict[str, float] = {}

    def add_compute(self, name: str, duration: float, deps=()) -> int:
        self.compute_seconds += duration
        return self.tl.add(name, "compute", duration, deps)

    def add_stall(self, name: str, duration: float) -> int:
        self.stall_seconds += duration
        return self.tl.add(name, "compute", duration)

    def add_comm(
        self, name: str, duration: float, deps=(), axis: str = "dp", calls: int = 1
    ) -> int:
        """Add a collective; returns the id its consumers must depend on.

        The collective occupies the comm stream for its full duration
        (consumers wait on that). Its HBM/CU contention is modeled as an
        additional dependency-free task of ``kappa x duration`` on the
        compute stream at the issue point: concurrent compute slows down
        by the contention share, but is never head-of-line blocked behind
        the wire transfer itself. ``calls`` lets one task stand for a
        burst of collectives (tp issues one gather per sharded GEMM).
        """
        self.comm_seconds += duration
        self.comm_calls += calls
        self.axis_seconds[axis] = self.axis_seconds.get(axis, 0.0) + duration
        wire = self.tl.add(name, "comm", duration, deps)
        kappa = self.p.comm_compute_contention
        if kappa > 0.0:
            self.tl.add(f"{name}#x", "compute", duration * kappa)
        return wire

    def add_tail_comm(self, duration: float, calls: int = 1) -> None:
        """Book a per-step collective into the tail (no per-round task).

        Used for the deferred gradient reduction under accumulation: it
        runs once after the last microbatch round, fully exposed (the
        backward it could overlap with is already done).
        """
        self.tail_comm_seconds += duration
        self.tail_comm_calls += calls


def build_step_schedule(
    units: list[UnitCost],
    strategy: ShardingStrategy,
    world: World,
    cost_model: CollectiveCostModel,
    shard_size: int | None = None,
    params: ScheduleParams | None = None,
    mesh: MeshCommPlan | None = None,
) -> StepSchedule:
    """Assemble the task graph of one training step.

    ``units`` come from :mod:`repro.perf.compute_model`; ``shard_size`` is
    required for ``HYBRID_SHARD`` and ignored (implied) otherwise. With a
    ``mesh`` plan the graph describes one *microbatch round* of one
    pipeline stage (``units`` are that stage's slice; ``world`` is the
    dp axis), carrying the injected tp/pp communication; compose it into
    a full step with :func:`compose_pipeline`.
    """
    p = params if params is not None else ScheduleParams()
    if mesh is not None and mesh.tp_units and len(mesh.tp_units) != len(units):
        raise ValueError(
            f"mesh plan has {len(mesh.tp_units)} tp unit entries for "
            f"{len(units)} units"
        )
    if strategy in (ShardingStrategy.NO_SHARD, ShardingStrategy.DDP):
        s = 1
    elif strategy in (ShardingStrategy.FULL_SHARD, ShardingStrategy.SHARD_GRAD_OP):
        s = world.size
    elif strategy is ShardingStrategy.HYBRID_SHARD:
        if shard_size is None:
            raise ValueError("HYBRID_SHARD requires shard_size")
        if world.size % shard_size != 0:
            raise ValueError(
                f"world size {world.size} not divisible by shard size {shard_size}"
            )
        s = shard_size
    else:
        raise ValueError(f"unknown strategy {strategy}")

    b = _StepBuilder(world, cost_model, p)
    sharded = s > 1
    regather_in_backward = sharded and strategy in (
        ShardingStrategy.FULL_SHARD,
        ShardingStrategy.HYBRID_SHARD,
    )
    shard_pl = shard_group_placement(world, s) if sharded else None
    replica_pl = (
        replica_group_placement(world, s)
        if strategy in (ShardingStrategy.HYBRID_SHARD,)
        else None
    )
    world_pl = world_placement(world)
    if mesh is not None and mesh.dp_nic_share > 1:
        # Sibling dp rings (one per inner-axis index) share every NIC.
        def _contended(pl: GroupPlacement | None) -> GroupPlacement | None:
            if pl is None or not pl.crosses_nodes:
                return pl
            return replace(pl, nic_share=max(pl.nic_share, mesh.dp_nic_share))

        shard_pl = _contended(shard_pl)
        replica_pl = _contended(replica_pl)
        world_pl = _contended(world_pl)
    gather_infl = 1.0 if p.limit_all_gathers else 1.0 + p.congestion_factor
    tp_units = mesh.tp_units if mesh is not None else ()
    reduce_per_step = mesh is not None and mesh.reduce_per_step

    def tp_after(i: int, kind: str, cid: int) -> int:
        """Serialize unit ``i``'s tp reassembly gathers behind its compute."""
        if not tp_units:
            return cid
        tc = tp_units[i]
        dur = tc.fwd_seconds if kind == "f" else tc.bwd_seconds
        calls = tc.fwd_calls if kind == "f" else tc.bwd_calls
        if dur <= 0.0 and calls == 0:
            return cid
        return b.add_comm(
            f"TP{kind}:{units[i].name}", dur, (cid,), axis="tp", calls=max(1, calls)
        )

    def t_ag(u: UnitCost) -> float:
        return (
            cost_model.all_gather(u.param_bytes, shard_pl, p.wire_dtype)
            * gather_infl
        )

    # ---- forward ---------------------------------------------------------
    fwd_ids: list[int] = []
    pp_in_id: int | None = None
    if mesh is not None and mesh.pp_in_seconds > 0.0:
        # Boundary activation from the previous stage gates the first unit.
        pp_in_id = b.add_comm("PPrecv:f", mesh.pp_in_seconds, (), axis="pp")
    for i, u in enumerate(units):
        deps: list[int] = []
        if i == 0 and pp_in_id is not None:
            deps.append(pp_in_id)
        if sharded:
            ag_deps: list[int] = []
            if p.limit_all_gathers and i >= p.gather_window:
                ag_deps.append(fwd_ids[i - p.gather_window])
            agid = b.add_comm(f"AGf:{u.name}", t_ag(u), tuple(ag_deps))
            if not p.limit_all_gathers:
                b.add_stall(f"stall_f:{u.name}", p.alloc_stall_s)
            deps.append(agid)
        cid = b.add_compute(f"F:{u.name}", u.fwd_seconds, tuple(deps))
        fwd_ids.append(tp_after(i, "f", cid))
    if mesh is not None and mesh.pp_out_seconds > 0.0:
        b.add_comm("PPsend:f", mesh.pp_out_seconds, (fwd_ids[-1],), axis="pp")

    # ---- backward --------------------------------------------------------
    n = len(units)
    agb_ids: dict[int, int] = {}
    if regather_in_backward:
        u_last = units[n - 1]
        agb_ids[n - 1] = b.add_comm(
            f"AGb:{u_last.name}", t_ag(u_last), (fwd_ids[-1],)
        )
        if not p.limit_all_gathers:
            b.add_stall(f"stall_b:{u_last.name}", p.alloc_stall_s)
    grad_final_ids: list[int] = []
    bwd_ids: dict[int, int] = {}
    pp_grad_id: int | None = None
    if mesh is not None and mesh.pp_out_seconds > 0.0:
        # The gradient w.r.t. our boundary output arrives from the next
        # stage before the deepest unit can run its backward.
        pp_grad_id = b.add_comm(
            "PPrecv:b", mesh.pp_out_seconds, (fwd_ids[-1],), axis="pp"
        )

    if strategy is ShardingStrategy.DDP:
        # Backward computes first (ids known), buckets attach to readiness.
        for i in range(n - 1, -1, -1):
            u = units[i]
            deps = (pp_grad_id,) if i == n - 1 and pp_grad_id is not None else ()
            bwd_ids[i] = tp_after(
                i, "b", b.add_compute(f"B:{u.name}", u.bwd_seconds, deps)
            )
        pseudo: list[tuple[int, int]] = []  # (unit index, nbytes), fwd order
        for idx, u in enumerate(units):
            remaining = u.param_bytes
            while remaining > 0:
                take = min(remaining, _DDP_PSEUDO_TENSOR_BYTES)
                pseudo.append((idx, take))
                remaining -= take
        buckets = bucket_gradients(
            [nb for _, nb in pseudo], cap_bytes=p.ddp_bucket_cap_bytes
        )
        for k, bucket in enumerate(buckets):
            ready_unit = min(pseudo[j][0] for j in bucket.param_indices)
            dur = (
                cost_model.all_reduce(bucket.nbytes, world_pl, p.wire_dtype)
                * p.ddp_comm_inflation
            )
            # Coalesce grads into the bucket's flat buffer and back out.
            b.add_stall(f"copy_bucket{k}", 2 * bucket.nbytes / p.ddp_copy_bw)
            if reduce_per_step:
                b.add_tail_comm(dur)
                grad_final_ids.append(bwd_ids[ready_unit])
            else:
                grad_final_ids.append(
                    b.add_comm(f"ARbucket{k}", dur, (bwd_ids[ready_unit],))
                )
    else:
        prev_bid: int | None = None
        for i in range(n - 1, -1, -1):
            u = units[i]
            deps = [agb_ids[i]] if regather_in_backward else []
            if i == n - 1 and pp_grad_id is not None:
                deps.append(pp_grad_id)
            bid = tp_after(
                i, "b", b.add_compute(f"B:{u.name}", u.bwd_seconds, tuple(deps))
            )
            bwd_ids[i] = bid

            def issue_next_gather(dep_ids: tuple[int, ...]) -> None:
                nxt = units[i - 1]
                agb_ids[i - 1] = b.add_comm(f"AGb:{nxt.name}", t_ag(nxt), dep_ids)
                if not p.limit_all_gathers:
                    b.add_stall(f"stall_b:{nxt.name}", p.alloc_stall_s)

            want_prefetch = regather_in_backward and i > 0
            if want_prefetch and p.prefetch is BackwardPrefetch.BACKWARD_PRE:
                # Issued before the reduce-scatter; unblocked by the
                # previous gather (rate-limited to the backward pace when
                # limit_all_gathers is on).
                dep = (
                    (prev_bid,)
                    if (p.limit_all_gathers and prev_bid is not None)
                    else (agb_ids[i],)
                )
                issue_next_gather(dep)

            if sharded:
                d_rs = cost_model.reduce_scatter(u.param_bytes, shard_pl, p.wire_dtype)
                d_rep = 0.0
                if replica_pl is not None and replica_pl.group_size > 1:
                    d_rep = cost_model.all_reduce(
                        u.param_bytes / s, replica_pl, p.wire_dtype
                    )
                if reduce_per_step:
                    b.add_tail_comm(d_rs)
                    if d_rep:
                        b.add_tail_comm(d_rep)
                    rsid = bid
                    grad_final_ids.append(bid)
                else:
                    rsid = b.add_comm(f"RS:{u.name}", d_rs, (bid,))
                    last = rsid
                    if d_rep:
                        last = b.add_comm(f"ARrep:{u.name}", d_rep, (rsid,))
                    grad_final_ids.append(last)
            else:
                # NO_SHARD or HYBRID_1GPU: full-gradient all-reduce.
                d_ar = cost_model.all_reduce(u.param_bytes, world_pl, p.wire_dtype)
                if strategy is ShardingStrategy.NO_SHARD:
                    d_ar *= p.noshard_comm_inflation
                if reduce_per_step:
                    b.add_tail_comm(d_ar)
                    grad_final_ids.append(bid)
                    rsid = bid
                else:
                    grad_final_ids.append(b.add_comm(f"AR:{u.name}", d_ar, (bid,)))
                    rsid = grad_final_ids[-1]

            if want_prefetch and p.prefetch is not BackwardPrefetch.BACKWARD_PRE:
                if p.prefetch is BackwardPrefetch.BACKWARD_POST:
                    issue_next_gather((bid,))
                else:  # NONE: wait for the reduce-scatter to finish
                    issue_next_gather((rsid,))
            prev_bid = bid

    # ---- pipeline gradient send / optimizer --------------------------------
    if mesh is not None and mesh.pp_in_seconds > 0.0:
        # Gradient w.r.t. our boundary input leaves toward the previous
        # stage once the shallowest unit finished its backward.
        b.add_comm("PPsend:b", mesh.pp_in_seconds, (bwd_ids[0],), axis="pp")
    if p.optimizer_seconds > 0:
        b.add_compute("optimizer", p.optimizer_seconds, tuple(grad_final_ids))

    return StepSchedule(
        timeline=b.tl,
        comm_seconds=b.comm_seconds,
        comm_calls=b.comm_calls,
        compute_seconds=b.compute_seconds,
        stall_seconds=b.stall_seconds,
        notes={"strategy": strategy.value, "shard_size": s},
        tail_comm_seconds=b.tail_comm_seconds,
        tail_comm_calls=b.tail_comm_calls,
        axis_comm_seconds=b.axis_seconds,
    )
