"""Dataloader / filesystem throughput model (paper Fig. 1 'IO' curve).

The paper measures IO by running the PyTorch dataloader in isolation:
4 worker processes per rank read and decode MillionAID images from
Lustre. Per-rank throughput is therefore ``workers x decode_rate`` until
the aggregate filesystem bandwidth caps it. Frontier's Orion filesystem
has multi-TB/s aggregate bandwidth, so at the paper's scales (<= 64
nodes) the per-worker decode rate dominates and IO scales ~linearly —
which is why the paper finds the application never IO-bound, a conclusion
this model reproduces by construction and the Fig. 1 bench verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IoModel"]


@dataclass(frozen=True)
class IoModel:
    """Per-rank image pipeline throughput.

    Attributes
    ----------
    workers_per_rank:
        Dataloader worker processes per GPU rank (paper: 4).
    decode_rate_imgs_per_s:
        Images decoded+transformed per second per worker, calibrated for
        512x512 JPEG decode on one EPYC core (~30 img/s).
    fs_aggregate_bw:
        Filesystem aggregate bandwidth cap (bytes/s).
    bytes_per_image:
        On-disk compressed size of one image.
    """

    workers_per_rank: int = 4
    decode_rate_imgs_per_s: float = 30.0
    fs_aggregate_bw: float = 10e12
    bytes_per_image: float = 0.35e6

    def __post_init__(self) -> None:
        if self.workers_per_rank <= 0:
            raise ValueError("workers_per_rank must be positive")
        if self.decode_rate_imgs_per_s <= 0:
            raise ValueError("decode_rate_imgs_per_s must be positive")

    def rank_ips(self, n_ranks: int) -> float:
        """Per-rank sustainable images/second at ``n_ranks`` total ranks."""
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        decode = self.workers_per_rank * self.decode_rate_imgs_per_s
        fs_cap = self.fs_aggregate_bw / (self.bytes_per_image * n_ranks)
        return min(decode, fs_cap)

    def total_ips(self, n_ranks: int) -> float:
        """Aggregate dataloader images/second across the job."""
        return self.rank_ips(n_ranks) * n_ranks

    def step_time(self, local_batch: int, n_ranks: int) -> float:
        """Seconds for every rank to produce one local batch."""
        if local_batch <= 0:
            raise ValueError(f"local_batch must be positive, got {local_batch}")
        return local_batch / self.rank_ips(n_ranks)
