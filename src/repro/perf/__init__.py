"""Analytical + discrete-event performance simulator.

Times one training step of any Table I variant under any sharding
strategy on a Frontier slice, reproducing the quantities of the paper's
Figures 1-4: images/second, per-GPU memory, communication share, and
power/utilization traces.

- :mod:`repro.perf.events` — deterministic list-scheduling event engine
  (streams = resources; tasks with dependencies).
- :mod:`repro.perf.compute_model` — ViT/MAE FLOP counts and per-unit
  compute costs.
- :mod:`repro.perf.memory_model` — per-strategy resident-memory model.
- :mod:`repro.perf.io_model` — dataloader/filesystem throughput model.
- :mod:`repro.perf.mesh_model` — closed-form per-axis (tp/pp/dp)
  collective payloads of a mesh run, reconciled byte-for-byte against
  the executable engines' telemetry.
- :mod:`repro.perf.schedule` — builds the per-step task graph for a
  strategy + prefetch policy, and composes the pipeline bubble.
- :mod:`repro.perf.simulator` — end-to-end step timing and reports.
- :mod:`repro.perf.tracing` — Chrome-trace export of simulated steps.
- :mod:`repro.perf.hotpath` — *measured* (not modeled) wall-clock
  microbenchmarks of the NumPy substrate itself.
"""

from repro.perf.compute_model import UnitCost, mae_workload_units, vit_workload_units
from repro.perf.events import Task, Timeline
from repro.perf.hotpath import (
    KernelTiming,
    PairTiming,
    StepTiming,
    rss_peak_mb,
    time_kernel,
    time_pair,
    time_train_step,
)
from repro.perf.io_model import IoModel
from repro.perf.memory_model import MemoryBreakdown, memory_breakdown
from repro.perf.mesh_model import (
    AxisTraffic,
    MeshTrafficPrediction,
    predict_mesh_traffic,
    tp_shardable_fraction,
)
from repro.perf.schedule import pipeline_bubble_fraction
from repro.perf.simulator import PerfParams, StepBreakdown, TrainStepSimulator

__all__ = [
    "AxisTraffic",
    "MeshTrafficPrediction",
    "predict_mesh_traffic",
    "tp_shardable_fraction",
    "pipeline_bubble_fraction",
    "KernelTiming",
    "PairTiming",
    "StepTiming",
    "rss_peak_mb",
    "time_kernel",
    "time_pair",
    "time_train_step",
    "Task",
    "Timeline",
    "UnitCost",
    "vit_workload_units",
    "mae_workload_units",
    "MemoryBreakdown",
    "memory_breakdown",
    "IoModel",
    "PerfParams",
    "StepBreakdown",
    "TrainStepSimulator",
]
