"""Real-time microbenchmark harness for the NumPy hot path.

Unlike the rest of :mod:`repro.perf` — which *models* Frontier-scale
performance analytically — this module measures the substrate itself:
wall-clock per kernel, images/second per proxy training step, and peak
resident memory. It is the measurement side of the fused-kernel work in
:mod:`repro.models.functional` / :mod:`repro.models.layers` /
:mod:`repro.models.attention`; ``benchmarks/bench_hotpath.py`` drives it
and ``benchmarks/check_regression.py`` gates on its output.

Methodology notes (the host running CI is small and shared):

- every sample is the mean of ``number`` back-to-back calls, measured
  with ``perf_counter``; we report the **median** of ``repeats`` samples
  (robust to scheduler noise) plus min/max;
- A/B comparisons use :func:`time_pair`, which *interleaves* the two
  sides sample-by-sample and reports the median of per-pair ratios, so
  slow drift in machine load cancels instead of biasing one side;
- peak RSS comes from ``resource.getrusage`` (ru_maxrss is a
  high-water mark, in KiB on Linux).
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "KernelTiming",
    "PairTiming",
    "StepTiming",
    "rss_peak_mb",
    "time_kernel",
    "time_pair",
    "time_train_step",
]


def rss_peak_mb() -> float:
    """Process peak resident set size in MiB (high-water mark, monotone)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass
class KernelTiming:
    """Timing summary for one kernel."""

    name: str
    median_us: float
    min_us: float
    max_us: float
    repeats: int
    number: int
    samples_us: list[float] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (samples included for offline analysis)."""
        return {
            "name": self.name,
            "median_us": self.median_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
            "repeats": self.repeats,
            "number": self.number,
            "samples_us": self.samples_us,
        }


def _median(xs: list[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def _sample_us(fn: Callable[[], Any], number: int) -> float:
    t0 = time.perf_counter()
    for _ in range(number):
        fn()
    return (time.perf_counter() - t0) / number * 1e6


def time_kernel(
    fn: Callable[[], Any],
    name: str = "kernel",
    warmup: int = 2,
    repeats: int = 9,
    number: int = 1,
) -> KernelTiming:
    """Time ``fn`` (no arguments): median of ``repeats`` samples.

    Each sample averages ``number`` consecutive calls; ``warmup`` calls
    run first (JIT-less NumPy still benefits — page faults, caches,
    lazy BLAS thread pools all warm up).
    """
    if repeats < 1 or number < 1:
        raise ValueError("repeats and number must be >= 1")
    for _ in range(warmup):
        fn()
    samples = [_sample_us(fn, number) for _ in range(repeats)]
    return KernelTiming(
        name=name,
        median_us=_median(samples),
        min_us=min(samples),
        max_us=max(samples),
        repeats=repeats,
        number=number,
        samples_us=samples,
    )


@dataclass
class PairTiming:
    """Interleaved A/B comparison. Ratio > 1 means B is faster."""

    a: KernelTiming
    b: KernelTiming
    median_ratio: float  # median over per-pair (a_i / b_i)
    min_ratio: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary of both sides and the ratio stats."""
        return {
            "a": self.a.to_dict(),
            "b": self.b.to_dict(),
            "median_ratio": self.median_ratio,
            "min_ratio": self.min_ratio,
        }


def time_pair(
    fn_a: Callable[[], Any],
    fn_b: Callable[[], Any],
    name_a: str = "a",
    name_b: str = "b",
    warmup: int = 2,
    repeats: int = 9,
    number: int = 1,
) -> PairTiming:
    """Interleaved A/B timing: a,b,a,b,... with per-pair speedup ratios.

    On a noisy shared host, timing all of A then all of B lets a load
    spike land entirely on one side; interleaving makes each ratio a
    same-instant comparison, and the median ratio is robust to the rest.
    """
    if repeats < 1 or number < 1:
        raise ValueError("repeats and number must be >= 1")
    for _ in range(warmup):
        fn_a()
        fn_b()
    samples_a: list[float] = []
    samples_b: list[float] = []
    for _ in range(repeats):
        samples_a.append(_sample_us(fn_a, number))
        samples_b.append(_sample_us(fn_b, number))
    ratios = [a / b for a, b in zip(samples_a, samples_b)]

    def _summary(name: str, samples: list[float]) -> KernelTiming:
        return KernelTiming(
            name=name,
            median_us=_median(samples),
            min_us=min(samples),
            max_us=max(samples),
            repeats=repeats,
            number=number,
            samples_us=samples,
        )

    return PairTiming(
        a=_summary(name_a, samples_a),
        b=_summary(name_b, samples_b),
        median_ratio=_median(ratios),
        min_ratio=min(ratios),
    )


@dataclass
class StepTiming:
    """Throughput summary for a full training step."""

    name: str
    images_per_step: int
    median_step_ms: float
    min_step_ms: float
    images_per_sec: float
    repeats: int
    peak_rss_mb: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary."""
        return {
            "name": self.name,
            "images_per_step": self.images_per_step,
            "median_step_ms": self.median_step_ms,
            "min_step_ms": self.min_step_ms,
            "images_per_sec": self.images_per_sec,
            "repeats": self.repeats,
            "peak_rss_mb": self.peak_rss_mb,
        }


def time_train_step(
    step_fn: Callable[[], Any],
    images_per_step: int,
    name: str = "train_step",
    warmup: int = 1,
    repeats: int = 5,
) -> StepTiming:
    """Time a full training step closure and convert to images/second.

    ``step_fn`` should run one complete optimizer step (forward,
    backward, gradient reduction, update). Throughput uses the median
    step time; ``peak_rss_mb`` is the process high-water mark *after*
    the measured steps, which by then includes the step's working set.
    """
    if images_per_step <= 0:
        raise ValueError("images_per_step must be positive")
    timing = time_kernel(
        step_fn, name=name, warmup=warmup, repeats=repeats, number=1
    )
    median_ms = timing.median_us / 1e3
    return StepTiming(
        name=name,
        images_per_step=images_per_step,
        median_step_ms=median_ms,
        min_step_ms=timing.min_us / 1e3,
        images_per_sec=images_per_step / (median_ms / 1e3),
        repeats=repeats,
        peak_rss_mb=rss_peak_mb(),
    )
