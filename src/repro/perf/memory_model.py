"""Per-GPU resident-memory model, by sharding strategy and precision.

Using ZeRO's nomenclature, the *model states* of ``P`` fp32 parameters
under AdamW are ``16 P`` bytes: parameters (4P), gradients (4P), and the
two Adam moments (8P). Under emulated bf16 mixed precision the total is
the same ``16 P`` but the split moves: bf16 parameters (2P) and
gradients (2P) ride next to the fp32 master weights (4P) and moments
(8P) — which is why mixed precision alone does not shrink model states,
only activations and wire traffic. Strategies shard different subsets:

===================  ===============================================
strategy             resident model-state bytes per GPU (fp32)
===================  ===============================================
NO_SHARD / DDP       ``16 P``
HYBRID(s)            ``16 P / s``
FULL_SHARD (world W) ``16 P / W`` plus transiently-gathered units
SHARD_GRAD_OP        ``4 P`` (full params) + ``12 P / W``
===================  ===============================================

Under bf16 the parameter term uses 2 bytes/param (so e.g. SHARD_GRAD_OP
becomes ``2 P + 14 P / W``); the per-dtype split is reported in
:attr:`MemoryBreakdown.by_dtype`.

Transient: strategies that reshard keep ~2 units materialized at a time
(current + prefetched), each costing params (+ grads in backward) at the
*working* parameter width — these buffers halve under bf16.

Activations follow the paper's evident configuration (a 3B model plus
activations fits in 64 GB only with activation checkpointing): stored
block inputs ``B*N*W*b`` per block plus one block's live intermediates
``B*N*(12W + H*N)*b``, at ``b`` bytes per activation value (4 fp32,
2 bf16).

Gradient accumulation (``grad_accum_steps > 1``) adds one unsharded fp32
accumulation buffer (4P): contributions are summed at full precision
between optimizer steps regardless of the wire dtype.

The same accounting, applied to the executable engines at proxy scale, is
validated against actually-allocated NumPy bytes in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import MAEConfig, ViTConfig, count_mae_params, count_vit_params
from repro.core.sharding import ShardingStrategy
from repro.mesh.spec import MeshSpec
from repro.perf.compute_model import BYTES_PER_PARAM
from repro.perf.mesh_model import tp_shardable_fraction
from repro.precision.bf16 import DTYPE_BYTES, PRECISIONS

__all__ = ["MemoryBreakdown", "memory_breakdown", "activation_bytes"]

#: params + grads + AdamW moments, in parameter-byte multiples.
MODEL_STATE_MULTIPLIER = 4  # x BYTES_PER_PARAM: 4+4+8 = 16 bytes/param
#: Units kept materialized by resharding strategies (current + prefetch).
TRANSIENT_UNITS = 2


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU bytes by category.

    ``allocator_overhead`` is the caching-allocator slack (fragmentation
    and reserved-but-unused blocks) that rocm-smi-style measurements
    include; it scales with the dynamic categories. ``grad_accum`` is the
    unsharded fp32 gradient-accumulation buffer (zero when
    ``grad_accum_steps == 1``). ``by_dtype`` splits the attributable
    categories (model states, transient, activations, grad accumulation)
    per dtype label — the footprint view mixed-precision sizing decisions
    key off.
    """

    model_states: float
    transient: float
    activations: float
    workspace: float
    allocator_overhead: float = 0.0
    grad_accum: float = 0.0
    by_dtype: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum over all memory categories."""
        return (
            self.model_states
            + self.transient
            + self.activations
            + self.workspace
            + self.allocator_overhead
            + self.grad_accum
        )


def activation_bytes(
    width: int,
    depth: int,
    heads: int,
    seq: int,
    local_batch: int,
    checkpointing: bool = True,
    bytes_per_value: float = BYTES_PER_PARAM,
) -> float:
    """Activation memory of a transformer stack for one microbatch.

    ``bytes_per_value`` is the stored-activation width: 4 at fp32, 2
    under bf16 (activations are kept at the working precision).
    """
    per_token = bytes_per_value * width
    block_inputs = local_batch * seq * per_token * depth
    live_block = local_batch * seq * bytes_per_value * (12 * width + heads * seq)
    if checkpointing:
        return block_inputs + live_block
    # Without checkpointing every block keeps its intermediates.
    return depth * live_block + block_inputs


def _workload_dims(model: ViTConfig | MAEConfig):
    """(total params, [(width, depth, heads, seq), ...]) for a workload."""
    if isinstance(model, MAEConfig):
        enc = model.encoder
        total = count_mae_params(model)
        stacks = [
            (enc.width, enc.depth, enc.heads, model.n_visible + 1),
            (model.dec_width, model.dec_depth, model.dec_heads, enc.n_patches + 1),
        ]
        max_block = max(
            enc.width * enc.width * 4 + 2 * enc.width * enc.mlp,
            model.dec_width**2 * 4 + 8 * model.dec_width**2,
        )
    else:
        total = count_vit_params(model)
        stacks = [(model.width, model.depth, model.heads, model.seq_len)]
        max_block = model.width * model.width * 4 + 2 * model.width * model.mlp
    return total, stacks, max_block


def _state_components(precision: str) -> list[tuple[str, float, str]]:
    """(component, bytes per param, dtype label) of the model states.

    fp32: params/grads/moments all fp32 (4+4+8 = 16 bytes/param).
    bf16: bf16 params and grads next to fp32 masters and moments
    (2+2+4+8 = 16 bytes/param — same total, different split).
    """
    if precision == "fp32":
        return [
            ("params", 4.0, "fp32"),
            ("grads", 4.0, "fp32"),
            ("optim", 8.0, "fp32"),
        ]
    return [
        ("params", 2.0, "bf16"),
        ("grads", 2.0, "bf16"),
        ("master", 4.0, "fp32"),
        ("optim", 8.0, "fp32"),
    ]


def memory_breakdown(
    model: ViTConfig | MAEConfig,
    strategy: ShardingStrategy,
    world_size: int,
    shard_size: int | None = None,
    local_batch: int = 32,
    checkpointing: bool = True,
    workspace_bytes: float = 1.0e9,
    allocator_overhead_frac: float = 0.18,
    precision: str = "fp32",
    grad_accum_steps: int = 1,
    mesh: MeshSpec | None = None,
    pipeline_micros: int = 1,
) -> MemoryBreakdown:
    """Per-GPU memory for a training step of ``model`` under ``strategy``.

    ``shard_size`` is required for HYBRID_SHARD; NO_SHARD/DDP imply 1 and
    FULL_SHARD / SHARD_GRAD_OP imply the world size. ``precision`` moves
    the model-state split (see :func:`_state_components`) and halves
    transient and activation widths; ``grad_accum_steps > 1`` adds the
    unsharded fp32 accumulation buffer.

    With a ``mesh``, the sharding strategy applies along the dp axis
    only (``mesh.dp`` replaces ``world_size`` as the divisor); pipeline
    parallelism keeps ``~1/pp`` of the blocks per stage (even-split
    approximation) and tensor parallelism divides the tp-shardable GEMM
    parameter fraction by ``mesh.tp``. Activation residency follows the
    schedule: gpipe keeps all ``pipeline_micros`` microbatch inputs
    live before the backward drains them, 1f1b at most ``pp``.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if precision not in PRECISIONS:
        raise ValueError(f"precision must be one of {PRECISIONS}, got {precision!r}")
    if grad_accum_steps < 1:
        raise ValueError(f"grad_accum_steps must be >= 1, got {grad_accum_steps}")
    if pipeline_micros < 1:
        raise ValueError(f"pipeline_micros must be >= 1, got {pipeline_micros}")
    total_params, stacks, max_block_params = _workload_dims(model)
    param_width = float(DTYPE_BYTES["bf16" if precision == "bf16" else "fp32"])

    pp = tp = 1
    live_micros = 1
    if mesh is not None:
        pp, tp = mesh.pp, mesh.tp
        if mesh.size != world_size:
            raise ValueError(
                f"mesh.size={mesh.size} disagrees with world_size={world_size}"
            )
        # dp is the only axis the sharding strategy divides over.
        world_size = mesh.dp
        if shard_size is not None:
            shard_size = min(shard_size, mesh.dp)
        frac = tp_shardable_fraction(model)
        param_scale = ((1.0 - frac) + frac / tp) / pp
        total_params *= param_scale
        max_block_params /= tp
        live_micros = (
            min(pipeline_micros, pp) if mesh.schedule == "1f1b" else pipeline_micros
        )

    # Sharding divisors: parameters vs everything else (grads, masters,
    # moments). SHARD_GRAD_OP is the only strategy where they differ.
    if strategy in (ShardingStrategy.NO_SHARD, ShardingStrategy.DDP):
        param_div, other_div = 1.0, 1.0
        transient_components = 0
    elif strategy is ShardingStrategy.FULL_SHARD:
        param_div = other_div = float(world_size)
        transient_components = 2  # params + grads of materialized units
    elif strategy is ShardingStrategy.SHARD_GRAD_OP:
        param_div, other_div = 1.0, float(world_size)
        transient_components = 1  # params stay resident; grads reshard
    elif strategy is ShardingStrategy.HYBRID_SHARD:
        if shard_size is None or shard_size < 1:
            raise ValueError("HYBRID_SHARD needs a positive shard_size")
        param_div = other_div = float(shard_size)
        transient_components = 0 if shard_size == 1 else 2
    else:
        raise ValueError(f"unknown strategy {strategy}")

    by_dtype: dict[str, float] = {}
    states = 0.0
    for name, bytes_per_param, dtype in _state_components(precision):
        div = param_div if name == "params" else other_div
        contrib = total_params * bytes_per_param / div
        states += contrib
        by_dtype[dtype] = by_dtype.get(dtype, 0.0) + contrib

    transient = TRANSIENT_UNITS * max_block_params * param_width * transient_components
    if transient:
        by_dtype[precision] = by_dtype.get(precision, 0.0) + transient

    act_width = float(DTYPE_BYTES["bf16"]) if precision == "bf16" else BYTES_PER_PARAM
    if mesh is not None:
        # Per stage: ~depth/pp stored block inputs, one live block's
        # intermediates sharded tp ways (qkv/mlp widths and attention
        # scores are all head-/column-parallel). In-flight microbatches
        # multiply the stored inputs, not the single live block.
        acts = 0.0
        for w, d, h, s in stacks:
            local_depth = math.ceil(d / pp)
            block_inputs = local_batch * s * act_width * w * local_depth
            live_block = local_batch * s * act_width * (12 * w + h * s) / tp
            if checkpointing:
                acts += block_inputs * live_micros + live_block
            else:
                acts += (local_depth * live_block + block_inputs) * live_micros
    else:
        acts = sum(
            activation_bytes(w, d, h, s, local_batch, checkpointing, act_width)
            for (w, d, h, s) in stacks
        )
    by_dtype[precision] = by_dtype.get(precision, 0.0) + acts

    # Accumulated gradients are combined at full precision between
    # optimizer steps, whatever the wire/working dtype.
    accumulating = grad_accum_steps > 1 or (mesh is not None and pipeline_micros > 1)
    grad_accum = total_params * 4.0 if accumulating else 0.0
    if grad_accum:
        by_dtype["fp32"] = by_dtype.get("fp32", 0.0) + grad_accum

    return MemoryBreakdown(
        model_states=states,
        transient=transient,
        activations=acts,
        workspace=workspace_bytes,
        allocator_overhead=allocator_overhead_frac
        * (states + transient + acts + grad_accum),
        grad_accum=grad_accum,
        by_dtype=by_dtype,
    )
