"""Per-GPU resident-memory model, by sharding strategy.

Using ZeRO's nomenclature, the *model states* of ``P`` fp32 parameters
under AdamW are ``16 P`` bytes: parameters (4P), gradients (4P), and the
two Adam moments (8P). Strategies shard different subsets:

===================  ===============================================
strategy             resident model-state bytes per GPU
===================  ===============================================
NO_SHARD / DDP       ``16 P``
HYBRID(s)            ``16 P / s``
FULL_SHARD (world W) ``16 P / W`` plus transiently-gathered units
SHARD_GRAD_OP        ``4 P`` (full params) + ``12 P / W``
===================  ===============================================

Transient: strategies that reshard keep ~2 units materialized at a time
(current + prefetched), each costing params (+ grads in backward).

Activations follow the paper's evident configuration (a 3B model plus
activations fits in 64 GB only with activation checkpointing): stored
block inputs ``B*N*W*4`` per block plus one block's live intermediates
``B*N*(12W + H*N)*4``.

The same accounting, applied to the executable engines at proxy scale, is
validated against actually-allocated NumPy bytes in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MAEConfig, ViTConfig, count_mae_params, count_vit_params
from repro.core.sharding import ShardingStrategy
from repro.perf.compute_model import BYTES_PER_PARAM

__all__ = ["MemoryBreakdown", "memory_breakdown", "activation_bytes"]

#: params + grads + AdamW moments, in parameter-byte multiples.
MODEL_STATE_MULTIPLIER = 4  # x BYTES_PER_PARAM: 4+4+8 = 16 bytes/param
#: Units kept materialized by resharding strategies (current + prefetch).
TRANSIENT_UNITS = 2


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU bytes by category.

    ``allocator_overhead`` is the caching-allocator slack (fragmentation
    and reserved-but-unused blocks) that rocm-smi-style measurements
    include; it scales with the dynamic categories.
    """

    model_states: float
    transient: float
    activations: float
    workspace: float
    allocator_overhead: float = 0.0

    @property
    def total(self) -> float:
        """Sum over all memory categories."""
        return (
            self.model_states
            + self.transient
            + self.activations
            + self.workspace
            + self.allocator_overhead
        )


def activation_bytes(
    width: int,
    depth: int,
    heads: int,
    seq: int,
    local_batch: int,
    checkpointing: bool = True,
) -> float:
    """Activation memory of a transformer stack for one microbatch."""
    per_token = BYTES_PER_PARAM * width
    block_inputs = local_batch * seq * per_token * depth
    live_block = local_batch * seq * BYTES_PER_PARAM * (12 * width + heads * seq)
    if checkpointing:
        return block_inputs + live_block
    # Without checkpointing every block keeps its intermediates.
    return depth * live_block + block_inputs


def _workload_dims(model: ViTConfig | MAEConfig):
    """(total params, [(width, depth, heads, seq), ...]) for a workload."""
    if isinstance(model, MAEConfig):
        enc = model.encoder
        total = count_mae_params(model)
        stacks = [
            (enc.width, enc.depth, enc.heads, model.n_visible + 1),
            (model.dec_width, model.dec_depth, model.dec_heads, enc.n_patches + 1),
        ]
        max_block = max(
            enc.width * enc.width * 4 + 2 * enc.width * enc.mlp,
            model.dec_width**2 * 4 + 8 * model.dec_width**2,
        )
    else:
        total = count_vit_params(model)
        stacks = [(model.width, model.depth, model.heads, model.seq_len)]
        max_block = model.width * model.width * 4 + 2 * model.width * model.mlp
    return total, stacks, max_block


def memory_breakdown(
    model: ViTConfig | MAEConfig,
    strategy: ShardingStrategy,
    world_size: int,
    shard_size: int | None = None,
    local_batch: int = 32,
    checkpointing: bool = True,
    workspace_bytes: float = 1.0e9,
    allocator_overhead_frac: float = 0.18,
) -> MemoryBreakdown:
    """Per-GPU memory for a training step of ``model`` under ``strategy``.

    ``shard_size`` is required for HYBRID_SHARD; NO_SHARD/DDP imply 1 and
    FULL_SHARD / SHARD_GRAD_OP imply the world size.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    total_params, stacks, max_block_params = _workload_dims(model)
    state_bytes = total_params * BYTES_PER_PARAM * MODEL_STATE_MULTIPLIER

    if strategy in (ShardingStrategy.NO_SHARD, ShardingStrategy.DDP):
        states = state_bytes
        transient = 0.0
    elif strategy is ShardingStrategy.FULL_SHARD:
        states = state_bytes / world_size
        # params + grads of the materialized units.
        transient = TRANSIENT_UNITS * max_block_params * BYTES_PER_PARAM * 2
    elif strategy is ShardingStrategy.SHARD_GRAD_OP:
        # Params stay resident; grads + optimizer states are sharded.
        states = total_params * BYTES_PER_PARAM * (1 + 3 / world_size)
        transient = TRANSIENT_UNITS * max_block_params * BYTES_PER_PARAM
    elif strategy is ShardingStrategy.HYBRID_SHARD:
        if shard_size is None or shard_size < 1:
            raise ValueError("HYBRID_SHARD needs a positive shard_size")
        states = state_bytes / shard_size
        transient = (
            0.0
            if shard_size == 1
            else TRANSIENT_UNITS * max_block_params * BYTES_PER_PARAM * 2
        )
    else:
        raise ValueError(f"unknown strategy {strategy}")

    acts = sum(
        activation_bytes(w, d, h, s, local_batch, checkpointing)
        for (w, d, h, s) in stacks
    )
    return MemoryBreakdown(
        model_states=states,
        transient=transient,
        activations=acts,
        workspace=workspace_bytes,
        allocator_overhead=allocator_overhead_frac * (states + transient + acts),
    )
