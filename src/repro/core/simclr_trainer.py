"""Contrastive (SimCLR) pretraining loop.

The contrastive counterpart of :class:`repro.core.trainer.MAEPretrainer`:
drives any engine through NT-Xent pretraining, with augmentations a pure
function of (seed, step) so distributed runs stay equivalent to the
single-process reference, exactly like the MAE trainer.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

import numpy as np

from repro.core.ddp import DDPEngine
from repro.core.fsdp import FSDPEngine
from repro.core.trainer import CheckpointingTrainer, TrainResult
from repro.data.transforms import augment_view
from repro.models.simclr import SimCLRModel
from repro.optim.schedules import CosineWithWarmup
from repro.telemetry import StepStats, TelemetryBus

__all__ = ["SimCLRPretrainer"]

Engine = FSDPEngine | DDPEngine


def _simclr_step_fn(model: SimCLRModel, micro) -> float:
    view_a, view_b = micro
    out = model.forward(view_a, view_b)
    model.backward()
    return out.loss


class SimCLRPretrainer(CheckpointingTrainer):
    """Contrastive pretraining over an image corpus.

    Distributed note: like real SimCLR without an embedding all-gather,
    each rank contrasts only against its *local* negatives, so runs at
    different world sizes optimize slightly different objectives (unlike
    the MAE trainer, whose loss is sample-separable). Sharding-strategy
    equivalence at a fixed world size still holds exactly.
    """

    def __init__(
        self,
        engine: Engine,
        images: np.ndarray,
        global_batch: int,
        schedule: Callable[[int], float] | None = None,
        seed: int = 0,
        checkpoint_dir: str | None = None,
        save_every: int = 0,
        keep: int = 3,
        preemption=None,
        telemetry: TelemetryBus | None = None,
    ):
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {images.shape}")
        n_micros = engine.world.size * getattr(engine, "grad_accum_steps", 1)
        if global_batch % n_micros != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by world size x "
                f"grad_accum_steps = {n_micros}"
            )
        if global_batch // n_micros < 2:
            raise ValueError(
                "contrastive training needs >= 2 samples per rank "
                "(in-batch negatives)"
            )
        if global_batch > len(images):
            raise ValueError(
                f"global batch {global_batch} exceeds corpus size {len(images)}"
            )
        if not isinstance(engine.model, SimCLRModel):
            raise TypeError("SimCLRPretrainer requires a SimCLRModel")
        self.engine = engine
        self.images = images
        self.global_batch = global_batch
        self.schedule = schedule
        self.seed = seed
        self.steps_per_epoch = len(images) // global_batch
        self._init_checkpointing(checkpoint_dir, save_every, keep, preemption)
        self._init_telemetry(telemetry)

    def _epoch_order(self, epoch: int) -> np.ndarray:
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 7919, epoch]))
        )
        return rng.permutation(len(self.images))

    def _views(self, imgs: np.ndarray, step: int) -> tuple[np.ndarray, np.ndarray]:
        rng_a = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 311, step]))
        )
        rng_b = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 313, step]))
        )
        return augment_view(imgs, rng_a), augment_view(imgs, rng_b)

    def run(self, n_steps: int, start_step: int = 0) -> TrainResult:
        """Train for steps ``[start_step, start_step + n_steps)``; see ``MAEPretrainer.run``."""
        if n_steps <= 0:
            raise ValueError(f"n_steps must be positive, got {n_steps}")
        schedule = self.schedule
        if schedule is None:
            schedule = CosineWithWarmup(
                base_lr=self.engine.lr,
                total_steps=start_step + n_steps,
                warmup_steps=max(1, (start_step + n_steps) // 10),
            )
        # One micro slot per (accumulation round, rank), round-major —
        # same convention as MAEPretrainer.
        n_micros = self.engine.world.size * getattr(self.engine, "grad_accum_steps", 1)
        micro = self.global_batch // n_micros
        result = TrainResult(steps_per_epoch=self.steps_per_epoch)
        order = self._epoch_order(start_step // self.steps_per_epoch)
        for step in range(start_step, start_step + n_steps):
            epoch, pos = divmod(step, self.steps_per_epoch)
            if pos == 0 and step > start_step:
                order = self._epoch_order(epoch)
            idx = order[pos * self.global_batch : (pos + 1) * self.global_batch]
            imgs = self.images[idx]
            view_a, view_b = self._views(imgs, step)
            micros = [
                (view_a[m * micro : (m + 1) * micro],
                 view_b[m * micro : (m + 1) * micro])
                for m in range(n_micros)
            ]
            self.engine.lr = schedule(step)
            t0 = perf_counter()
            loss = self.engine.train_step(micros, _simclr_step_fn)
            if self.telemetry.enabled:
                wall = perf_counter() - t0
                StepStats(
                    step=step,
                    wall_s=wall,
                    images_per_s=self.global_batch / wall if wall > 0 else 0.0,
                    loss=loss,
                    lr=self.engine.lr,
                ).emit(self.telemetry)
            result.losses.append(loss)
            result.lrs.append(self.engine.lr)
            self._record_step(step, loss, self.engine.lr)
        return result
