"""Weak-scaling experiment driver (produces the paper's Figures 1-4 data).

Runs the performance simulator over a grid of node counts and strategies
for one model, collecting images/second (syn / syn-no-comm / IO / real /
ideal), per-GPU memory, communication share, and call counts — the exact
series the paper's weak-scaling plots show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MAEConfig, ViTConfig
from repro.core.sharding import ShardingStrategy, parse_strategy
from repro.hardware.frontier import FRONTIER, FrontierSpec, frontier_machine
from repro.perf.io_model import IoModel
from repro.perf.memory_model import MemoryBreakdown
from repro.perf.simulator import PerfParams, StepBreakdown, TrainStepSimulator
from repro.telemetry import NULL_BUS, TelemetryBus

__all__ = [
    "ScalingPoint",
    "ScalingSeries",
    "publish_breakdown",
    "run_weak_scaling",
    "run_strong_scaling",
    "run_strategy_grid",
]


def publish_breakdown(
    telemetry: TelemetryBus, breakdown: StepBreakdown, **attrs
) -> None:
    """Publish one simulated step's performance quantities as ``perf.*``
    gauges (attrs identify the grid point: ``nodes=...``,
    ``strategy=...``).

    Downstream consumers recover the paper's derived numbers from the
    bus alone — e.g. communication share is
    ``sum(perf.exposed_comm_s) / sum(perf.step_time_s)`` over matching
    gauges (:func:`repro.telemetry.comm_share_from_events`), numerically
    identical to ``breakdown.comm_fraction``.
    """
    if not telemetry.enabled:
        return
    telemetry.gauge("perf.step_time_s", breakdown.step_time_s, **attrs)
    telemetry.gauge("perf.exposed_comm_s", breakdown.exposed_comm_seconds, **attrs)
    telemetry.gauge("perf.compute_s", breakdown.compute_seconds, **attrs)
    telemetry.gauge("perf.ips", breakdown.ips, **attrs)


@dataclass(frozen=True)
class ScalingPoint:
    """One (strategy, node-count) measurement."""

    n_nodes: int
    strategy: str
    breakdown: StepBreakdown

    @property
    def ips(self) -> float:
        """Images/second at this point."""
        return self.breakdown.ips

    @property
    def memory(self) -> MemoryBreakdown:
        """Per-GPU memory breakdown at this point."""
        return self.breakdown.memory


@dataclass
class ScalingSeries:
    """All node counts for one strategy, plus the ideal-scaling baseline."""

    strategy: str
    points: list[ScalingPoint] = field(default_factory=list)

    @property
    def node_counts(self) -> list[int]:
        """Node counts of the collected points."""
        return [p.n_nodes for p in self.points]

    @property
    def ips(self) -> list[float]:
        """Throughput per node count."""
        return [p.ips for p in self.points]

    def ideal_ips(self) -> list[float]:
        """Linear extrapolation from the smallest-node-count point."""
        if not self.points:
            return []
        base = self.points[0]
        return [base.ips * (p.n_nodes / base.n_nodes) for p in self.points]

    def efficiency(self) -> list[float]:
        """Measured / ideal, per point."""
        return [m / i for m, i in zip(self.ips, self.ideal_ips())]


def _make_simulator(
    model: ViTConfig | MAEConfig,
    n_nodes: int,
    strategy_label: str,
    params: PerfParams,
    io: IoModel | None,
    spec: FrontierSpec,
) -> TrainStepSimulator:
    strategy, shard_size = parse_strategy(strategy_label)
    machine = frontier_machine(n_nodes, spec=spec)
    if strategy is ShardingStrategy.DDP:
        pass
    return TrainStepSimulator(
        model,
        machine,
        strategy,
        shard_size=shard_size,
        params=params,
        io=io,
    )


def run_weak_scaling(
    model: ViTConfig | MAEConfig,
    strategy_label: str,
    node_counts: list[int],
    params: PerfParams | None = None,
    io: IoModel | None = None,
    spec: FrontierSpec = FRONTIER,
    telemetry: TelemetryBus | None = None,
) -> ScalingSeries:
    """One strategy across ``node_counts`` (paper-style labels accepted:
    ``"NO_SHARD"``, ``"DDP"``, ``"FULL_SHARD"``, ``"HYBRID_2GPUs"``...).

    With a ``telemetry`` bus attached, every grid point is published as
    ``perf.*`` gauges (see :func:`publish_breakdown`).
    """
    if not node_counts:
        raise ValueError("need at least one node count")
    if sorted(node_counts) != list(node_counts):
        raise ValueError("node_counts must be ascending (ideal uses the first)")
    params = params if params is not None else PerfParams()
    bus = telemetry if telemetry is not None else NULL_BUS
    series = ScalingSeries(strategy=strategy_label)
    for n in node_counts:
        sim = _make_simulator(model, n, strategy_label, params, io, spec)
        breakdown = sim.simulate()
        publish_breakdown(bus, breakdown, nodes=n, strategy=strategy_label)
        series.points.append(
            ScalingPoint(n_nodes=n, strategy=strategy_label, breakdown=breakdown)
        )
    return series


def run_strong_scaling(
    model: ViTConfig | MAEConfig,
    strategy_label: str,
    node_counts: list[int],
    global_batch: int,
    params: PerfParams | None = None,
    io: IoModel | None = None,
    spec: FrontierSpec = FRONTIER,
    telemetry: TelemetryBus | None = None,
) -> ScalingSeries:
    """Strong scaling: fixed *global* batch, shrinking local batch.

    An extension beyond the paper (which only weak-scales): how far can
    one fixed-size pretraining job spread before per-step communication
    and launch overheads eat the shrinking per-GPU compute?
    """
    if not node_counts:
        raise ValueError("need at least one node count")
    if sorted(node_counts) != list(node_counts):
        raise ValueError("node_counts must be ascending (ideal uses the first)")
    base = params if params is not None else PerfParams()
    bus = telemetry if telemetry is not None else NULL_BUS
    series = ScalingSeries(strategy=f"{strategy_label} (strong, gb={global_batch})")
    from dataclasses import replace as _replace

    for n in node_counts:
        world = frontier_machine(n, spec=spec).world()
        if global_batch % world.size != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by {world.size} ranks"
            )
        local = global_batch // world.size
        if local < 1:
            raise ValueError(
                f"global batch {global_batch} too small for {world.size} ranks"
            )
        point_params = _replace(base, local_batch=local)
        sim = _make_simulator(model, n, strategy_label, point_params, io, spec)
        breakdown = sim.simulate()
        publish_breakdown(bus, breakdown, nodes=n, strategy=series.strategy)
        series.points.append(
            ScalingPoint(n_nodes=n, strategy=series.strategy, breakdown=breakdown)
        )
    return series


def run_strategy_grid(
    model: ViTConfig | MAEConfig,
    strategy_labels: list[str],
    node_counts: list[int],
    params: PerfParams | None = None,
    io: IoModel | None = None,
    spec: FrontierSpec = FRONTIER,
    telemetry: TelemetryBus | None = None,
) -> dict[str, ScalingSeries]:
    """Several strategies over the same node grid (one Fig. 3/4 panel)."""
    return {
        label: run_weak_scaling(model, label, node_counts, params, io, spec, telemetry)
        for label in strategy_labels
    }
