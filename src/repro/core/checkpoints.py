"""Versioned, atomic, checksummed training checkpoints.

Two layers:

- A *model-only* API (:func:`save_checkpoint` / :func:`load_checkpoint`)
  kept source-compatible with the experiment suite: one ``.npz`` per
  model state dict plus JSON metadata.
- A *training* API (:class:`CheckpointManager`) for elastic resume: a
  directory of step-numbered snapshots, each holding an arbitrary nested
  state tree (model params, optimizer moments, LR-schedule position,
  loss history, RNG/loader cursors) flattened into one archive.

Both layers share the same durability contract:

**Atomic**
    Archives are written to a temp file in the destination directory,
    fsynced, then ``os.replace``-d over the final name (and the directory
    entry fsynced). A crash at any byte of the write leaves the previous
    snapshot untouched; partially written temp files are unlinked.
**Checksummed**
    Metadata records a SHA-256 over every array's name, dtype, shape and
    raw bytes. On load the digest is recomputed and compared; any
    mismatch — or an unreadable/truncated archive — raises
    :class:`CheckpointCorruptError` instead of returning garbage.
**Versioned**
    Metadata records ``CHECKPOINT_VERSION``. Archives from a newer
    format than this reader understands are refused loudly; legacy
    (pre-versioning) model checkpoints are still readable.

:meth:`CheckpointManager.latest_valid` walks snapshots newest-first and
silently skips corrupt ones, so a run killed mid-save resumes from the
last *valid* snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile

import numpy as np

from repro.models.module import Module

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_exists",
]

#: Format version written into every archive's metadata.
CHECKPOINT_VERSION = 2

_META_KEY = "__meta__"
_VERSION_FIELD = "__ckpt_version__"


class CheckpointCorruptError(RuntimeError):
    """The archive is unreadable, truncated, or fails its checksum."""


# -- state-tree flattening -------------------------------------------------
#
# Nested state (dicts / lists / arrays / JSON scalars) is stored as flat
# "a/b/0/c"-keyed arrays plus a JSON manifest describing the structure, so
# one .npz holds an engine snapshot (model + optimizer slots + counters)
# without a schema baked into the format.


def _flatten_state(obj, prefix, arrays, manifest) -> None:
    if isinstance(obj, np.generic):
        obj = obj.item()
    if isinstance(obj, dict):
        keys = list(obj.keys())
        for k in keys:
            if not isinstance(k, str) or "/" in k:
                raise ValueError(f"state dict keys must be '/'-free strings, got {k!r}")
        manifest[prefix] = {"kind": "dict", "keys": keys}
        for k in keys:
            _flatten_state(obj[k], f"{prefix}/{k}" if prefix else k, arrays, manifest)
    elif isinstance(obj, (list, tuple)):
        manifest[prefix] = {"kind": "list", "len": len(obj)}
        for i, v in enumerate(obj):
            _flatten_state(v, f"{prefix}/{i}" if prefix else str(i), arrays, manifest)
    elif isinstance(obj, np.ndarray):
        manifest[prefix] = {"kind": "array"}
        arrays[prefix] = obj
    elif isinstance(obj, (bool, int, float, str)) or obj is None:
        # JSON round-trips Python ints exactly and floats via shortest
        # repr, so scalar state (step counters, lr) stays bit-exact.
        manifest[prefix] = {"kind": "scalar", "value": obj}
    else:
        raise TypeError(f"cannot checkpoint object of type {type(obj).__name__} at {prefix!r}")


def _unflatten_state(arrays: dict, manifest: dict, prefix: str = ""):
    node = manifest[prefix]
    kind = node["kind"]
    if kind == "dict":
        return {
            k: _unflatten_state(arrays, manifest, f"{prefix}/{k}" if prefix else k)
            for k in node["keys"]
        }
    if kind == "list":
        return [
            _unflatten_state(arrays, manifest, f"{prefix}/{i}" if prefix else str(i))
            for i in range(node["len"])
        ]
    if kind == "array":
        return arrays[prefix]
    if kind == "scalar":
        return node["value"]
    raise CheckpointCorruptError(f"unknown manifest kind {kind!r} at {prefix!r}")


def _state_checksum(arrays: dict[str, np.ndarray]) -> str:
    h = hashlib.sha256()
    for key in sorted(arrays):
        a = np.ascontiguousarray(arrays[key])
        h.update(key.encode("utf-8"))
        h.update(str(a.dtype).encode("utf-8"))
        h.update(str(a.shape).encode("utf-8"))
        h.update(a.tobytes())
    return h.hexdigest()


# -- atomic archive I/O ----------------------------------------------------


def _norm_path(path: str) -> str:
    return path if path.endswith(".npz") else path + ".npz"


def _write_payload(fileobj, payload: dict[str, np.ndarray]) -> None:
    """Serialize the archive to an open file object (test seam for
    simulating a crash mid-write)."""
    np.savez_compressed(fileobj, **payload)


def _atomic_savez(path: str, payload: dict[str, np.ndarray]) -> None:
    """Write ``payload`` as an ``.npz``, atomically replacing ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            _write_payload(f, payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    dirfd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


def _save_archive(path: str, arrays: dict[str, np.ndarray], meta: dict) -> None:
    if _META_KEY in arrays:
        raise ValueError(f"array name collides with reserved key {_META_KEY}")
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    _atomic_savez(path, payload)


def _read_archive(path: str) -> tuple[dict[str, np.ndarray], dict]:
    """Load (arrays, meta) from ``path``; corruption raises, never returns."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
            arrays = {k: archive[k] for k in archive.files if k != _META_KEY}
    except (zipfile.BadZipFile, OSError, EOFError, KeyError, ValueError) as e:
        raise CheckpointCorruptError(f"unreadable checkpoint {path}: {e}") from e
    version = meta.get(_VERSION_FIELD)
    if version is not None:
        if version > CHECKPOINT_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint {path} has format version {version}, newer than "
                f"supported version {CHECKPOINT_VERSION}"
            )
        digest = _state_checksum(arrays)
        if digest != meta.get("checksum"):
            raise CheckpointCorruptError(
                f"checksum mismatch in {path}: stored {meta.get('checksum')!r}, "
                f"recomputed {digest!r}"
            )
    return arrays, meta


# -- model-only API (experiment suite) -------------------------------------


def save_checkpoint(model: Module, path: str, meta: dict | None = None) -> None:
    """Atomically write the model's state dict (plus JSON metadata)."""
    state = model.state_dict()
    full_meta = {
        _VERSION_FIELD: CHECKPOINT_VERSION,
        "checksum": _state_checksum(state),
        "meta": meta or {},
    }
    _save_archive(_norm_path(path), state, full_meta)


def load_checkpoint(model: Module, path: str) -> dict:
    """Load a checkpoint into ``model``; returns the stored metadata.

    Verifies the checksum of versioned archives; legacy archives (written
    before versioning) are loaded as-is.
    """
    arrays, meta = _read_archive(_norm_path(path))
    model.load_state_dict(arrays)
    if _VERSION_FIELD in meta:
        return meta["meta"]
    return meta  # legacy: the whole meta blob was the user's dict


def checkpoint_exists(path: str) -> bool:
    """True when a checkpoint archive exists at ``path``."""
    return os.path.exists(_norm_path(path))


# -- training snapshots ----------------------------------------------------


class CheckpointManager:
    """Step-numbered atomic snapshots of an arbitrary nested state tree.

    Parameters
    ----------
    directory:
        Where snapshots live (created on first save).
    keep:
        Retain at most this many newest snapshots; older ones are pruned
        after each save. Keeping more than one is what makes fallback
        from a corrupt newest snapshot possible.
    prefix:
        Snapshot filename stem (``<prefix>-<step:08d>.npz``).
    """

    def __init__(self, directory: str, keep: int = 3, prefix: str = "ckpt"):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.keep = keep
        self.prefix = prefix

    def path_for(self, step: int) -> str:
        """Snapshot path for an absolute optimizer step."""
        return os.path.join(self.directory, f"{self.prefix}-{step:08d}.npz")

    def steps(self) -> list[int]:
        """Ascending steps of all snapshot files present on disk."""
        if not os.path.isdir(self.directory):
            return []
        out = []
        head = self.prefix + "-"
        for name in os.listdir(self.directory):
            if not (name.startswith(head) and name.endswith(".npz")):
                continue
            stem = name[len(head) : -len(".npz")]
            if stem.isdigit():
                out.append(int(stem))
        return sorted(out)

    def save(self, state: dict, step: int, meta: dict | None = None) -> str:
        """Atomically write ``state`` as the snapshot for ``step``."""
        if not isinstance(state, dict):
            raise TypeError("snapshot state must be a dict at the root")
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        arrays: dict[str, np.ndarray] = {}
        manifest: dict[str, dict] = {}
        _flatten_state(state, "", arrays, manifest)
        full_meta = {
            _VERSION_FIELD: CHECKPOINT_VERSION,
            "checksum": _state_checksum(arrays),
            "manifest": manifest,
            "step": step,
            "meta": meta or {},
        }
        path = self.path_for(step)
        _save_archive(path, arrays, full_meta)
        self._prune(protect=step)
        return path

    def load_step(self, step: int) -> tuple[dict, dict]:
        """Load one snapshot; returns ``(state, user_meta)``.

        Raises :class:`CheckpointCorruptError` when the archive is
        damaged and :class:`FileNotFoundError` when absent.
        """
        arrays, meta = _read_archive(self.path_for(step))
        if "manifest" not in meta:
            raise CheckpointCorruptError(
                f"snapshot {self.path_for(step)} has no state manifest"
            )
        state = _unflatten_state(arrays, meta["manifest"])
        return state, meta.get("meta", {})

    def latest_valid(self) -> tuple[dict, dict, int] | None:
        """Newest loadable snapshot as ``(state, user_meta, step)``.

        Corrupt snapshots are skipped (newest-first) so a crash during a
        save — or bit rot in the latest file — falls back to the previous
        valid snapshot instead of failing the resume.
        """
        for step in reversed(self.steps()):
            try:
                state, user_meta = self.load_step(step)
            except CheckpointCorruptError:
                continue
            return state, user_meta, step
        return None

    def _prune(self, protect: int) -> None:
        steps = self.steps()
        excess = [s for s in steps if s != protect]
        # Keep the newest (keep - 1) besides the protected snapshot.
        n_extra = max(0, len(excess) - (self.keep - 1))
        for s in excess[:n_extra]:
            try:
                os.unlink(self.path_for(s))
            except OSError:
                pass
