"""Model checkpointing (state dicts as compressed ``.npz`` archives).

Used by the experiment suite so that Fig. 5 / Fig. 6 / Table III benches
share one set of pretrained proxy models instead of re-pretraining per
bench process.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.models.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_exists"]

_META_KEY = "__meta__"


def save_checkpoint(model: Module, path: str, meta: dict | None = None) -> None:
    """Write the model's state dict (plus JSON metadata) to ``path``."""
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY}")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_checkpoint(model: Module, path: str) -> dict:
    """Load a checkpoint into ``model``; returns the stored metadata."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    model.load_state_dict(state)
    return meta


def checkpoint_exists(path: str) -> bool:
    """True when a checkpoint archive exists at ``path``."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    return os.path.exists(path)
