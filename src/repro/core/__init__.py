"""Core: the paper's primary contribution.

- :mod:`repro.core.config` — the Table I ViT variant registry, MAE
  configurations, exact parameter counting, and the scaled-down proxy
  family used for executable training.
- :mod:`repro.core.sharding` — sharding strategies and flat-parameter
  shard plans.
- :mod:`repro.core.fsdp` — the executable mini-FSDP engine (NO_SHARD,
  FULL_SHARD, SHARD_GRAD_OP, HYBRID_SHARD) over simulated collectives.
- :mod:`repro.core.ddp` — bucketed distributed data parallel.
- :mod:`repro.core.engine` — :func:`make_engine` /
  :class:`EngineConfig`, the one-call construction path for every
  strategy.
- :mod:`repro.core.trainer` — MAE pretraining loop.
- :mod:`repro.core.scaling` — weak-scaling experiment driver producing
  images-per-second, memory, and communication-share reports.
"""

from repro.core.config import (
    MAEConfig,
    PROXY_VARIANTS,
    VIT_VARIANTS,
    ViTConfig,
    count_mae_params,
    count_vit_params,
    get_mae_config,
    get_vit_config,
)
from repro.core.ddp import DDPEngine
from repro.core.engine import STRATEGY_CHOICES, EngineConfig, make_engine
from repro.core.fsdp import FSDPEngine
from repro.core.sharding import (
    BackwardPrefetch,
    ShardingStrategy,
    ShardPlan,
    flatten_params,
    unflatten_params,
)
from repro.core.scaling import run_strategy_grid, run_strong_scaling, run_weak_scaling
from repro.core.simclr_trainer import SimCLRPretrainer
from repro.core.trainer import MAEPretrainer, TrainResult

__all__ = [
    "ViTConfig",
    "MAEConfig",
    "VIT_VARIANTS",
    "PROXY_VARIANTS",
    "get_vit_config",
    "get_mae_config",
    "count_vit_params",
    "count_mae_params",
    "ShardingStrategy",
    "BackwardPrefetch",
    "ShardPlan",
    "flatten_params",
    "unflatten_params",
    "EngineConfig",
    "make_engine",
    "STRATEGY_CHOICES",
    "FSDPEngine",
    "DDPEngine",
    "MAEPretrainer",
    "SimCLRPretrainer",
    "TrainResult",
    "run_weak_scaling",
    "run_strong_scaling",
    "run_strategy_grid",
]
