"""MAE pretraining loop (paper Section V-B recipe, proxy scale).

The trainer owns the data order and the MAE masking noise, both derived
deterministically from the seed and the global step — *not* from the rank
— so the same run under any world size / sharding strategy sees identical
samples and masks. This is what makes the engine-equivalence guarantees
testable end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from repro.core.checkpoints import CheckpointManager
from repro.core.ddp import DDPEngine
from repro.core.fsdp import FSDPEngine
from repro.elastic.errors import ElasticCompatibilityError, PreemptedError
from repro.elastic.preemption import PreemptionToken
from repro.models.mae import MaskedAutoencoder
from repro.models.workspace import Workspace
from repro.optim.schedules import CosineWithWarmup
from repro.telemetry import NULL_BUS, StepStats, TelemetryBus

__all__ = ["MAEPretrainer", "TrainResult", "CheckpointingTrainer"]

Engine = FSDPEngine | DDPEngine


@dataclass
class TrainResult:
    """Per-step records of one pretraining run."""

    losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    steps_per_epoch: int = 0

    @property
    def n_steps(self) -> int:
        """Number of recorded optimizer steps."""
        return len(self.losses)

    def epoch_means(self) -> np.ndarray:
        """Mean loss per epoch (trailing partial epoch included)."""
        if not self.losses or self.steps_per_epoch <= 0:
            return np.array([])
        arr = np.asarray(self.losses)
        n_full = len(arr) // self.steps_per_epoch
        means = [
            arr[i * self.steps_per_epoch : (i + 1) * self.steps_per_epoch].mean()
            for i in range(n_full)
        ]
        if len(arr) % self.steps_per_epoch:
            means.append(arr[n_full * self.steps_per_epoch :].mean())
        return np.asarray(means)


class CheckpointingTrainer:
    """Elastic-recovery mixin shared by the pretraining loops.

    Gives a trainer periodic atomic snapshots (``save_every``) and
    :meth:`resume`. A snapshot captures everything the trajectory depends
    on — engine state (model params, optimizer moments, step count) plus
    the loss/LR history — while the data order, augmentation/masking
    noise, and LR schedule are pure functions of (seed, absolute step),
    so restoring the snapshot and replaying from its step is bit-identical
    to never having stopped (the ``chaos`` test campaign asserts this).

    Host classes must provide ``engine``, ``seed``, ``global_batch``,
    ``steps_per_epoch`` and a ``run(n_steps, start_step)`` that calls
    :meth:`_record_step` once per optimizer step.
    """

    checkpoints: CheckpointManager | None
    save_every: int
    preemption: PreemptionToken | None

    def _init_checkpointing(
        self,
        checkpoint_dir: str | None,
        save_every: int,
        keep: int,
        preemption: PreemptionToken | None = None,
    ) -> None:
        if save_every < 0:
            raise ValueError(f"save_every must be non-negative, got {save_every}")
        if save_every and checkpoint_dir is None:
            raise ValueError("save_every requires a checkpoint_dir")
        self.checkpoints = (
            CheckpointManager(checkpoint_dir, keep=keep) if checkpoint_dir else None
        )
        self.save_every = save_every
        self.preemption = preemption
        self._hist_losses: list[float] = []
        self._hist_lrs: list[float] = []

    def _init_telemetry(self, telemetry: TelemetryBus | None) -> None:
        """Resolve the trainer's bus: an explicit one wins (and is shared
        down into the engine unless the engine already has a live bus);
        otherwise the trainer inherits the engine's."""
        engine_bus = getattr(self.engine, "telemetry", NULL_BUS)
        if telemetry is not None:
            self.telemetry = telemetry
            if not engine_bus.enabled:
                self.engine.telemetry = telemetry
        else:
            self.telemetry = engine_bus

    def state_dict(self) -> dict:
        """Everything the trajectory depends on: engine + loss/LR history."""
        return {
            "engine": self.engine.state_dict(),
            "history": {
                "losses": np.asarray(self._hist_losses, dtype=np.float64),
                "lrs": np.asarray(self._hist_lrs, dtype=np.float64),
            },
        }

    def load_state_dict(self, sd: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (engine + history)."""
        self.engine.load_state_dict(sd["engine"])
        self._hist_losses = [float(x) for x in sd["history"]["losses"]]
        self._hist_lrs = [float(x) for x in sd["history"]["lrs"]]

    def _record_step(self, step: int, loss: float, lr: float) -> None:
        """Append one step to the history; snapshot on the save cadence.

        This is also the preemption drain point: when the trainer's
        :class:`~repro.elastic.preemption.PreemptionToken` has tripped
        (signal) or armed (scheduler), the step that just completed is
        snapshotted — exactly once — and
        :class:`~repro.elastic.errors.PreemptedError` unwinds the run so
        a requeue driver can rebuild the next allocation.
        """
        self._hist_losses.append(loss)
        self._hist_lrs.append(lr)
        saved: str | None = None
        if self.checkpoints is not None and self.save_every:
            if (step + 1) % self.save_every == 0:
                saved = self.save_snapshot()
        tok = self.preemption
        if tok is not None and tok.should_preempt(step):
            if saved is None and self.checkpoints is not None:
                saved = self.save_snapshot()
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "elastic.preemptions", 1, reason=tok.reason or "unknown"
                )
            raise PreemptedError(step=step, checkpoint=saved)

    def save_snapshot(self) -> str:
        """Atomically snapshot the engine + history at the current step.

        The metadata records the engine topology (world size, strategy,
        shard size, reduction layout) so :meth:`resume` can refuse — and
        :func:`repro.elastic.elastic_resume` can reshard — a restore
        into a differently-shaped world.
        """
        if self.checkpoints is None:
            raise ValueError("trainer was constructed without a checkpoint_dir")
        state = self.state_dict()
        meta = {
            "seed": self.seed,
            "global_batch": self.global_batch,
            "elastic": self.engine.topology(),
        }
        return self.checkpoints.save(state, step=self.engine.step_count, meta=meta)

    def resume(self, total_steps: int) -> TrainResult:
        """Train through absolute step ``total_steps``, restoring the
        latest valid snapshot first (corrupt ones are skipped).

        Starts from scratch when no valid snapshot exists. Returns the
        *full* history (restored + newly trained), so the result of an
        interrupted-and-resumed run compares 1:1 against an
        uninterrupted ``run(total_steps)``.
        """
        if self.checkpoints is None:
            raise ValueError("resume() requires a checkpoint_dir")
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        start = 0
        loaded = self.checkpoints.latest_valid()
        if loaded is not None:
            state, meta, _ = loaded
            if meta.get("seed") != self.seed or meta.get("global_batch") != self.global_batch:
                raise ValueError(
                    f"snapshot was taken with seed={meta.get('seed')}, "
                    f"global_batch={meta.get('global_batch')}; trainer has "
                    f"seed={self.seed}, global_batch={self.global_batch}"
                )
            self._check_snapshot_topology(meta)
            try:
                self.load_state_dict(state)
            except (ValueError, KeyError) as e:
                # A legacy (pre-topology) snapshot from a different world
                # can fail structurally deep in the optimizer; surface it
                # as the typed elastic error with the way out.
                raise ElasticCompatibilityError(
                    f"snapshot does not fit this engine ({e}); it was "
                    "likely saved under a different world size or sharding "
                    "strategy. Resume it through "
                    "repro.elastic.elastic_resume(trainer, total_steps), "
                    "which reshards the state."
                ) from e
            start = self.engine.step_count
        if total_steps < start:
            raise ValueError(
                f"snapshot is already at step {start}, beyond total_steps {total_steps}"
            )
        if total_steps > start:
            self.run(total_steps - start, start_step=start)
        return TrainResult(
            losses=list(self._hist_losses),
            lrs=list(self._hist_lrs),
            steps_per_epoch=self.steps_per_epoch,
        )

    def _check_snapshot_topology(self, meta: dict) -> None:
        """Refuse a plain resume across a world/sharding change.

        Snapshots record the engine topology under ``meta["elastic"]``;
        restoring one into a differently-shaped engine would either fail
        structurally (FSDP shard counts) or — worse — load cleanly and
        silently follow a different trajectory (a DDP world change
        re-slices every global batch). Both cases get the typed error;
        legacy snapshots without the record are loaded as before (the
        structural failure path still catches cross-shard loads).
        """
        recorded = meta.get("elastic")
        if recorded is None:
            return
        current = self.engine.topology()
        compare = (
            "strategy",
            "world_size",
            "shard_size",
            "grad_accum_steps",
            "layout",
            "precision",
            "mesh",
        )
        diffs = [
            f"{k}: snapshot {recorded.get(k)!r} != engine {current.get(k)!r}"
            for k in compare
            if recorded.get(k) != current.get(k)
        ]
        if diffs:
            raise ElasticCompatibilityError(
                "snapshot topology does not match this engine ("
                + "; ".join(diffs)
                + "). A direct resume would not continue the same "
                "trajectory; use repro.elastic.elastic_resume(trainer, "
                "total_steps) to reshard into this world, or rebuild the "
                "engine with the snapshot's topology."
            )


def _mae_step_fn(model: MaskedAutoencoder, micro) -> float:
    imgs, noise = micro
    out = model.forward(imgs, noise=noise)
    model.backward()
    return out.loss


class MAEPretrainer(CheckpointingTrainer):
    """Drives an engine through MAE pretraining on an image array.

    Parameters
    ----------
    engine:
        An :class:`FSDPEngine` or :class:`DDPEngine` wrapping a
        :class:`MaskedAutoencoder`.
    images:
        Pretraining corpus, ``(N, C, H, W)``.
    global_batch:
        Global batch size; must be divisible by the world size.
    schedule:
        Step -> learning rate. Defaults to the paper's recipe scaled to
        the run length (cosine, 10% warmup).
    seed:
        Controls shuffling and masking noise only (weights were seeded at
        model construction).
    workspace:
        Attach a :class:`~repro.models.workspace.Workspace` to the model
        so steady-state steps reuse scratch buffers instead of
        allocating (on by default; numerics are unchanged). Skipped when
        the model already has one attached.
    checkpoint_dir:
        Directory for atomic training snapshots; enables
        :meth:`~CheckpointingTrainer.resume` and ``save_every``.
    save_every:
        Snapshot every this many optimizer steps (0 disables the
        cadence; explicit :meth:`~CheckpointingTrainer.save_snapshot`
        still works when a directory is set).
    keep:
        How many snapshots to retain (older ones are pruned).
    preemption:
        A :class:`~repro.elastic.preemption.PreemptionToken`; when it
        trips (signal) or arms (scheduler), the in-flight step drains, a
        final snapshot is written, and
        :class:`~repro.elastic.errors.PreemptedError` unwinds the run
        for the requeue driver.
    telemetry:
        Instrumentation bus; when given it is shared down into the
        engine (unless the engine already carries a live bus), and the
        trainer publishes per-step :class:`~repro.telemetry.StepStats`
        gauges (wall time, images/s, loss, lr). Defaults to the
        engine's bus.
    """

    def __init__(
        self,
        engine: Engine,
        images: np.ndarray,
        global_batch: int,
        schedule: Callable[[int], float] | None = None,
        seed: int = 0,
        workspace: bool = True,
        checkpoint_dir: str | None = None,
        save_every: int = 0,
        keep: int = 3,
        preemption: PreemptionToken | None = None,
        telemetry: TelemetryBus | None = None,
    ):
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {images.shape}")
        n_micros = getattr(engine, "data_parallel_size", engine.world.size) * getattr(
            engine, "grad_accum_steps", 1
        )
        if global_batch % n_micros != 0:
            raise ValueError(
                f"global batch {global_batch} not divisible by world size x "
                f"grad_accum_steps = {n_micros}"
            )
        if global_batch > len(images):
            raise ValueError(
                f"global batch {global_batch} exceeds corpus size {len(images)}"
            )
        if not isinstance(engine.model, MaskedAutoencoder):
            raise TypeError("MAEPretrainer requires a MaskedAutoencoder model")
        self.engine = engine
        self.images = images
        self.global_batch = global_batch
        self.schedule = schedule
        self.seed = seed
        self.steps_per_epoch = len(images) // global_batch
        self._init_checkpointing(checkpoint_dir, save_every, keep, preemption)
        self._init_telemetry(telemetry)
        if workspace and engine.model.workspace is None:
            engine.model.use_workspace(Workspace())

    def _epoch_order(self, epoch: int) -> np.ndarray:
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 7919, epoch]))
        )
        return rng.permutation(len(self.images))

    def _step_noise(self, step: int, batch: int, n_patches: int) -> np.ndarray:
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([self.seed, 104729, step]))
        )
        return rng.random((batch, n_patches))

    def run(self, n_steps: int, start_step: int = 0) -> TrainResult:
        """Train for steps ``[start_step, start_step + n_steps)``.

        ``start_step`` resumes an interrupted run: the data order,
        masking noise, and schedule are pure functions of the absolute
        step, so restoring an engine snapshot and passing the saved step
        count continues the original trajectory exactly (tested).
        """
        if n_steps <= 0:
            raise ValueError(f"n_steps must be positive, got {n_steps}")
        if start_step < 0:
            raise ValueError(f"start_step must be non-negative, got {start_step}")
        model: MaskedAutoencoder = self.engine.model
        n_patches = model.cfg.encoder.n_patches
        schedule = self.schedule
        if schedule is None:
            schedule = CosineWithWarmup(
                base_lr=self.engine.lr,
                total_steps=start_step + n_steps,
                warmup_steps=max(1, (start_step + n_steps) // 10),
            )
        # One micro slot per (accumulation round, data-parallel rank),
        # round-major — the same slicing a k-times-larger world would use
        # rank-major, which is what keeps fp32 accumulation bit-identical
        # across layouts. Mesh engines consume micros only along dp (tp
        # ranks share each micro; pp ranks split the model, not the data).
        n_micros = getattr(
            self.engine, "data_parallel_size", self.engine.world.size
        ) * getattr(self.engine, "grad_accum_steps", 1)
        micro = self.global_batch // n_micros
        result = TrainResult(steps_per_epoch=self.steps_per_epoch)
        order = self._epoch_order(start_step // self.steps_per_epoch)
        for step in range(start_step, start_step + n_steps):
            epoch, pos = divmod(step, self.steps_per_epoch)
            if pos == 0 and step > 0:
                order = self._epoch_order(epoch)
            idx = order[pos * self.global_batch : (pos + 1) * self.global_batch]
            imgs = self.images[idx]
            noise = self._step_noise(step, self.global_batch, n_patches)
            micros = [
                (imgs[m * micro : (m + 1) * micro], noise[m * micro : (m + 1) * micro])
                for m in range(n_micros)
            ]
            self.engine.lr = schedule(step)
            t0 = perf_counter()
            loss = self.engine.train_step(micros, _mae_step_fn)
            if self.telemetry.enabled:
                wall = perf_counter() - t0
                StepStats(
                    step=step,
                    wall_s=wall,
                    images_per_s=self.global_batch / wall if wall > 0 else 0.0,
                    loss=loss,
                    lr=self.engine.lr,
                ).emit(self.telemetry)
            result.losses.append(loss)
            result.lrs.append(self.engine.lr)
            self._record_step(step, loss, self.engine.lr)
        return result
