"""Shared mixed-precision / gradient-accumulation plumbing for engines.

Both :class:`~repro.core.ddp.DDPEngine` and
:class:`~repro.core.fsdp.FSDPEngine` honor
``EngineConfig(precision=..., grad_accum_steps=..., loss_scale=...)``
through this mixin. The emulation contract, in step order:

1. **Inputs** of every microbatch are rounded onto the bf16 grid
   (:func:`~repro.precision.bf16_round`) before the forward — the cast
   point real mixed-precision autocast applies at the model boundary.
2. **Outbound gradients** (what a rank contributes to the collective)
   are loss-scaled and rounded to bf16: reduction payloads carry only
   bf16 information, and the collective layer books half the wire bytes
   (``wire_dtype="bf16"``).
3. **Reduced gradients** are unscaled in full precision; under a
   dynamic scaler a non-finite gradient skips the optimizer step and
   backs the scale off.
4. **Master weights** in the optimizer apply the update at full
   precision and re-quantize the working parameters
   (:meth:`~repro.optim.base.Optimizer.use_master_weights`).

Accumulation composes with this by blocking ``micros`` into
``grad_accum_steps`` rounds of ``world.size`` microbatches; the
engines hand all rounds' contributions to one collective call
(``parts_per_rank``), which keeps fp32 ``k``-round training
bit-identical to the same global batch on a ``k``-times-larger world.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.precision.bf16 import bf16_round, wire_fraction
from repro.precision.scaler import LossScaler

__all__ = ["MixedPrecisionMixin"]


class MixedPrecisionMixin:
    """Precision/accumulation behavior shared by the training engines.

    Host classes must set ``self.config`` (an
    :class:`~repro.core.engine.EngineConfig`), ``self.world``,
    ``self.optimizer`` and ``self.telemetry`` before calling
    :meth:`_init_precision`.
    """

    def _init_precision(self) -> None:
        """Resolve precision fields from the config; attach masters."""
        cfg = self.config
        self.precision: str = cfg.precision
        self.grad_accum_steps: int = cfg.grad_accum_steps
        self.scaler = LossScaler(
            init_scale=cfg.loss_scale, dynamic=cfg.dynamic_loss_scale
        )
        if self.precision == "bf16":
            self._wire_dtype: str | None = "bf16"
            self.optimizer.use_master_weights(quantize=bf16_round)
        else:
            self._wire_dtype = None

    # -- sizing ------------------------------------------------------------

    def _microbatch_count(self) -> int:
        """Microbatches one ``train_step`` consumes (rounds x ranks)."""
        return self.grad_accum_steps * self.world.size

    def _check_micros(self, micros) -> None:
        """Validate the ``train_step`` microbatch count."""
        need = self._microbatch_count()
        if len(micros) != need:
            raise ValueError(
                f"need {need} microbatches ({self.grad_accum_steps} "
                f"accumulation round(s) x {self.world.size} rank(s)), "
                f"got {len(micros)}"
            )

    def _wire_nbytes(self, nbytes: float) -> float:
        """Logical payload bytes of a native buffer at the wire dtype."""
        if self._wire_dtype is None:
            return float(nbytes)
        return nbytes * wire_fraction(self._wire_dtype)

    # -- cast points ---------------------------------------------------------

    def _cast_micro(self, micro: Any) -> Any:
        """Round a microbatch's floating arrays onto the bf16 grid.

        Microbatches are opaque to the engine except for this cast:
        bare arrays and (nested) tuples/lists of arrays are handled;
        non-float leaves pass through untouched.
        """
        if self.precision != "bf16":
            return micro
        return _cast_tree(micro)

    def _outbound_grad(self, g: np.ndarray, owned: bool = False) -> np.ndarray:
        """One rank's gradient contribution as it enters the collective.

        Under bf16 this is where the loss scale is applied and the
        payload drops to bf16 resolution. ``owned=True`` marks a buffer
        the caller already copied (skips the defensive fp32 copy).
        """
        if self.precision != "bf16":
            return g if owned else g.copy()
        if self.scaler.scale != 1.0:
            return bf16_round(g * self.scaler.scale)
        return bf16_round(g)

    # -- post-reduction ------------------------------------------------------

    def _grad_postprocess(self, reduced: list[np.ndarray]) -> bool:
        """Unscale reduced gradients in place; decide whether to step.

        Returns False — and advances the dynamic scaler's backoff —
        when a non-finite gradient means this optimizer step must be
        skipped. On the fp32 default path this touches nothing.
        """
        if self.precision != "bf16" and not self.scaler.enabled:
            return True
        s = self.scaler.scale
        if s != 1.0:
            for a in reduced:
                np.divide(a, s, out=a)
        if not self.scaler.dynamic:
            return True
        found_inf = any(not np.isfinite(a).all() for a in reduced)
        self.scaler.update(found_inf)
        if found_inf and self.telemetry.enabled:
            self.telemetry.counter("precision.skipped_steps", 1)
        return not found_inf

    # -- observability -------------------------------------------------------

    def _emit_precision_gauges(self) -> None:
        """Publish per-step precision/accumulation gauges (non-default runs)."""
        bus = self.telemetry
        if not bus.enabled:
            return
        if self.grad_accum_steps > 1:
            bus.gauge("train.grad_accum_steps", float(self.grad_accum_steps))
        if self.precision != "fp32" or self.scaler.enabled:
            bus.gauge("precision.loss_scale", self.scaler.scale)


def _cast_tree(micro: Any) -> Any:
    if isinstance(micro, np.ndarray):
        return bf16_round(micro) if micro.dtype.kind == "f" else micro
    if isinstance(micro, (tuple, list)):
        return type(micro)(_cast_tree(m) for m in micro)
    return micro
