"""Sharding strategies and flat-parameter machinery.

FSDP's unit of sharding is the *flat parameter*: all tensors of one
wrapped module (here: one transformer block, matching the paper's
``transformer_auto_wrap_policy`` setup) concatenated into a single 1-D
buffer, zero-padded to a multiple of the sharding-group size, and split
into equal contiguous shards — rank ``j`` of the group owns shard ``j``.

:class:`FlatUnit` additionally *installs views*: after flattening, every
module parameter's ``data``/``grad`` array becomes a reshaped view into
the unit's flat buffers, so an all-gather that writes the flat buffer
materializes the module parameters with zero copies (a direct application
of the "views, not copies" guidance).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

import numpy as np

from repro.models.blocks import TransformerBlock
from repro.models.module import Module, Parameter

__all__ = [
    "ShardingStrategy",
    "BackwardPrefetch",
    "parse_strategy",
    "ShardPlan",
    "FlatUnit",
    "FlatShard",
    "UnitSpec",
    "flatten_params",
    "unflatten_params",
    "default_wrap_units",
    "unit_param_specs",
]


class ShardingStrategy(enum.Enum):
    """FSDP sharding strategies, paper Section III-C."""

    NO_SHARD = "NO_SHARD"
    FULL_SHARD = "FULL_SHARD"
    SHARD_GRAD_OP = "SHARD_GRAD_OP"
    HYBRID_SHARD = "HYBRID_SHARD"
    DDP = "DDP"  # the non-FSDP baseline the paper compares against


class BackwardPrefetch(enum.Enum):
    """FSDP backward parameter-prefetch policies, paper Section IV-B."""

    NONE = "NONE"
    BACKWARD_POST = "BACKWARD_POST"
    BACKWARD_PRE = "BACKWARD_PRE"


_HYBRID_RE = re.compile(r"^HYBRID_(\d+)GPUS?$", re.IGNORECASE)


def parse_strategy(name: str) -> tuple[ShardingStrategy, int | None]:
    """Parse a paper-style strategy label into (strategy, shard_size).

    Accepts the plain enum names plus the paper's ``HYBRID_2GPUs`` /
    ``HYBRID_8GPUs`` labels; returns shard_size None when the strategy
    itself determines it (NO_SHARD -> 1, FULL_SHARD -> world size).
    """
    label = name.strip()
    m = _HYBRID_RE.match(label)
    if m:
        return ShardingStrategy.HYBRID_SHARD, int(m.group(1))
    try:
        return ShardingStrategy[label.upper()], None
    except KeyError:
        raise ValueError(f"unknown sharding strategy {name!r}") from None


@dataclass(frozen=True)
class ShardPlan:
    """How one flat parameter of ``numel`` elements splits over a group."""

    numel: int
    shard_size: int

    def __post_init__(self) -> None:
        if self.numel <= 0:
            raise ValueError(f"numel must be positive, got {self.numel}")
        if self.shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {self.shard_size}")

    @property
    def padded_numel(self) -> int:
        """Element count after zero-padding to a shard multiple."""
        s = self.shard_size
        return -(-self.numel // s) * s

    @property
    def shard_numel(self) -> int:
        """Elements per shard."""
        return self.padded_numel // self.shard_size

    def shard_slice(self, shard_index: int) -> slice:
        """Flat-buffer slice owned by ``shard_index``."""
        if not 0 <= shard_index < self.shard_size:
            raise ValueError(
                f"shard index {shard_index} out of range for {self.shard_size} shards"
            )
        c = self.shard_numel
        return slice(shard_index * c, (shard_index + 1) * c)


def flatten_params(params: list[Parameter]) -> tuple[np.ndarray, list[tuple[str, tuple[int, ...], int]]]:
    """Concatenate parameters into a flat vector plus layout metadata.

    Returns ``(flat, layout)`` where layout entries are
    ``(name, shape, offset)``.
    """
    if not params:
        raise ValueError("cannot flatten an empty parameter list")
    layout = []
    offset = 0
    for p in params:
        layout.append((p.name, p.data.shape, offset))
        offset += p.data.size
    flat = np.concatenate([p.data.reshape(-1) for p in params])
    return flat, layout


def unflatten_params(flat: np.ndarray, layout) -> list[np.ndarray]:
    """Views into ``flat`` for each layout entry (no copies)."""
    out = []
    for _name, shape, offset in layout:
        n = int(np.prod(shape))
        out.append(flat[offset : offset + n].reshape(shape))
    return out


class FlatShard:
    """One rank's shard of a flat parameter, as an optimizer target.

    ``data`` is a *view* into the unit's flat buffer, so an optimizer
    stepping this shard updates the materialized parameters in place.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = data
        self.grad = np.zeros_like(data)
        self.name = name


class FlatUnit:
    """One FSDP wrapping unit: a flat parameter plus installed views."""

    def __init__(self, name: str, params: list[Parameter], shard_size: int):
        if shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        self.name = name
        self.params = params
        flat, self.layout = flatten_params(params)
        self.plan = ShardPlan(numel=flat.size, shard_size=shard_size)
        self.flat = np.zeros(self.plan.padded_numel, dtype=flat.dtype)
        self.flat[: flat.size] = flat
        self.grad_flat = np.zeros_like(self.flat)
        self._install_views()

    def _install_views(self) -> None:
        for p, data_view in zip(self.params, unflatten_params(self.flat, self.layout)):
            p.data = data_view
        for p, grad_view in zip(
            self.params, unflatten_params(self.grad_flat, self.layout)
        ):
            p.grad = grad_view

    @property
    def nbytes(self) -> int:
        """Bytes of the padded flat parameter."""
        return self.flat.nbytes

    def shard_view(self, shard_index: int) -> np.ndarray:
        """View of shard ``shard_index`` inside the flat buffer."""
        return self.flat[self.plan.shard_slice(shard_index)]

    def read_grad(self) -> np.ndarray:
        """Copy of the current flat gradient (one rank's contribution)."""
        return self.grad_flat.copy()

    def zero_grad(self) -> None:
        """Zero the unit's flat gradient (and thus every view)."""
        self.grad_flat[...] = 0.0

    def make_shards(self) -> list[FlatShard]:
        """Optimizer targets: one per shard index, viewing the flat buffer."""
        return [
            FlatShard(self.shard_view(j), name=f"{self.name}/shard{j}")
            for j in range(self.plan.shard_size)
        ]


def _wrap_groups(model: Module) -> list[tuple[str, list[Parameter]]]:
    """The paper's wrapping policy as (unit name, parameters) groups.

    Every :class:`TransformerBlock` becomes its own group; all remaining
    parameters (embeddings, norms, heads, tokens) form the root group,
    which goes first — exactly what
    ``transformer_auto_wrap_policy(TransformerBlock)`` produces in
    PyTorch FSDP. This grouping depends only on the model architecture
    (not on the shard size), which is what lets checkpoint resharding
    recompute any world's flat layout from a model instance alone.
    """
    block_params: set[int] = set()
    groups: list[tuple[str, list[Parameter]]] = []
    idx = 0
    for mod in model.modules():
        if isinstance(mod, TransformerBlock):
            params = mod.parameters()
            block_params.update(id(p) for p in params)
            groups.append((f"block{idx}", params))
            idx += 1
    root = [p for p in model.parameters() if id(p) not in block_params]
    if root:
        # Root unit goes first: FSDP gathers it for the embedding layers
        # before any block runs.
        groups.insert(0, ("root", root))
    if not groups:
        raise ValueError("model has no parameters to wrap")
    return groups


def default_wrap_units(model: Module, shard_size: int) -> list[FlatUnit]:
    """Build the flat-parameter units for :func:`_wrap_groups`."""
    return [
        FlatUnit(name, params, shard_size) for name, params in _wrap_groups(model)
    ]


@dataclass(frozen=True)
class UnitSpec:
    """Shard-size-independent description of one wrapping unit.

    ``layout`` entries are ``(param_name, shape, offset)`` into the
    unit's unpadded flat vector, in flattening order — the same layout
    :class:`FlatUnit` materializes. Combined with a
    :class:`ShardPlan` for any shard size, this is enough to map
    per-flat-shard optimizer state (moments, masters) to and from
    per-parameter canonical form without constructing an engine.
    """

    name: str
    layout: tuple[tuple[str, tuple[int, ...], int], ...]
    numel: int

    def plan(self, shard_size: int) -> ShardPlan:
        """The unit's shard plan at ``shard_size``."""
        return ShardPlan(numel=self.numel, shard_size=shard_size)


def unit_param_specs(model: Module) -> list[UnitSpec]:
    """The model's wrapping units as pure metadata (no flat buffers).

    Layout entries use the model's *dotted* parameter names (the
    ``state_dict`` keys), which are unique across the module tree —
    ``Parameter.name`` alone is only the local attribute name.
    """
    dotted = {id(p): name for name, p in model.named_parameters()}
    specs: list[UnitSpec] = []
    for name, params in _wrap_groups(model):
        layout: list[tuple[str, tuple[int, ...], int]] = []
        offset = 0
        for p in params:
            layout.append((dotted[id(p)], tuple(p.data.shape), offset))
            offset += p.data.size
        specs.append(UnitSpec(name=name, layout=tuple(layout), numel=offset))
    return specs
